#!/usr/bin/env python
"""Compare cache-allocation strategies on one workload.

Swaps the paper's dynamic program for the alternative allocators --
greedy, random, no-cache, the capacity-oblivious oracle and the
critical-path-aware iterative extension -- at a fixed full-array mapping
so every strategy solves the same allocation instance, then shows what
each choice costs in prologue depth and total time.

This demonstrates the reproduction's documented finding: the DP maximizes
the *sum* of retiming reductions, but the prologue depends on the maximum
δ-weighted path, so the iterative extension can reach a smaller R_max
with far less cache.

Usage::

    python examples/allocation_ablation.py [workload] [pes]
"""

import sys

from repro import ParaConv, PimConfig, load_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "protein"
    pes = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    config = PimConfig(num_pes=pes, iterations=1000)
    graph = load_workload(workload)

    print(f"Workload {workload!r} ({graph.num_vertices} ops, "
          f"{graph.num_edges} IRs) on {config.describe()}\n")
    print(f"{'strategy':>10} {'total time':>11} {'R_max':>6} "
          f"{'prologue':>9} {'cached':>7} {'profit ΣΔR':>10}")

    for strategy in ("dp", "iterative", "greedy", "random", "all-edram",
                     "oracle"):
        result = ParaConv(config, allocator_name=strategy).run_at_width(
            graph, pes
        )
        print(f"{strategy:>10} {result.total_time():>11} "
              f"{result.max_retiming:>6} {result.prologue_time:>9} "
              f"{result.num_cached:>7} {result.allocation.total_delta_r:>10}")

    print("\nReading the table: the oracle ignores capacity (upper bound); "
          "'iterative' targets the critical path and typically matches the "
          "oracle's R_max with a fraction of the cache the DP uses.")


if __name__ == "__main__":
    main()
