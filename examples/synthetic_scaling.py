#!/usr/bin/env python
"""Scalability study on synthetic task graphs (over 500 convolutions).

The paper evaluates synthetic graphs with more than 500 convolutions; this
example generates a size sweep well past that, runs Para-CONV and SPARTA
on each, and reports how the improvement, the retiming depth and the
prologue overhead behave as applications grow.

Usage::

    python examples/synthetic_scaling.py [pes]
"""

import sys

from repro import ParaConv, PimConfig, SpartaScheduler
from repro.graph.generators import SyntheticGraphGenerator


def main() -> None:
    pes = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    config = PimConfig(num_pes=pes, iterations=1000)
    generator = SyntheticGraphGenerator()

    print(f"Machine: {config.describe()}\n")
    print(f"{'|V|':>5} {'|E|':>6} {'Para-CONV':>10} {'SPARTA':>10} "
          f"{'IMP%':>6} {'R_max':>5} {'prologue%':>9}")

    for size in (64, 128, 256, 512, 768, 1024):
        edges = int(size * 2.6)
        graph = generator.generate(size, edges, seed=11, name=f"synth-{size}")
        para = ParaConv(config).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        imp = (
            (sparta.total_time() - para.total_time())
            / sparta.total_time() * 100
        )
        prologue_share = para.prologue_time / para.total_time() * 100
        print(f"{size:>5} {edges:>6} {para.total_time():>10} "
              f"{sparta.total_time():>10} {imp:>6.2f} "
              f"{para.max_retiming:>5} {prologue_share:>8.2f}%")

    print("\nExpected shapes: the improvement stays near the paper's ~53% "
          "as graphs grow, larger applications retime deeper, and the "
          "prologue overhead remains negligible.")


if __name__ == "__main__":
    main()
