#!/usr/bin/env python
"""Study: cache liveness vs the paper's static capacity accounting.

The Section 3.3 dynamic program charges each cached intermediate result
its space once, but a result whose edge ends up with realized relative
retiming ``R(i) - R(j) > 0`` keeps ``R(i) - R(j) + 1`` instances alive
concurrently. The discrete-event simulator exposes the consequence as
transient cache spills; ``ParaConv(liveness_aware=True)`` re-weights the
allocation in a second pass and eliminates them.

Usage::

    python examples/liveness_study.py [pes]
"""

import sys

from repro import ParaConv, PimConfig, synthetic_benchmark
from repro.sim.executor import ScheduleExecutor


def main() -> None:
    pes = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    config = PimConfig(num_pes=pes, iterations=1000)
    executor = ScheduleExecutor(config, num_vaults=32)

    print(f"Machine: {config.describe()}\n")
    print(f"{'benchmark':<16} {'mode':<9} {'cached':>6} {'peak':>5} "
          f"{'spills':>6} {'total time':>10} {'slowdown':>8}")
    for name in ("cat", "flower", "character-1", "shortest-path", "protein"):
        graph = synthetic_benchmark(name)
        for aware in (False, True):
            result = ParaConv(config, liveness_aware=aware).run(graph)
            trace = executor.execute(result, iterations=15)
            mode = "liveness" if aware else "paper"
            print(f"{name:<16} {mode:<9} {result.num_cached:>6} "
                  f"{trace.cache_peak_slots:>5} {trace.cache_spills:>6} "
                  f"{result.total_time():>10} {trace.slowdown:>8.3f}")

    print("\nReading the table: the paper-accounting rows overflow the cache "
          "transiently (spills absorbed by retiming slack, so no slowdown); "
          "the liveness-aware rows cache fewer, longer-lived results and "
          "never overflow, at equal or better total time.")


if __name__ == "__main__":
    main()
