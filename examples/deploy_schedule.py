#!/usr/bin/env python
"""Compile once, deploy many: schedule serialization workflow.

A Para-CONV schedule is a static artifact -- kernel placements, retiming
function, intermediate-result placements. This example compiles one,
serializes it to JSON (the deployable artifact), reloads it as a separate
"runtime" would, verifies it semantically, and executes it on the machine
model. Along the way it renders the pipelined run so the software-pipeline
structure is visible.

Usage::

    python examples/deploy_schedule.py [workload] [pes]
"""

import sys
import tempfile
from pathlib import Path

from repro import ParaConv, PimConfig, load_workload
from repro.core.expansion import expand, verify_expansion
from repro.core.gantt import render_expanded
from repro.core.schedule_io import schedule_from_json, schedule_to_json
from repro.sim.executor import ScheduleExecutor


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cat"
    pes = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    config = PimConfig(num_pes=pes, iterations=1000)

    # --- compile ------------------------------------------------------
    graph = load_workload(workload)
    result = ParaConv(config, liveness_aware=True).run(graph)
    print(f"Compiled {workload!r}: period {result.period}, "
          f"R_max {result.max_retiming}, "
          f"{result.num_cached} cached intermediate results")

    # --- serialize / reload (what a runtime would load) ---------------
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "schedule.json"
        schedule_to_json(result.schedule, artifact)
        print(f"Serialized schedule: {artifact.stat().st_size} bytes of JSON")
        schedule = schedule_from_json(artifact)  # validates on load

    # --- verify analytically ------------------------------------------
    expanded = expand(schedule, iterations=4)
    verify_expansion(expanded)
    print(f"Verified expansion: {len(expanded.instances)} instances over "
          f"{expanded.num_rounds} rounds, makespan {expanded.makespan}")
    print("\nPipelined run (prologue fills, then steady state):")
    print(render_expanded(schedule, iterations=3, max_columns=60))

    # --- execute on the machine model ----------------------------------
    trace = ScheduleExecutor(config, num_vaults=32).execute(
        result, iterations=10
    )
    print(f"\nExecuted 10 iterations on the simulated machine: "
          f"slowdown {trace.slowdown:.3f}, spills {trace.cache_spills}, "
          f"PE utilization {trace.pe_utilization() * 100:.1f}%")


if __name__ == "__main__":
    main()
