#!/usr/bin/env python
"""Define a custom PIM machine and validate a schedule on the simulator.

Shows the lower-level API surface: building a custom machine description,
running the pipeline at an explicit PE-group width, executing the
resulting schedule event by event on the stateful machine model (vault
queueing, cache residency, PE timelines), and pricing the traffic with
the energy model.

Usage::

    python examples/custom_machine_simulation.py
"""

from repro import ParaConv, PimConfig, synthetic_benchmark
from repro.pim.energy import EnergyModel
from repro.sim.executor import ScheduleExecutor


def main() -> None:
    # A low-end machine: 8 PEs, 2 KiB of cache each, slow (8x) vaults.
    config = PimConfig(
        num_pes=8,
        cache_bytes_per_pe=2048,
        edram_latency_factor=8,
        edram_energy_factor=8,
        iterations=500,
    )
    graph = synthetic_benchmark("character-1")
    print(f"Machine: {config.describe()}")
    print(f"Workload: {graph.name} ({graph.num_vertices} ops)\n")

    # Pin the mapping to the full array instead of letting the pipeline
    # optimize the group width.
    result = ParaConv(config).run_at_width(graph, width=8)
    print(result.summary())

    # Execute 25 iterations on the discrete-event machine model.
    executor = ScheduleExecutor(config, num_vaults=16)
    trace = executor.execute(result, iterations=25)
    print(f"\nSimulation: {trace.events_processed} events")
    print(f"  analytic makespan : {trace.analytic_makespan} units")
    print(f"  realized makespan : {trace.realized_makespan} units "
          f"(slowdown {trace.slowdown:.3f})")
    print(f"  max lateness      : {trace.max_lateness} units")
    print(f"  cache peak        : {trace.cache_peak_slots} slots "
          f"({trace.cache_spills} transient spills)")
    print(f"  PE utilization    : {trace.pe_utilization() * 100:.1f}%")
    print(f"  traffic           : {trace.stats.cache_bytes} B on-chip, "
          f"{trace.stats.edram_bytes} B off-chip "
          f"({trace.stats.offchip_fraction * 100:.1f}% off-chip)")

    report = trace.energy(EnergyModel())
    print(f"  movement energy   : {report.movement_pj / 1e6:.2f} uJ "
          f"({report.edram_pj / report.movement_pj * 100:.1f}% spent on eDRAM)")


if __name__ == "__main__":
    main()
