#!/usr/bin/env python
"""Quickstart: schedule one CNN task graph on a PIM machine.

Runs the full Para-CONV pipeline on a paper benchmark, prints the schedule
summary, the kernel Gantt chart and the comparison against the SPARTA
baseline -- the smallest end-to-end tour of the public API.

Usage::

    python examples/quickstart.py [workload] [pes]
"""

import sys

from repro import ParaConv, PimConfig, SpartaScheduler, synthetic_benchmark
from repro.core.gantt import render_kernel, render_retiming


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "flower"
    pes = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    # 1. A workload: a periodic CNN task graph. The twelve paper
    #    benchmarks regenerate from seeds with the published sizes.
    graph = synthetic_benchmark(workload)
    print(f"Workload {workload!r}: {graph.num_vertices} operations, "
          f"{graph.num_edges} intermediate results\n")

    # 2. A machine: Neurocube-style 3D PIM with a PE array, a small
    #    on-chip cache and stacked eDRAM vaults.
    config = PimConfig(num_pes=pes)
    print(f"Machine: {config.describe()}\n")

    # 3. Para-CONV: retime convolutions into a prologue, allocate
    #    intermediate results between cache and eDRAM with the dynamic
    #    program, and compact the steady-state kernel.
    result = ParaConv(config).run(graph)
    print(result.summary())
    print()
    print("Steady-state kernel (one iteration, one PE group):")
    print(render_kernel(result.schedule.kernel, num_pes=result.group_width))
    print()
    print(render_retiming(result.schedule))
    print()

    # 4. The baseline: SPARTA honors intra-iteration dependencies and
    #    demand-fetches eDRAM-resident data, stalling its PEs.
    sparta = SpartaScheduler(config).run(graph)
    reduction = (
        (sparta.total_time() - result.total_time()) / sparta.total_time() * 100
    )
    print(f"SPARTA total time    : {sparta.total_time()} units "
          f"(L = {sparta.iteration_length}, "
          f"{sparta.num_groups} x {sparta.group_width} PEs)")
    print(f"Para-CONV total time : {result.total_time()} units")
    print(f"Reduction            : {reduction:.2f}%  "
          f"(paper reports 53.42% on average)")


if __name__ == "__main__":
    main()
