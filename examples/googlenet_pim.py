#!/usr/bin/env python
"""Map a real GoogLeNet onto the PIM array.

The paper's benchmarks derive from GoogLeNet ConvNet [16]. This example
builds the actual Inception-v1 network layer by layer, partitions it by
functionality (convolution / pooling) into a periodic task graph, and runs
the full Para-CONV pipeline at each of the paper's PE counts.

Usage::

    python examples/googlenet_pim.py [--full]

``--full`` uses all nine inception modules (slower); the default uses a
three-module prefix.
"""

import sys

from repro import ParaConv, PimConfig, SpartaScheduler
from repro.cnn.googlenet import build_googlenet, googlenet_prefix
from repro.cnn.partition import PartitionConfig, partition_network
from repro.graph.analysis import graph_statistics


def main() -> None:
    full = "--full" in sys.argv
    network = build_googlenet() if full else googlenet_prefix(3)
    print(f"Network: {network.name}, {len(network)} layers, "
          f"{network.total_macs() / 1e6:.0f} MMACs, "
          f"conv share {network.conv_mac_fraction() * 100:.1f}% "
          f"(paper: ~90% of CNN operations are convolutions)\n")

    graph = partition_network(network, PartitionConfig())
    stats = graph_statistics(graph)
    print(f"Partitioned task graph: {stats.num_vertices} operations, "
          f"{stats.num_edges} intermediate results, depth {stats.depth}, "
          f"peak intra-iteration parallelism {stats.max_parallelism}\n")

    print(f"{'PEs':>4}  {'Para-CONV':>10}  {'SPARTA':>10}  {'IMP%':>6}  "
          f"{'p':>5}  {'R_max':>5}  {'cached':>6}")
    for pes in (16, 32, 64):
        config = PimConfig(num_pes=pes, iterations=1000)
        para = ParaConv(config).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        imp = (
            (sparta.total_time() - para.total_time())
            / sparta.total_time() * 100
        )
        print(f"{pes:>4}  {para.total_time():>10}  {sparta.total_time():>10}  "
              f"{imp:>6.2f}  {para.period:>5}  {para.max_retiming:>5}  "
              f"{para.num_cached:>6}")

    print("\nExpected shape: both schemes accelerate with the PE count and "
          "Para-CONV stays roughly 2x ahead (the paper's Table 1).")


if __name__ == "__main__":
    main()
