"""``python -m repro.fleet`` CLI: bench and route subcommands."""

from __future__ import annotations

import json

import pytest

from repro.fleet.__main__ import main, parse_workloads


class TestParsing:
    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit, match="unknown workloads"):
            parse_workloads("flower,not-a-workload")

    def test_empty_workloads_exit(self):
        with pytest.raises(SystemExit, match="no workloads"):
            parse_workloads(" , ")

    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestBench:
    def test_small_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fleet.json"
        code = main([
            "bench",
            "--workers", "2",
            "--pes", "32",
            "--requests", "200",
            "--workloads", "flower,lenet5",
            "--batch-window", "16",
            "--pump-every", "16",
            "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "BENCH_fleet/v1"
        assert report["accounting"]["lost"] == 0
        assert report["accounting"]["served"] == 200
        # Default: the last worker is killed at the halfway point.
        assert report["kill_worker_id"] == "worker-1"
        assert report["live_workers"] == 1
        text = capsys.readouterr().out
        assert "lost" in text and "latency" in text

    def test_no_kill_keeps_fleet_whole(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench",
            "--workers", "2",
            "--pes", "32",
            "--requests", "100",
            "--workloads", "flower",
            "--batch-window", "16",
            "--no-kill",
            "--out", str(out),
            "--json",
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["kill_worker_id"] is None
        assert report["live_workers"] == 2
        # --json prints the same report to stdout.
        printed = json.loads(capsys.readouterr().out)
        assert printed["accounting"] == report["accounting"]

    def test_persistent_store_reused(self, tmp_path):
        """Two bench runs over one --store dir: the second is all disk
        hits, zero new compiles."""
        store_dir = tmp_path / "store"
        out = tmp_path / "bench.json"
        args = [
            "bench", "--workers", "2", "--pes", "32",
            "--requests", "60", "--workloads", "flower,lenet5",
            "--batch-window", "16", "--no-kill",
            "--store", str(store_dir), "--out", str(out),
        ]
        assert main(args) == 0
        first = json.loads(out.read_text())["cache"]
        assert main(args) == 0
        second = json.loads(out.read_text())["cache"]
        assert first["disk_writes"] == 2
        assert second["disk_writes"] == 0
        assert second["disk_hits"] == 2


class TestRoute:
    def test_route_prints_assignments(self, capsys):
        code = main([
            "route",
            "--workers", "4",
            "--workloads", "flower,lenet5,stock-predict",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "ring: 4 workers" in text
        for workload in ("flower", "lenet5", "stock-predict"):
            assert workload in text
        assert "spread:" in text
