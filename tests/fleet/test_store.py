"""SharedPlanStore: content addressing, atomicity, concurrent writers."""

from __future__ import annotations

import threading

import pytest

from repro.core.paraconv import ParaConv
from repro.fleet.store import SharedPlanStore
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import PlanKey, plan_key_for, plan_to_dict


@pytest.fixture(scope="module")
def plan_and_key():
    config = PimConfig(num_pes=16)
    graph = synthetic_benchmark("cat")
    plan = ParaConv(config).run(graph)
    key = plan_key_for(graph, config, "dp")
    return plan, key


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        digest = store.put(key, plan)
        assert digest == key.digest
        assert key in store and digest in store
        assert len(store) == 1
        hydrated = store.get(key)
        assert hydrated is not None
        assert plan_to_dict(hydrated) == plan_to_dict(plan)
        assert store.stats.writes == 1
        assert store.stats.read_hits == 1

    def test_absent_is_none(self, tmp_path):
        store = SharedPlanStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert store.stats.reads == 1
        assert store.stats.read_hits == 0

    def test_corrupt_payload_degrades_to_miss(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        store.put(key, plan)
        (store.directory / f"{key.digest}.json").write_text("{ torn")
        assert store.get(key) is None
        assert store.stats.corrupt_payloads == 1

    def test_directory_created_eagerly(self, tmp_path):
        target = tmp_path / "a" / "b" / "store"
        SharedPlanStore(target)
        assert target.is_dir()

    def test_describe_mentions_counts(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        store.put(key, plan)
        assert "1 plans" in store.describe()


class TestSharedCaches:
    def test_compile_once_warm_everywhere(self, tmp_path, plan_and_key):
        """A plan published through cache A is a disk hit for cache B."""
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        cache_a = store.open_cache()
        cache_b = store.open_cache()
        compiles = 0

        def compile_fn():
            nonlocal compiles
            compiles += 1
            return plan

        cache_a.get_or_compile(key, compile_fn)
        cache_b.get_or_compile(key, compile_fn)
        assert compiles == 1
        assert cache_b.stats.disk_hits == 1
        assert cache_b.stats.misses == 0

    def test_no_tmp_litter_after_writes(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        for _ in range(5):
            store.put(key, plan)
        leftovers = [
            p.name for p in store.directory.iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []
        assert len(store) == 1


class TestConcurrentWriters:
    def test_threaded_writers_publish_whole_payloads(
        self, tmp_path, plan_and_key
    ):
        """Many concurrent writers of the same digest never publish a
        torn artifact: the final file always hydrates."""
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    store.put(key, plan)
                    assert store.get(key) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.stats.corrupt_payloads == 0
        hydrated = store.get(key)
        assert plan_to_dict(hydrated) == plan_to_dict(plan)

    def test_two_store_handles_same_directory(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        first = SharedPlanStore(tmp_path / "store")
        second = SharedPlanStore(tmp_path / "store")
        first.put(key, plan)
        assert second.get(key) is not None
        assert len(second) == 1

    def test_accepts_raw_digest_keys(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        store = SharedPlanStore(tmp_path / "store")
        store.put(key.digest, plan)
        assert store.get(key.digest) is not None
        assert isinstance(key, PlanKey)
