"""Shared fixtures for the fleet tests.

Fleets are built over synthetic benchmark graphs via an injected
``graph_loader`` (the same idiom as the server tests), which keeps every
test milliseconds-fast while still exercising real compiles, real caches
and the real shared store.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest

from repro.fleet.router import FleetRouter
from repro.fleet.store import SharedPlanStore
from repro.fleet.worker import FleetWorker
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig


def loader(name: str):
    return synthetic_benchmark(name)


def build_fleet(
    store: Optional[SharedPlanStore],
    num_workers: int = 4,
    num_pes: int = 64,
    num_vaults: int = 32,
    batch_window: int = 8,
    max_queue: int = 4096,
    policies=None,
) -> FleetRouter:
    """A router over equal shards of one machine, on synthetic graphs."""
    machine = PimConfig(num_pes=num_pes)
    shards = machine.split(num_workers, num_vaults=num_vaults)
    workers: List[FleetWorker] = [
        FleetWorker(
            f"worker-{index}",
            shard,
            store=store,
            batch_window=batch_window,
            max_queue=max_queue,
            graph_loader=loader,
        )
        for index, shard in enumerate(shards)
    ]
    return FleetRouter(workers, policies=policies, graph_loader=loader)


def drive(
    router: FleetRouter,
    workloads: Sequence[str],
    count: int,
    pump_every: int = 8,
):
    """Submit ``count`` requests round-robin over ``workloads``, pumping
    periodically; returns every served FleetResult (queue fully drained).
    """
    results = []
    for index in range(count):
        router.advance_to(index)
        router.submit(workloads[index % len(workloads)])
        if (index + 1) % pump_every == 0:
            results.extend(router.pump())
    results.extend(router.drain())
    return results


@pytest.fixture()
def store(tmp_path) -> SharedPlanStore:
    return SharedPlanStore(tmp_path / "store")
