"""Consistent-hash ring: determinism, balance, minimal remap."""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.fleet.hashing import EmptyRingError, HashRing


class TestMembership:
    def test_members_sorted(self):
        ring = HashRing(["b", "a", "c"])
        assert ring.members() == ["a", "b", "c"]
        assert len(ring) == 3
        assert "a" in ring and "z" not in ring

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["a"]).remove("b")

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_empty_ring_routes_nothing(self):
        with pytest.raises(EmptyRingError):
            HashRing().route("key")
        ring = HashRing(["only"])
        ring.remove("only")
        with pytest.raises(EmptyRingError):
            ring.route("key")


class TestRouting:
    def test_deterministic_per_key(self):
        ring = HashRing(["a", "b", "c"])
        for key in ("x", "y", "plan-123"):
            assert ring.route(key) == ring.route(key)

    def test_rebuilt_ring_routes_identically(self):
        keys = [f"key-{i}" for i in range(200)]
        first = [HashRing(["a", "b", "c"]).route(k) for k in keys]
        second = [HashRing(["a", "b", "c"]).route(k) for k in keys]
        assert first == second

    def test_insertion_order_irrelevant(self):
        keys = [f"key-{i}" for i in range(100)]
        forward = HashRing(["a", "b", "c"])
        backward = HashRing(["c", "b", "a"])
        assert [forward.route(k) for k in keys] == [
            backward.route(k) for k in keys
        ]

    def test_cross_process_determinism(self):
        """Routing must survive PYTHONHASHSEED changes — SHA-256, not
        builtin hash(), decides placement."""
        keys = [f"plan-{i}" for i in range(32)]
        local = [HashRing(["a", "b", "c"]).route(k) for k in keys]
        script = (
            "from repro.fleet.hashing import HashRing\n"
            "ring = HashRing(['a', 'b', 'c'])\n"
            f"print(','.join(ring.route(k) for k in {keys!r}))\n"
        )
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            assert out.stdout.strip().split(",") == local

    def test_spread_counts_every_key(self):
        ring = HashRing(["a", "b"])
        keys = [f"k{i}" for i in range(50)]
        spread = ring.spread(keys)
        assert sum(spread.values()) == 50
        assert set(spread) == {"a", "b"}


class TestRemapProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_removal_remaps_about_one_nth(self, seed):
        """Removing one of N members remaps ~1/N of the key space, and
        never moves a key between two surviving members."""
        rng = random.Random(seed)
        members = [f"worker-{i}" for i in range(8)]
        keys = [f"key-{rng.random()}" for _ in range(4000)]
        ring = HashRing(members)
        before = {k: ring.route(k) for k in keys}
        victim = members[seed % len(members)]
        ring.remove(victim)
        after = {k: ring.route(k) for k in keys}

        moved = [k for k in keys if before[k] != after[k]]
        # Every moved key must have been the victim's — survivors keep
        # everything they owned (this is the warm-cache guarantee).
        assert all(before[k] == victim for k in moved)
        assert all(after[k] != victim for k in keys)
        # The victim owned ~1/8 of the space; allow generous slack for
        # virtual-node variance.
        fraction = len(moved) / len(keys)
        assert 0.125 / 3 < fraction < 0.125 * 3

    def test_add_back_restores_routing(self):
        keys = [f"key-{i}" for i in range(500)]
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.route(k) for k in keys}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.route(k) for k in keys} == before
