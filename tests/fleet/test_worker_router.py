"""FleetWorker + FleetRouter: affinity, admission, shedding, failover."""

from __future__ import annotations

import pytest

from repro.fleet.router import FleetConfigurationError, FleetRouter
from repro.fleet.slo import (
    DEFAULT_SLO_POLICIES,
    FleetAdmissionError,
    SloClass,
    SloPolicy,
)
from repro.fleet.worker import FleetWorker, WorkerDeadError
from repro.pim.config import PimConfig
from repro.runtime.server import QueueFullError

from tests.fleet.conftest import build_fleet, drive, loader

WORKLOADS = ["cat", "car", "flower", "speech-1"]


class TestWiring:
    def test_needs_workers(self):
        with pytest.raises(FleetConfigurationError, match="at least one"):
            FleetRouter([])

    def test_duplicate_ids_rejected(self):
        shard = PimConfig(num_pes=16).partition(range(16))
        workers = [
            FleetWorker("w", shard, graph_loader=loader) for _ in range(2)
        ]
        with pytest.raises(FleetConfigurationError, match="duplicate"):
            FleetRouter(workers, graph_loader=loader)

    def test_worker_serves_logical_view(self, store):
        machine = PimConfig(num_pes=64)
        shard = machine.split(4, num_vaults=32)[2]
        worker = FleetWorker("w2", shard, store=store, graph_loader=loader)
        assert worker.partition.is_partition
        assert not worker.serving_config.has_mask
        assert worker.serving_config.num_pes == 16
        assert worker.num_vaults == 8

    def test_advance_to_is_monotone(self, store):
        router = build_fleet(store, num_workers=2)
        router.advance_to(10)
        router.advance_to(5)
        assert router.now_units == 10


class TestAffinityRouting:
    def test_same_workload_same_worker(self, store):
        router = build_fleet(store)
        owner = router.worker_for("cat")
        for _ in range(5):
            assert router.worker_for("cat") is owner

    def test_affinity_key_is_plan_digest(self, store):
        """Requests hash on the exact key the shard's plan cache uses."""
        router = build_fleet(store)
        drive(router, ["cat"], 4)
        owner = router.worker_for("cat")
        assert router.affinity_key("cat") in owner.cache.keys()

    def test_all_served_on_owning_worker(self, store):
        router = build_fleet(store)
        results = drive(router, WORKLOADS, 64)
        assert len(results) == 64
        by_workload = {}
        for res in results:
            by_workload.setdefault(res.workload, set()).add(res.worker_id)
        for workload, worker_ids in by_workload.items():
            assert worker_ids == {router.worker_for(workload).worker_id}


class TestAdmissionControl:
    def test_class_depth_bound_raises_typed_error(self, store):
        policies = dict(DEFAULT_SLO_POLICIES)
        policies[SloClass.INTERACTIVE] = SloPolicy(max_queue_depth=2)
        router = build_fleet(store, policies=policies)
        router.submit("cat", slo="interactive")
        router.submit("cat", slo="interactive")
        with pytest.raises(FleetAdmissionError) as exc:
            router.submit("cat", slo="interactive")
        assert exc.value.slo is SloClass.INTERACTIVE
        # Other classes are unaffected by the full interactive queue.
        router.submit("cat", slo="batch")
        assert router.class_depth("interactive") == 2
        assert router.class_depth("batch") == 1
        counters = router.metrics.snapshot()["counters"]
        assert counters["fleet.requests_rejected.interactive"] == 1

    def test_depth_frees_after_serving(self, store):
        router = build_fleet(store)
        router.submit("cat")
        assert router.queue_depth == 1
        router.drain()
        assert router.queue_depth == 0


class TestDeadlineShedding:
    def test_expired_requests_shed_not_lost(self, store):
        policies = dict(DEFAULT_SLO_POLICIES)
        policies[SloClass.INTERACTIVE] = SloPolicy(
            max_queue_depth=1024, deadline_units=5
        )
        router = build_fleet(store, policies=policies)
        router.submit("cat", slo="interactive")
        router.submit("cat", slo="batch")
        router.advance_to(100)  # the interactive deadline is long gone
        results = router.drain()
        # The batch request (no deadline) was served; interactive shed.
        assert [r.slo for r in results] == [SloClass.BATCH]
        accounting = router.accounting()
        assert accounting["shed"] == 1
        assert accounting["served"] == 1
        assert accounting["lost"] == 0

    def test_fresh_requests_survive_shedding(self, store):
        policies = dict(DEFAULT_SLO_POLICIES)
        policies[SloClass.INTERACTIVE] = SloPolicy(
            max_queue_depth=1024, deadline_units=1000
        )
        router = build_fleet(store, policies=policies)
        router.submit("cat", slo="interactive")
        router.advance_to(10)
        results = router.drain()
        assert len(results) == 1
        assert router.accounting()["shed"] == 0


class TestVirtualTime:
    def test_latency_is_queueing_plus_service(self, store):
        router = build_fleet(store, num_workers=2)
        router.advance_to(7)
        router.submit("cat")
        router.advance_to(19)
        (result,) = router.drain()
        assert result.arrival_units == 7
        assert result.dispatch_units == 19
        assert result.completion_units == 19 + result.result.sim_latency
        assert result.latency_units == result.completion_units - 7

    def test_back_to_back_batches_queue_on_the_horizon(self, store):
        router = build_fleet(store, num_workers=2, batch_window=1)
        router.submit("cat")
        router.submit("cat")
        first, second = router.drain()
        # Second batch dispatches when the first completes, not at now.
        assert second.dispatch_units == first.completion_units

    def test_deterministic_across_runs(self, store, tmp_path):
        from repro.fleet.store import SharedPlanStore

        latencies = []
        for run in range(2):
            fresh = SharedPlanStore(tmp_path / f"run-{run}")
            router = build_fleet(fresh)
            results = drive(router, WORKLOADS, 48)
            latencies.append(
                sorted((r.fleet_id, r.latency_units) for r in results)
            )
        assert latencies[0] == latencies[1]


class TestFailover:
    def test_kill_worker_loses_nothing(self, store):
        router = build_fleet(store)
        for index in range(32):
            router.advance_to(index)
            router.submit(WORKLOADS[index % len(WORKLOADS)])
        victim = router.worker_for("cat").worker_id
        rerouted = router.kill_worker(victim)
        assert rerouted > 0
        assert victim not in router.ring
        results = router.drain()
        accounting = router.accounting()
        assert accounting["lost"] == 0
        assert accounting["served"] == 32
        assert len({r.fleet_id for r in results}) == 32
        assert all(r.worker_id != victim for r in results)

    def test_rerouted_requests_keep_arrival_time(self, store):
        router = build_fleet(store, num_workers=2)
        router.advance_to(3)
        victim = router.worker_for("cat").worker_id
        router.submit("cat")
        router.advance_to(50)
        router.kill_worker(victim)
        (result,) = router.drain()
        assert result.arrival_units == 3
        assert result.latency_units >= 47

    def test_submit_to_dead_worker_raises(self, store):
        machine = PimConfig(num_pes=16)
        worker = FleetWorker(
            "w", machine.partition(range(16)), graph_loader=loader
        )
        worker.kill()
        with pytest.raises(WorkerDeadError):
            worker.submit(
                "cat", iterations=1, slo=SloClass.STANDARD,
                arrival_units=0, fleet_id=1,
            )

    def test_routing_rehashes_to_survivors(self, store):
        router = build_fleet(store)
        before = {w: router.worker_for(w).worker_id for w in WORKLOADS}
        victim = before["cat"]
        router.kill_worker(victim)
        after = {w: router.worker_for(w).worker_id for w in WORKLOADS}
        assert after["cat"] != victim
        # Workloads the victim never owned keep their owner (warm caches).
        for workload, owner in before.items():
            if owner != victim:
                assert after[workload] == owner

    def test_killing_entire_fleet_with_queued_work_raises(self, store):
        from repro.fleet.hashing import EmptyRingError

        router = build_fleet(store, num_workers=2)
        owner = router.worker_for("cat").worker_id
        other = next(w for w in router.workers if w != owner)
        router.submit("cat")
        router.kill_worker(other)  # queue empty: clean removal
        with pytest.raises(EmptyRingError):
            router.kill_worker(owner)  # nowhere left to re-route

    def test_saturated_survivor_is_pumped_during_reroute(self, store):
        from repro.graph.generators import BENCHMARK_SIZES

        router = build_fleet(store, num_workers=2, max_queue=4)
        owned = {}
        for workload in BENCHMARK_SIZES:
            owned.setdefault(
                router.worker_for(workload).worker_id, []
            ).append(workload)
        assert len(owned) == 2, "expected both workers to own workloads"
        (a, a_wls), (b, b_wls) = owned.items()
        # Fill b's queue, then put work on a and kill it: rerouting must
        # pump b to make room instead of dropping.
        for _ in range(4):
            router.submit(b_wls[0])
        for _ in range(3):
            router.submit(a_wls[0])
        router.kill_worker(a)
        router.drain()
        accounting = router.accounting()
        assert accounting["lost"] == 0
        assert accounting["served"] == 7


class TestReporting:
    def test_fleet_metrics_aggregate_workers(self, store):
        router = build_fleet(store)
        drive(router, WORKLOADS, 32)
        merged = router.fleet_metrics().snapshot()["counters"]
        per_worker = sum(
            w.server.metrics.snapshot()["counters"].get("requests_served", 0)
            for w in router.workers.values()
        )
        assert merged["requests_served"] == per_worker == 32
        assert merged["fleet.requests_admitted"] == 32

    def test_cache_summary_counts_all_shards(self, store):
        router = build_fleet(store)
        drive(router, WORKLOADS, 16)
        summary = router.cache_summary()
        assert summary["misses"] == len(WORKLOADS)
        assert 0.0 <= summary["hit_rate"] <= 1.0

    def test_worker_snapshot_shape(self, store):
        router = build_fleet(store)
        drive(router, ["cat"], 8)
        snapshot = router.worker_for("cat").snapshot()
        assert snapshot["alive"] is True
        assert snapshot["served"] == 8
        assert snapshot["pes"] == 16
        assert "partition" in snapshot and "cache" in snapshot


class TestBackpressure:
    def test_shard_queue_full_propagates(self, store):
        router = build_fleet(store, num_workers=2, max_queue=2)
        owner_queue = []
        with pytest.raises(QueueFullError):
            for _ in range(10):
                owner_queue.append(router.submit("cat"))
        assert len(owner_queue) == 2
        # Router depth only counts admitted requests.
        assert router.queue_depth == 2
        router.drain()
        assert router.accounting()["lost"] == 0
