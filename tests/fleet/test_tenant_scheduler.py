"""Cross-tenant scheduling: admission, SLO order, horizons, accounting."""

import pytest

from repro.fleet.slo import FleetAdmissionError, SloClass, SloPolicy
from repro.fleet.tenancy import TenancyError, TenantScheduler
from repro.pim.config import PimConfig
from repro.pim.tenancy import TenantPlacement
from repro.runtime.plan_cache import PlanCache


def make_scheduler(names=("a", "b"), num_pes=8, **kwargs):
    placement = TenantPlacement.even(PimConfig(num_pes=num_pes), list(names))
    kwargs.setdefault("batch_window", 2)
    return TenantScheduler(placement, **kwargs)


class TestConstruction:
    def test_one_server_per_tenant_on_partition_view(self):
        scheduler = make_scheduler()
        assert scheduler.tenants == ("a", "b")
        # Servers run on the *partition* views: physical masks present.
        assert scheduler.server_for("a").config.pe_mask == (0, 1, 2, 3)
        assert scheduler.server_for("b").config.pe_mask == (4, 5, 6, 7)

    def test_slo_for_unknown_tenant_rejected(self):
        with pytest.raises(TenancyError, match="unknown tenants"):
            make_scheduler(slos={"ghost": "interactive"})

    def test_default_slo_is_standard(self):
        scheduler = make_scheduler(slos={"a": "interactive"})
        assert scheduler.slo_for("a") is SloClass.INTERACTIVE
        assert scheduler.slo_for("b") is SloClass.STANDARD

    def test_unknown_tenant_queries_rejected(self):
        scheduler = make_scheduler()
        with pytest.raises(TenancyError, match="unknown tenant"):
            scheduler.server_for("ghost")
        with pytest.raises(TenancyError, match="unknown tenant"):
            scheduler.submit("ghost", "cat")


class TestAdmission:
    def test_queue_bound_is_per_tenant(self):
        policies = {SloClass.STANDARD: SloPolicy(max_queue_depth=2)}
        scheduler = make_scheduler(policies=policies)
        scheduler.submit("a", "cat")
        scheduler.submit("a", "cat")
        with pytest.raises(FleetAdmissionError) as excinfo:
            scheduler.submit("a", "cat")
        assert excinfo.value.slo is SloClass.STANDARD
        # Tenant b's budget is untouched by a's overload.
        scheduler.submit("b", "cat")
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters["requests_rejected"] == 1
        assert counters["requests_accepted"] == 3

    def test_invalid_iterations_rejected_before_accounting(self):
        scheduler = make_scheduler()
        with pytest.raises(ValueError):
            scheduler.submit("a", "cat", iterations=0)
        assert scheduler.queue_depth() == 0


class TestScheduling:
    def test_strictest_slo_served_first(self):
        scheduler = make_scheduler(slos={"b": "interactive"})
        scheduler.submit("a", "cat")
        scheduler.submit("b", "cat")
        served = scheduler.step()
        assert served and all(r.tenant == "b" for r in served)

    def test_horizon_advances_only_for_served_tenant(self):
        scheduler = make_scheduler()
        scheduler.submit("a", "cat")
        scheduler.submit("b", "car")
        served = scheduler.step()
        first = served[0].tenant
        other = "b" if first == "a" else "a"
        assert scheduler.horizon(first) > 0
        assert scheduler.horizon(other) == 0

    def test_horizon_fair_share_tiebreak(self):
        scheduler = make_scheduler()
        for _ in range(2):
            scheduler.submit("a", "cat")
            scheduler.submit("b", "cat")
        first = scheduler.step()[0].tenant
        # Same SLO class: the not-yet-served tenant goes next.
        second = scheduler.step()[0].tenant
        assert {first, second} == {"a", "b"}

    def test_step_idle_returns_empty(self):
        assert make_scheduler().step() == []

    def test_drain_serves_everything(self):
        scheduler = make_scheduler()
        for _ in range(3):
            scheduler.submit("a", "cat")
            scheduler.submit("b", "car")
        results = scheduler.drain()
        assert len(results) == 6
        assert scheduler.queue_depth() == 0

    def test_batches_coalesce_per_tenant(self):
        scheduler = make_scheduler(batch_window=4)
        for _ in range(4):
            scheduler.submit("a", "cat")
        served = scheduler.step()
        assert len(served) == 4
        assert {r.result.batch_id for r in served} == {served[0].result.batch_id}


class TestShedding:
    def test_expired_requests_shed_and_counted(self):
        policies = {
            SloClass.STANDARD: SloPolicy(max_queue_depth=100, deadline_units=1)
        }
        scheduler = make_scheduler(names=("a",), policies=policies)
        for _ in range(6):
            scheduler.submit("a", "cat", iterations=50)
        # First batch serves (age 0); its completion pushes the horizon
        # far past the 1-unit deadline, so the rest shed at dispatch.
        scheduler.drain()
        accounting = scheduler.accounting()
        row = accounting["tenants"]["a"]
        assert row["accepted"] == 6
        assert row["served"] == 2
        assert row["shed"] == 4
        assert row["queued"] == 0
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters["requests_shed"] == 4

    def test_no_deadline_means_no_shedding(self):
        scheduler = make_scheduler(names=("a",))
        for _ in range(4):
            scheduler.submit("a", "cat", iterations=50)
        scheduler.drain()
        assert scheduler.accounting()["tenants"]["a"]["shed"] == 0


class TestAccountingAndMetrics:
    def test_accounting_closes_per_tenant_and_total(self):
        scheduler = make_scheduler()
        for _ in range(3):
            scheduler.submit("a", "cat")
            scheduler.submit("b", "car")
        scheduler.step()
        accounting = scheduler.accounting()
        for row in accounting["tenants"].values():
            assert row["accepted"] == row["served"] + row["shed"] + row["queued"]
        totals = accounting["totals"]
        assert totals["accepted"] == 6
        assert totals["served"] + totals["queued"] == 6

    def test_fleet_view_namespaces_and_aggregates(self):
        scheduler = make_scheduler()
        scheduler.submit("a", "cat")
        scheduler.submit("b", "car")
        scheduler.drain()
        counters = scheduler.fleet_view().snapshot()["counters"]
        assert counters["tenant.a.requests_served"] == 1
        assert counters["tenant.b.requests_served"] == 1
        # Plain names aggregate across tenants plus the scheduler's own.
        assert counters["inferences_served"] == 2

    def test_shared_cache_holds_one_plan_per_tenant(self):
        cache = PlanCache()
        scheduler = make_scheduler(cache=cache)
        # Same workload for both tenants: partition fingerprints must
        # still give each tenant its own cache entry.
        scheduler.submit("a", "cat")
        scheduler.submit("b", "cat")
        scheduler.drain()
        assert len(cache) == 2

    def test_tenant_metrics_are_per_server(self):
        scheduler = make_scheduler()
        scheduler.submit("a", "cat")
        scheduler.drain()
        assert (
            scheduler.tenant_metrics("a").snapshot()["counters"][
                "requests_served"
            ]
            == 1
        )
        assert (
            "requests_served"
            not in scheduler.tenant_metrics("b").snapshot()["counters"]
        )

    def test_describe_mentions_every_tenant(self):
        scheduler = make_scheduler()
        text = scheduler.describe()
        assert "a:" in text and "b:" in text
