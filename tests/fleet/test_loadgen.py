"""FleetLoadGenerator determinism and the run_bench harness."""

from __future__ import annotations

import pytest

from repro.fleet.loadgen import (
    FleetLoadGenerator,
    TraceRequest,
    _percentiles,
    run_bench,
)
from repro.fleet.slo import SloClass

from tests.fleet.conftest import build_fleet

WORKLOADS = ["cat", "car", "flower", "speech-1"]


class TestGenerator:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetLoadGenerator([])
        with pytest.raises(ValueError, match="weights"):
            FleetLoadGenerator(["cat"], weights=[1.0, 2.0])
        with pytest.raises(ValueError, match="mean_interarrival"):
            FleetLoadGenerator(["cat"], mean_interarrival_units=0)
        with pytest.raises(ValueError, match="no positive"):
            FleetLoadGenerator(["cat"], slo_mix={SloClass.BATCH: 0.0})

    def test_same_seed_same_trace(self):
        gen = FleetLoadGenerator(WORKLOADS, seed=11)
        first = list(gen.requests(500))
        second = list(gen.requests(500))
        assert first == second

    def test_different_seeds_differ(self):
        a = list(FleetLoadGenerator(WORKLOADS, seed=1).requests(200))
        b = list(FleetLoadGenerator(WORKLOADS, seed=2).requests(200))
        assert a != b

    def test_arrivals_monotone_and_typed(self):
        previous = -1
        for trace in FleetLoadGenerator(WORKLOADS, seed=3).requests(300):
            assert isinstance(trace, TraceRequest)
            assert trace.arrival_units >= previous
            previous = trace.arrival_units
            assert trace.workload in WORKLOADS
            assert isinstance(trace.slo, SloClass)

    def test_mix_respects_zero_weights(self):
        gen = FleetLoadGenerator(
            WORKLOADS,
            slo_mix={SloClass.BATCH: 1.0},
            seed=4,
        )
        assert all(
            t.slo is SloClass.BATCH for t in gen.requests(100)
        )

    def test_mean_interarrival_scales_horizon(self):
        slow = list(
            FleetLoadGenerator(
                WORKLOADS, mean_interarrival_units=100, seed=5
            ).requests(200)
        )[-1].arrival_units
        fast = list(
            FleetLoadGenerator(
                WORKLOADS, mean_interarrival_units=1, seed=5
            ).requests(200)
        )[-1].arrival_units
        assert slow > 10 * fast


class TestPercentiles:
    def test_empty(self):
        assert _percentiles([])["count"] == 0

    def test_nearest_rank(self):
        stats = _percentiles(list(range(1, 101)))
        assert stats["p50"] == 50
        assert stats["p95"] == 95
        assert stats["p99"] == 99
        assert stats["max"] == 100
        assert stats["mean"] == pytest.approx(50.5)


class TestRunBench:
    def test_healthy_run_report_shape(self, store):
        router = build_fleet(store, batch_window=16)
        report = run_bench(
            router,
            FleetLoadGenerator(WORKLOADS, seed=0),
            num_requests=200,
            pump_every=16,
        )
        assert report["schema"] == "BENCH_fleet/v1"
        assert report["accounting"]["lost"] == 0
        assert report["accounting"]["served"] == 200
        assert report["latency_units"]["overall"]["count"] == 200
        per_class_total = sum(
            report["latency_units"][slo.value]["count"] for slo in SloClass
        )
        assert per_class_total == 200
        assert report["live_workers"] == 4
        assert len(report["workers"]) == 4

    def test_kill_mid_run_loses_nothing(self, store):
        router = build_fleet(store, batch_window=16)
        report = run_bench(
            router,
            FleetLoadGenerator(WORKLOADS, seed=0),
            num_requests=300,
            kill_worker_id="worker-2",
            pump_every=16,
        )
        assert report["kill_worker_id"] == "worker-2"
        assert report["kill_after"] == 150
        assert report["live_workers"] == 3
        assert report["accounting"]["lost"] == 0
        assert report["accounting"]["served"] == 300
        assert report["accounting"]["workers_lost"] == 1

    def test_backpressure_retry_never_drops(self, store):
        """Tiny queues force admission retries; the bench still serves
        every arrival exactly once."""
        router = build_fleet(store, batch_window=4, max_queue=8)
        report = run_bench(
            router,
            FleetLoadGenerator(WORKLOADS, seed=1),
            num_requests=120,
            pump_every=64,
        )
        assert report["accounting"]["served"] == 120
        assert report["accounting"]["lost"] == 0

    def test_deterministic_latencies(self, store, tmp_path):
        from repro.fleet.store import SharedPlanStore

        reports = []
        for run in range(2):
            router = build_fleet(
                SharedPlanStore(tmp_path / f"s{run}"), batch_window=16
            )
            reports.append(
                run_bench(
                    router,
                    FleetLoadGenerator(WORKLOADS, seed=9),
                    num_requests=150,
                    kill_worker_id="worker-1",
                    pump_every=16,
                )
            )
        assert (
            reports[0]["latency_units"] == reports[1]["latency_units"]
        )
        assert reports[0]["accounting"] == reports[1]["accounting"]
