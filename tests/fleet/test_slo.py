"""SLO classes, policies and the typed admission error."""

from __future__ import annotations

import pytest

from repro.fleet.slo import (
    DEFAULT_SLO_POLICIES,
    FleetAdmissionError,
    SloClass,
    SloPolicy,
)


class TestSloClass:
    def test_from_name_accepts_strings_and_instances(self):
        assert SloClass.from_name("interactive") is SloClass.INTERACTIVE
        assert SloClass.from_name("BATCH") is SloClass.BATCH
        assert SloClass.from_name(SloClass.STANDARD) is SloClass.STANDARD

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="interactive"):
            SloClass.from_name("gold")


class TestSloPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            SloPolicy(max_queue_depth=4, deadline_units=0)
        policy = SloPolicy(max_queue_depth=4, deadline_units=10)
        assert policy.deadline_units == 10

    def test_defaults_cover_every_class(self):
        assert set(DEFAULT_SLO_POLICIES) == set(SloClass)
        # Strictest class queues shallowest; no default deadlines.
        assert (
            DEFAULT_SLO_POLICIES[SloClass.INTERACTIVE].max_queue_depth
            < DEFAULT_SLO_POLICIES[SloClass.BATCH].max_queue_depth
        )
        assert all(
            p.deadline_units is None for p in DEFAULT_SLO_POLICIES.values()
        )


class TestAdmissionError:
    def test_carries_class_and_bound(self):
        err = FleetAdmissionError(SloClass.BATCH, 32, 32, "cat")
        assert err.slo is SloClass.BATCH
        assert err.depth == 32 and err.limit == 32
        assert "batch" in str(err) and "cat" in str(err)
