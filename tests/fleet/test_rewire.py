"""Fleet-wide live rewiring: affinity remap, zero loss, warm repeats.

The fleet adds one obligation on top of the single-server rewire: plan
affinity moves with the graph. After a swap the workload hashes on the
new graph's plan digest — possibly a different shard — and every queued
request either drains on the old plan or re-routes with its fleet
identity intact, so ``accounting()['lost']`` stays zero throughout.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetRewireResult
from repro.graph.generators import synthetic_benchmark

from .conftest import build_fleet, drive


def v2_graph():
    """A replacement graph with a different fingerprint than 'cat'."""
    return synthetic_benchmark("car").relabelled("cat-v2")


def warm(router, workload="cat", count=8):
    """Serve a few requests so live sessions exist and plans are warm."""
    return drive(router, [workload], count)


def test_affinity_remaps_to_new_digest(store):
    router = build_fleet(store)
    warm(router)
    old_key = router.affinity_key("cat")
    result = router.rewire("cat", v2_graph())
    assert isinstance(result, FleetRewireResult)
    assert router.affinity_key("cat") != old_key
    # The remap is consistent: the new owner is recomputed, not cached.
    assert router.worker_for("cat").worker_id == result.new_worker


def test_drain_serves_on_old_plan_with_zero_loss(store):
    router = build_fleet(store)
    warm(router)
    for index in range(6):
        router.advance_to(100 + index)
        router.submit("cat")
    result = router.rewire("cat", v2_graph(), cut_point="drain")
    assert result.cut_point == "drain"
    assert len(result.drained) == 6
    assert result.rerouted == 0
    accounting = router.accounting()
    assert accounting["lost"] == 0
    assert accounting["queued"] == 0


def test_reroute_preserves_fleet_identity(store):
    router = build_fleet(store)
    warm(router)
    for index in range(5):
        router.advance_to(200 + index)
        router.submit("cat")
    result = router.rewire("cat", v2_graph(), cut_point="reroute")
    assert result.rerouted == 5
    assert len(result.drained) == 0
    served = router.drain()
    mine = [r for r in served if r.workload == "cat"]
    assert len(mine) == 5
    # Fleet identity survived the reroute: each request kept its original
    # arrival time, so latency keeps charging the full queueing delay.
    assert sorted(r.arrival_units for r in mine) == [200, 201, 202, 203, 204]
    assert len({r.fleet_id for r in mine}) == 5
    assert router.accounting()["lost"] == 0


def test_rerouted_requests_land_on_new_owner(store):
    router = build_fleet(store)
    warm(router)
    for index in range(4):
        router.advance_to(300 + index)
        router.submit("cat")
    result = router.rewire("cat", v2_graph(), cut_point="reroute")
    served = router.drain()
    mine = [r for r in served if r.workload == "cat"]
    assert {r.worker_id for r in mine} == {result.new_worker}


def test_sessions_swapped_and_overrides_installed(store):
    router = build_fleet(store)
    warm(router)
    live_before = sum(
        1 for worker in router.workers.values()
        if "cat" in worker.server.sessions()
    )
    result = router.rewire("cat", v2_graph())
    assert result.sessions_swapped == live_before >= 1
    # Shards that never served it got the override: any first session
    # they create must compile the new graph.
    v2_print = v2_graph().fingerprint()
    for worker in router.workers.values():
        session = worker.server.sessions().get("cat")
        if session is not None:
            assert session.plan.graph.fingerprint() == v2_print


def test_repeat_rewire_warm_through_shared_store(store):
    router = build_fleet(store)
    warm(router)
    v2 = v2_graph()
    first = router.rewire("cat", v2)
    assert first.recompiled
    # Bounce back and to v2 again: both plans sit in the shared store,
    # so neither swap compiles anywhere in the fleet — even if affinity
    # moved the workload to a shard that never compiled it locally.
    back = router.rewire("cat", synthetic_benchmark("cat"))
    again = router.rewire("cat", v2)
    assert not back.recompiled
    assert not again.recompiled


def test_bad_cut_point_rejected(store):
    router = build_fleet(store)
    with pytest.raises(ValueError, match="cut_point"):
        router.rewire("cat", v2_graph(), cut_point="never")


def test_rewire_with_bystander_traffic_closes_books(store):
    router = build_fleet(store)
    warm(router, "cat")
    warm(router, "flower")
    for index in range(9):
        router.advance_to(400 + index)
        router.submit(("cat", "flower")[index % 2])
    router.rewire("cat", v2_graph(), cut_point="reroute")
    router.drain()
    accounting = router.accounting()
    assert accounting["lost"] == 0
    assert accounting["queued"] == 0
    assert accounting["served"] == accounting["admitted"]
