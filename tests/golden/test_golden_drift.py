"""Golden drift detection for the full planning pipeline.

Every paper benchmark's compiled plan on the default machine is pinned in
``tests/golden/benchmarks.json`` — scalar metrics *and* the SHA-256 of the
canonical plan JSON. A failing test here means the planner's output moved;
if the move is intentional, bless it with::

    PYTHONPATH=src python -m tests.golden.regen

and review the resulting fixture diff like any other code change.
"""

from __future__ import annotations

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.pim.config import PimConfig

from tests.golden.regen import (
    GOLDEN_FORMAT_VERSION,
    GOLDEN_PATH,
    golden_entry,
    load_golden,
)

REGEN_HINT = "regenerate with: PYTHONPATH=src python -m tests.golden.regen"


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.is_file(), f"missing fixture {GOLDEN_PATH}; {REGEN_HINT}"
    return load_golden()


@pytest.fixture(scope="module")
def config(golden):
    return PimConfig.from_dict(golden["config"])


class TestFixtureShape:
    def test_format_version(self, golden):
        assert golden["format_version"] == GOLDEN_FORMAT_VERSION

    def test_covers_every_benchmark(self, golden):
        assert set(golden["benchmarks"]) == set(BENCHMARK_SIZES), REGEN_HINT

    def test_config_is_default_machine(self, golden):
        assert PimConfig.from_dict(golden["config"]) == PimConfig()


@pytest.mark.parametrize("name", sorted(BENCHMARK_SIZES))
def test_benchmark_plan_matches_golden(name, golden, config):
    """Recompile the benchmark and diff every pinned fact field-by-field."""
    expected = golden["benchmarks"][name]
    actual = golden_entry(ParaConv(config).run(synthetic_benchmark(name)))
    drifted = {
        field: (expected[field], actual[field])
        for field in expected
        if actual.get(field) != expected[field]
    }
    assert not drifted, (
        f"golden drift on {name!r}: "
        + ", ".join(
            f"{field}: golden={want!r} actual={got!r}"
            for field, (want, got) in sorted(drifted.items())
        )
        + f"; {REGEN_HINT}"
    )
