"""Golden fixture computation and regeneration.

The golden suite pins the full compiled plan for every paper benchmark on
the default machine: scalar plan metrics (period, ``R_max``, group shape,
allocation profit, off-chip traffic, analytic latency) plus a SHA-256
digest of the canonical plan JSON. Any change to the planner that moves
*any* of these is surfaced as an explicit diff in
``tests/golden/test_golden_drift.py`` — intentional improvements are then
blessed by regenerating the fixture:

    PYTHONPATH=src python -m tests.golden.regen

The fixture is deterministic: the whole pipeline is seed-free given the
synthetic benchmark generator's fixed seeds, so regeneration on any
machine produces a byte-identical ``benchmarks.json``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict

from repro.core.paraconv import ParaConv, ParaConvResult
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import plan_to_dict

#: Where the golden fixture lives, next to this module.
GOLDEN_PATH = Path(__file__).resolve().parent / "benchmarks.json"

#: Fixture layout version; bump when entry fields change.
GOLDEN_FORMAT_VERSION = 1


def plan_digest(result: ParaConvResult) -> str:
    """SHA-256 of the canonical JSON form of the full compiled plan."""
    payload = json.dumps(
        plan_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def golden_entry(result: ParaConvResult) -> Dict[str, Any]:
    """The pinned facts about one compiled benchmark plan."""
    allocation = result.allocation
    return {
        "graph_fingerprint": result.graph.fingerprint(),
        "config_fingerprint": result.config.fingerprint(),
        "period": result.period,
        "max_retiming": result.max_retiming,
        "prologue_time": result.prologue_time,
        "group_width": result.group_width,
        "num_groups": result.num_groups,
        "num_cached": len(allocation.cached),
        "total_delta_r": allocation.total_delta_r,
        "slots_used": allocation.slots_used,
        "capacity_slots": allocation.capacity_slots,
        "offchip_bytes_per_iteration": result.offchip_bytes_per_iteration(),
        "total_time": result.total_time(),
        "plan_sha256": plan_digest(result),
    }


def compute_golden(config: PimConfig | None = None) -> Dict[str, Any]:
    """Compile every paper benchmark and collect its golden entry."""
    config = config or PimConfig()
    entries = {
        name: golden_entry(ParaConv(config).run(synthetic_benchmark(name)))
        for name in BENCHMARK_SIZES
    }
    return {
        "format_version": GOLDEN_FORMAT_VERSION,
        "config": config.to_dict(),
        "benchmarks": entries,
    }


def load_golden() -> Dict[str, Any]:
    """Read the committed fixture."""
    return json.loads(GOLDEN_PATH.read_text())


def main() -> int:
    payload = compute_golden()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(payload['benchmarks'])} entries to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
