"""Sweep runner and CLI — including the headline acceptance sweep."""

import json

import pytest

from repro.core.allocation import ALLOCATORS
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.pim.config import PimConfig
from repro.verify.__main__ import build_parser, main
from repro.verify.runner import run_verification_sweep, verify_workload


@pytest.fixture(scope="module")
def sweep():
    """One full-battery sweep shared by every assertion below (~2 s)."""
    return run_verification_sweep(config=PimConfig(num_pes=16))


class TestAcceptanceSweep:
    def test_sweep_is_clean(self, sweep):
        assert sweep.ok, sweep.summary()

    def test_covers_all_benchmarks(self, sweep):
        assert {w.workload for w in sweep.workloads} == set(BENCHMARK_SIZES)

    def test_zero_validator_errors_everywhere(self, sweep):
        """Acceptance: 12 benchmarks x every registered allocator, 0 errors."""
        for workload in sweep.workloads:
            assert set(workload.reports) == set(ALLOCATORS)
            for name, report in workload.reports.items():
                assert report.ok, (
                    f"{workload.workload} [{name}]: {report.summary()}"
                )

    def test_differential_ok_everywhere(self, sweep):
        for workload in sweep.workloads:
            assert workload.differential is not None
            assert workload.differential.ok, workload.differential.failures

    def test_exhaustive_used_on_small_instances(self, sweep):
        """Acceptance: DP held to the brute-force optimum when n <= limit."""
        for workload in sweep.workloads:
            diff = workload.differential
            assert diff.exhaustive_checked == (diff.num_items <= 16)
            if diff.exhaustive_checked:
                assert diff.profits["dp"] == diff.profits["exhaustive"]

    def test_all_faults_detected_everywhere(self, sweep):
        """Acceptance: 100% detection rate across the whole sweep."""
        for workload in sweep.workloads:
            assert workload.faults is not None
            assert workload.faults.ok, (
                f"{workload.workload}: missed {workload.faults.missed}"
            )

    def test_summary_mentions_every_workload(self, sweep):
        text = sweep.summary()
        for name in BENCHMARK_SIZES:
            assert name in text
        assert "overall: ok" in text

    def test_as_dict_is_json_serializable(self, sweep):
        payload = json.dumps(sweep.as_dict())
        decoded = json.loads(payload)
        assert decoded["ok"] is True
        assert len(decoded["workloads"]) == len(BENCHMARK_SIZES)


class TestVerifyWorkload:
    def test_stages_can_be_disabled(self):
        outcome = verify_workload(
            synthetic_benchmark("cat"),
            PimConfig(),
            allocators=["dp"],
            with_differential=False,
            with_faults=False,
        )
        assert outcome.ok
        assert outcome.differential is None
        assert outcome.faults is None
        assert list(outcome.reports) == ["dp"]

    def test_all_allocators_validated_at_dp_width(self):
        outcome = verify_workload(
            synthetic_benchmark("cat"),
            PimConfig(),
            allocators=["dp", "greedy", "all-edram"],
            with_differential=False,
            with_faults=False,
        )
        assert outcome.ok
        assert set(outcome.reports) == {"dp", "greedy", "all-edram"}


class TestCli:
    def test_parser_rejects_unknown_benchmark(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--benchmarks", "nonesuch"])

    def test_list_checks(self, capsys):
        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "pe-exclusion" in out
        assert "cache-capacity" in out

    def test_subset_run_exits_zero(self, capsys):
        code = main(["--benchmarks", "cat", "--allocators", "dp", "greedy"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall: ok" in out

    def test_json_output_parses(self, capsys):
        code = main(
            ["--benchmarks", "cat", "--allocators", "dp",
             "--no-mutations", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["workloads"][0]["workload"] == "cat"

    def test_strict_liveness_can_fail(self, capsys):
        """Default plans carry the documented liveness gap; strict flags it."""
        code = main(
            ["--benchmarks", "cat", "--allocators", "dp",
             "--strict-liveness", "--no-oracle", "--no-mutations"]
        )
        out = capsys.readouterr().out
        # Either the plan is tight enough to pass or strict mode fails it;
        # both are legal, but the exit code must match the report.
        assert ("overall: ok" in out) == (code == 0)
