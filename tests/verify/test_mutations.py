"""Fault injection: clone isolation and 100% detection (acceptance)."""

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.pim.config import PimConfig
from repro.verify.mutation import (
    MUTATORS,
    clone_result,
    fault_detection_report,
    inject_faults,
)
from repro.verify.validator import ScheduleValidator


@pytest.fixture(scope="module")
def config():
    return PimConfig(num_pes=16, iterations=1000)


@pytest.fixture(scope="module")
def plan(config):
    return ParaConv(config).run(synthetic_benchmark("cat"))


class TestCloneIsolation:
    def test_mutating_a_clone_leaves_the_original_intact(self, plan):
        baseline = ScheduleValidator().validate(plan)
        assert baseline.ok
        for name in sorted(MUTATORS):
            mutant = clone_result(plan)
            MUTATORS[name](mutant, __import__("random").Random(0))
            again = ScheduleValidator().validate(plan)
            assert again.ok, f"mutator {name!r} leaked into the pristine plan"

    def test_clone_shares_graph_and_config(self, plan):
        clone = clone_result(plan)
        assert clone.graph is plan.graph
        assert clone.config is plan.config
        assert clone.schedule is not plan.schedule
        assert clone.allocation is not plan.allocation


class TestInjection:
    def test_seeded_injection_is_deterministic(self, plan):
        first = inject_faults(plan, seed=7)
        second = inject_faults(plan, seed=7)
        assert [f.mutator for f in first] == [f.mutator for f in second]
        assert [f.description for f in first] == [
            f.description for f in second
        ]

    def test_each_fault_names_its_mutator(self, plan):
        for fault in inject_faults(plan, seed=0):
            assert fault.mutator in MUTATORS
            assert fault.description

    def test_subset_selection(self, plan):
        faults = inject_faults(plan, seed=0, mutators=["corrupt-profit"])
        assert [f.mutator for f in faults] == ["corrupt-profit"]


class TestDetection:
    def test_full_corpus_detected_on_cat(self, plan):
        report = fault_detection_report(plan, seed=0)
        assert report.ok, f"missed: {report.missed}"
        assert report.detection_rate == 1.0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_detection_is_seed_independent(self, plan, seed):
        report = fault_detection_report(plan, seed=seed)
        assert report.ok, f"seed {seed} missed: {report.missed}"

    @pytest.mark.parametrize("name", sorted(BENCHMARK_SIZES))
    def test_full_corpus_detected_on_every_benchmark(self, config, name):
        """Acceptance: 100% detection on the injected corpus, all workloads."""
        plan = ParaConv(config).run(synthetic_benchmark(name))
        report = fault_detection_report(plan, seed=0)
        assert report.ok, f"{name}: missed {report.missed}"
        assert report.detection_rate == 1.0

    def test_broken_baseline_short_circuits(self, plan):
        mutant = clone_result(plan)
        mutant.allocation.total_delta_r += 1  # baseline itself is invalid
        report = fault_detection_report(mutant, seed=0)
        assert not report.ok
        assert report.missed == ["baseline"]
        assert report.injected == []

    def test_report_dict_shape(self, plan):
        payload = fault_detection_report(plan, seed=0).as_dict()
        assert payload["detection_rate"] == 1.0
        assert payload["missed"] == []
        assert payload["injected"] >= 10


class TestSearchMutators:
    """The search-candidate corpus entries (100% detection required)."""

    @pytest.mark.parametrize(
        "name", ["search-overstate-profit", "search-overfill-candidate"]
    )
    def test_detected_whenever_applicable(self, config, name):
        applied_somewhere = False
        for benchmark in sorted(BENCHMARK_SIZES):
            plan = ParaConv(config).run(synthetic_benchmark(benchmark))
            report = fault_detection_report(plan, seed=0, mutators=[name])
            if name in {f.mutator for f in report.injected}:
                applied_somewhere = True
                assert name in report.detected, (
                    f"{benchmark}: {name} applied but not detected"
                )
        assert applied_somewhere, f"{name} never applied on any benchmark"

    def test_overstate_profit_breaks_the_cached_set_invariant(self, plan):
        import random

        mutant = clone_result(plan)
        description = MUTATORS["search-overstate-profit"](
            mutant, random.Random(0)
        )
        if description is None:
            pytest.skip("no eDRAM-placed edge on this plan")
        report = ScheduleValidator().validate(mutant)
        assert not report.ok
        assert any(v.check == "allocation" for v in report.errors())

    def test_overfill_candidate_only_breaks_capacity(self, plan):
        """The overfill mutant is internally consistent by construction:
        every violation it produces must come from the capacity check."""
        import random

        mutant = clone_result(plan)
        description = MUTATORS["search-overfill-candidate"](
            mutant, random.Random(0)
        )
        if description is None:
            pytest.skip("every result fits the cache on this plan")
        assert mutant.allocation.slots_used > mutant.allocation.capacity_slots
        report = ScheduleValidator().validate(mutant)
        assert not report.ok
        assert {v.check for v in report.errors()} == {"cache-capacity"}
