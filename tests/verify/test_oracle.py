"""Brute-force oracle and differential optimality checks."""

import pytest

from repro.core.allocation import (
    AllocationItem,
    AllocationProblem,
    dp_allocate,
)
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges
from repro.graph.generators import SyntheticGraphGenerator
from repro.pim.config import PimConfig
from repro.verify.oracle import (
    OracleSizeError,
    differential_check,
    exhaustive_allocate,
)


def problem_of(triples, capacity):
    """triples: (slots, delta_r, deadline) per item."""
    items = [
        AllocationItem(key=(i, i + 1), slots=s, delta_r=d, deadline=dl)
        for i, (s, d, dl) in enumerate(triples)
    ]
    items.sort(key=lambda item: (item.deadline, item.key))
    return AllocationProblem(items=items, capacity_slots=capacity)


class TestExhaustive:
    def test_known_optimum(self):
        # capacity 10: {6,4} worth 9 beats greedy's density pick {5} + {4}
        problem = problem_of([(6, 5, 0), (4, 4, 1), (5, 5, 2)], capacity=10)
        best = exhaustive_allocate(problem)
        assert best.total_delta_r == 9
        assert best.slots_used <= 10

    def test_empty_instance(self):
        problem = AllocationProblem(items=[], capacity_slots=8)
        best = exhaustive_allocate(problem)
        assert best.total_delta_r == 0
        assert best.cached == []

    def test_zero_capacity(self):
        problem = problem_of([(1, 3, 0)], capacity=0)
        assert exhaustive_allocate(problem).cached == []

    def test_deterministic_tie_breaking(self):
        # two disjoint optima of equal profit: fewer-slots wins
        problem = problem_of([(3, 5, 0), (2, 5, 1)], capacity=3)
        first = exhaustive_allocate(problem)
        second = exhaustive_allocate(problem)
        assert first.cached == second.cached
        assert first.slots_used == 2  # prefers the smaller footprint

    def test_size_limit_raises(self):
        problem = problem_of([(1, 1, i) for i in range(20)], capacity=5)
        with pytest.raises(OracleSizeError):
            exhaustive_allocate(problem, limit=16)


class TestDifferential:
    def test_clean_instance_passes(self):
        problem = problem_of([(2, 3, 0), (3, 4, 1), (4, 2, 2)], capacity=6)
        report = differential_check(problem)
        assert report.ok, report.failures
        assert report.exhaustive_checked
        assert report.profits["dp"] == report.profits["exhaustive"]
        assert report.profits["dp"] >= report.profits["greedy"]
        assert report.profits["dp"] <= report.profits["oracle"]

    def test_large_instance_falls_back_to_dominance(self):
        problem = problem_of(
            [(1 + i % 3, 1 + i % 5, i) for i in range(24)], capacity=12
        )
        report = differential_check(problem, exhaustive_limit=16)
        assert report.ok, report.failures
        assert not report.exhaustive_checked
        assert "exhaustive" not in report.profits

    def test_as_dict_shape(self):
        problem = problem_of([(2, 3, 0)], capacity=4)
        payload = differential_check(problem).as_dict()
        assert payload["ok"] is True
        assert payload["num_items"] == 1
        assert "profits" in payload

    def test_suboptimal_dp_would_be_caught(self, monkeypatch):
        """Planted regression: a dp that caches nothing must be flagged."""
        import repro.core.allocation as allocation_module
        from repro.core.allocation import all_edram_allocate

        def broken_dp(problem):
            result = all_edram_allocate(problem)
            result.method = "dp"
            return result

        monkeypatch.setitem(allocation_module.ALLOCATORS, "dp", broken_dp)
        problem = problem_of([(2, 3, 0), (3, 4, 1)], capacity=6)
        report = differential_check(problem)
        assert not report.ok
        assert any("optimum" in failure for failure in report.failures)


class TestDpAgainstOracleOnRealGraphs:
    """Acceptance: DP == brute force on every graph with few enough IRs."""

    @pytest.mark.parametrize("seed", range(10))
    def test_small_graph_instances(self, seed):
        graph = SyntheticGraphGenerator().generate(
            6 + seed, 5 + seed + seed % 3, seed=seed, name=f"oracle-{seed}"
        )
        config = PimConfig(num_pes=8, iterations=100)
        plan = ParaConv(config).run(graph)
        timings = analyze_edges(graph, plan.schedule.kernel, config)
        capacity = config.total_cache_slots // plan.num_groups
        problem = AllocationProblem.from_timings(timings, capacity)
        if problem.num_items > 12:
            pytest.skip("instance larger than the exhaustive corpus bound")
        dp = dp_allocate(problem)
        best = exhaustive_allocate(problem)
        assert dp.total_delta_r == best.total_delta_r
