"""Verification hooks in the serving runtime (session + plan cache)."""

import json

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import PlanCache, plan_key_for
from repro.runtime.session import InferenceSession
from repro.verify.violations import VerificationError


@pytest.fixture()
def graph():
    return synthetic_benchmark("cat")


@pytest.fixture()
def config():
    return PimConfig(num_pes=16)


def tamper(disk_dir, graph, config):
    """Corrupt the on-disk plan's profit accounting in place."""
    digest = plan_key_for(graph, config).digest
    path = disk_dir / f"{digest}.json"
    payload = json.loads(path.read_text())
    payload["allocation"]["total_delta_r"] += 7
    path.write_text(json.dumps(payload))
    return path


class TestSessionVerify:
    def test_verified_compile_succeeds(self, graph, config):
        session = InferenceSession(graph, config, verify=True)
        plan = session.compile()
        assert session.is_compiled
        assert plan.period > 0

    def test_verified_session_still_serves(self, graph, config):
        session = InferenceSession(graph, config, verify=True)
        batch = session.run(iterations=3)
        assert batch.iterations == 3

    def test_corrupt_cached_plan_raises(self, graph, config, tmp_path):
        InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        ).compile()
        tamper(tmp_path, graph, config)
        # a fresh trusting cache serves the corrupt plan; verify= catches it
        session = InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path), verify=True
        )
        with pytest.raises(VerificationError) as excinfo:
            session.compile()
        assert any(
            v.check == "allocation" for v in excinfo.value.report.errors()
        )

    def test_unverified_session_does_not_raise(self, graph, config, tmp_path):
        """Without verify=, the hook stays out of the serving path."""
        InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        ).compile()
        tamper(tmp_path, graph, config)
        session = InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        )
        session.compile()  # trusts the cache: no exception by design
        assert session.is_compiled


class TestPlanCacheVerifyOnLoad:
    def test_tampered_disk_plan_degrades_to_miss(
        self, graph, config, tmp_path
    ):
        InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        ).compile()
        tamper(tmp_path, graph, config)
        cache = PlanCache(disk_dir=tmp_path, verify_on_load=True)
        key = plan_key_for(graph, config)
        assert cache.get(key) is None
        assert cache.stats.verify_failures == 1
        assert cache.stats.misses == 1
        assert cache.stats.verify_failures == cache.stats.as_dict()[
            "verify_failures"
        ]

    def test_session_recompiles_over_tampered_cache(
        self, graph, config, tmp_path
    ):
        InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        ).compile()
        tamper(tmp_path, graph, config)
        cache = PlanCache(disk_dir=tmp_path, verify_on_load=True)
        session = InferenceSession(graph, config, cache=cache, verify=True)
        session.compile()
        assert session.compilations == 1  # recompiled, not served corrupt
        assert cache.stats.verify_failures == 1
        # and the recompile healed the disk tier
        healthy = PlanCache(disk_dir=tmp_path, verify_on_load=True)
        assert healthy.get(plan_key_for(graph, config)) is not None

    def test_untampered_disk_plan_verifies_and_hits(
        self, graph, config, tmp_path
    ):
        InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        ).compile()
        cache = PlanCache(disk_dir=tmp_path, verify_on_load=True)
        assert cache.get(plan_key_for(graph, config)) is not None
        assert cache.stats.verify_failures == 0
        assert cache.stats.disk_hits == 1

    def test_memory_tier_not_revalidated(self, graph, config, tmp_path):
        """Second lookup is a pure memory hit (no verify cost)."""
        InferenceSession(
            graph, config, cache=PlanCache(disk_dir=tmp_path)
        ).compile()
        cache = PlanCache(disk_dir=tmp_path, verify_on_load=True)
        key = plan_key_for(graph, config)
        cache.get(key)
        cache.get(key)
        assert cache.stats.disk_hits == 1
        assert cache.stats.hits == 2
