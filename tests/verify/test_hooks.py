"""Per-pass invariant hooks: clean compiles pass, planted violations are
caught and attributed to the pass that introduced them."""

import pytest

from repro.compiler import CompileContext, PassInvariantError
from repro.core.allocation import AllocationResult, dp_allocate
from repro.core.paraconv import ParaConv
from repro.core.retiming import EdgeTiming
from repro.pim.config import PimConfig
from repro.verify import compile_invariant_hooks
from repro.verify.hooks import (
    check_allocation_feasible,
    check_retiming_legal,
    check_theorem_bounds,
)


class TestCleanCompiles:
    def test_hooks_cover_only_known_passes(self):
        from repro.compiler import PASS_REGISTRY

        hooks = compile_invariant_hooks()
        assert set(hooks) <= set(PASS_REGISTRY)
        assert all(callable(fn) for fns in hooks.values() for fn in fns)

    def test_full_search_under_hooks(self, figure2_graph, small_config):
        hooked = ParaConv(
            small_config, invariant_hooks=compile_invariant_hooks()
        ).run(figure2_graph)
        bare = ParaConv(small_config).run(figure2_graph)
        assert hooked.total_time() == bare.total_time()
        assert hooked.group_width == bare.group_width

    def test_liveness_pipeline_under_hooks(self, figure2_graph, small_config):
        ParaConv(
            small_config,
            liveness_aware=True,
            invariant_hooks=compile_invariant_hooks(),
        ).run(figure2_graph)


class TestViolationAttribution:
    def test_overcapacity_allocation_names_dp_allocate(
        self, figure2_graph, small_config
    ):
        def greedy_liar(problem):
            honest = dp_allocate(problem)
            return AllocationResult(
                method="liar",
                placements=honest.placements,
                cached=honest.cached,
                total_delta_r=honest.total_delta_r,
                slots_used=honest.capacity_slots + 1,  # planted violation
                capacity_slots=honest.capacity_slots,
            )

        pipeline = ParaConv(
            small_config,
            allocator=greedy_liar,
            invariant_hooks=compile_invariant_hooks(),
        )
        with pytest.raises(PassInvariantError) as info:
            pipeline.run_at_width(figure2_graph, 2)
        assert info.value.pass_name == "dp-allocate"
        assert "slots" in str(info.value)

    def test_profit_mismatch_is_caught(self, figure2_graph, small_config):
        def profit_liar(problem):
            honest = dp_allocate(problem)
            return AllocationResult(
                method="liar",
                placements=honest.placements,
                cached=honest.cached,
                total_delta_r=honest.total_delta_r + 5,
                slots_used=honest.slots_used,
                capacity_slots=honest.capacity_slots,
            )

        pipeline = ParaConv(
            small_config,
            allocator=profit_liar,
            invariant_hooks=compile_invariant_hooks(),
        )
        with pytest.raises(PassInvariantError) as info:
            pipeline.run_at_width(figure2_graph, 2)
        assert info.value.pass_name == "dp-allocate"


def _ctx_with(figure2_graph, artifacts):
    ctx = CompileContext(
        graph=figure2_graph, config=PimConfig(num_pes=4), width=2
    )
    for name, value in artifacts.items():
        ctx.put(name, value)
    return ctx


class TestUnitChecks:
    def test_theorem_bound_violation_detected(self, figure2_graph):
        class FakeKernel:
            period = 4

        bad = EdgeTiming(
            key=(0, 1), transfer_cache=1, transfer_edram=2,
            delta_cache=0, delta_edram=3,  # > Theorem 3.1 bound
            slots=1, deadline=0,
        )
        ctx = _ctx_with(
            figure2_graph, {"kernel": FakeKernel(), "timings": {(0, 1): bad}}
        )
        with pytest.raises(ValueError, match="Theorem 3.1"):
            check_theorem_bounds(ctx)

    def test_inverted_hierarchy_detected(self, figure2_graph):
        class FakeKernel:
            period = 4

        bad = EdgeTiming(
            key=(0, 1), transfer_cache=3, transfer_edram=2,
            delta_cache=0, delta_edram=1,
            slots=1, deadline=0,
        )
        ctx = _ctx_with(
            figure2_graph, {"kernel": FakeKernel(), "timings": {(0, 1): bad}}
        )
        with pytest.raises(ValueError, match="inverted"):
            check_theorem_bounds(ctx)

    def test_illegal_edge_retiming_detected(self, figure2_graph):
        class FakeSolution:
            vertex_retiming = {0: 1, 1: 0}
            edge_retiming = {(0, 1): 5}  # outside [R(j), R(i)] = [0, 1]

        ctx = _ctx_with(figure2_graph, {"retiming": FakeSolution()})
        with pytest.raises(ValueError, match="legal band"):
            check_retiming_legal(ctx)

    def test_unknown_cached_edge_detected(self, figure2_graph, small_config):
        honest = ParaConv(small_config).run_at_width(figure2_graph, 2)
        timings = {
            key: None for key in honest.allocation.placements
        }
        tampered = AllocationResult(
            method="liar",
            placements=honest.allocation.placements,
            cached=[(99, 100)],
            total_delta_r=0,
            slots_used=0,
            capacity_slots=honest.allocation.capacity_slots,
        )
        ctx = _ctx_with(
            figure2_graph, {"allocation": tampered, "timings": timings}
        )
        with pytest.raises(ValueError, match="unknown edge"):
            check_allocation_feasible(ctx)
