"""Tenancy differential: isolation scenarios and the fused-dataflow stage."""

import pytest

from repro.verify.differential_tenancy import (
    TENANCY_SCENARIOS,
    run_scenario,
    tenancy_differential,
    verify_fused_model,
)

# Small-but-real sizes: 16 PEs carve into slices that still compile the
# fleet workloads, and 4 requests per tenant exercise multiple batches.
FAST = dict(num_pes=16, requests_per_tenant=4, iterations=3)


class TestScenarios:
    @pytest.mark.parametrize("scenario", TENANCY_SCENARIOS)
    def test_scenario_passes(self, scenario):
        report = run_scenario(scenario, **FAST)
        assert report.error is None
        assert report.mismatches == []
        assert report.validator_failures == []
        assert report.ok, report.describe()

    def test_two_tenant_proves_distinct_plan_identity(self):
        report = run_scenario("two-tenant", **FAST)
        # Both tenants serve the SAME workload: one cached plan each.
        assert len(set(report.workloads.values())) == 1
        assert report.cached_plans == 2

    def test_batches_actually_replayed(self):
        report = run_scenario("two-tenant", **FAST)
        assert report.replayed_batches >= 2

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown tenancy scenario"):
            run_scenario("warp-tenant", **FAST)

    def test_describe_and_as_dict(self):
        report = run_scenario("degraded-tenant", **FAST)
        assert "degraded-tenant" in report.describe()
        payload = report.as_dict()
        assert payload["ok"] is True
        assert payload["scenario"] == "degraded-tenant"
        assert payload["placement_fingerprint"]


class TestFusedStage:
    def test_alexnet_fused_plans_pass_differentials(self):
        report = verify_fused_model("alexnet")
        assert report.error is None
        assert report.ok, report.describe()
        assert report.fused_stages > 0
        assert report.ops_absorbed > 0
        assert report.delta_r["fused_ops_absorbed"] == report.ops_absorbed

    def test_unknown_model_reported_not_raised(self):
        report = verify_fused_model("ghostnet")
        assert not report.ok
        assert "KeyError" in report.error


class TestBattery:
    def test_full_battery(self):
        report = tenancy_differential(
            fused_models=("alexnet",), **FAST
        )
        assert report.ok, report.describe()
        assert len(report.scenarios) == len(TENANCY_SCENARIOS)
        payload = report.as_dict()
        assert payload["ok"] is True
        assert len(payload["scenarios"]) == 3
        assert len(payload["fused"]) == 1

    def test_empty_battery_is_not_ok(self):
        report = tenancy_differential(scenarios=(), fused_models=())
        assert not report.ok
