"""Edge cases of the brute-force allocation oracle.

The oracle is the ground truth every allocator (DP and search alike) is
held to, so its own degenerate behavior must be pinned: empty instances,
instances where everything fits, the one-PE machine, deterministic
tie-breaking, and the size guard.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import (
    AllocationItem,
    AllocationProblem,
    dp_allocate,
)
from repro.core.search import AnnealAllocator
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.verify.differential_search import allocation_instance
from repro.verify.oracle import OracleSizeError, exhaustive_allocate


def make_problem(spec, capacity):
    return AllocationProblem(
        items=[
            AllocationItem(key=(i, i + 1), slots=s, delta_r=v, deadline=i)
            for i, (s, v) in enumerate(spec)
        ],
        capacity_slots=capacity,
    )


def test_zero_items():
    problem = AllocationProblem(items=[], capacity_slots=8)
    result = exhaustive_allocate(problem)
    assert result.method == "exhaustive"
    assert result.cached == []
    assert result.total_delta_r == 0
    assert result.slots_used == 0


def test_zero_items_zero_capacity():
    problem = AllocationProblem(items=[], capacity_slots=0)
    result = exhaustive_allocate(problem)
    assert result.total_delta_r == 0
    assert result.slots_used == 0


def test_all_items_fit():
    """Capacity >= total demand: the optimum caches everything."""
    spec = [(2, 5), (3, 1), (1, 4), (4, 2)]
    problem = make_problem(spec, capacity=sum(s for s, _ in spec))
    result = exhaustive_allocate(problem)
    assert result.total_delta_r == sum(v for _, v in spec)
    assert result.slots_used == sum(s for s, _ in spec)
    assert sorted(result.cached) == sorted(item.key for item in problem.items)


def test_single_pe_machine_instance():
    """The one-PE machine compiles to an instance the oracle agrees on."""
    config = PimConfig(num_pes=1)
    graph = synthetic_benchmark("cat")
    problem, _ = allocation_instance(graph, config)
    optimum = exhaustive_allocate(problem)
    assert optimum.slots_used <= problem.capacity_slots
    assert dp_allocate(problem).total_delta_r == optimum.total_delta_r
    assert (
        AnnealAllocator(seed=0)(problem).total_delta_r
        == optimum.total_delta_r
    )


def test_tie_break_prefers_fewer_slots():
    """Equal profit: the oracle returns the smaller footprint."""
    # Capacity admits exactly one item; both yield profit 6, but the
    # 1-slot item has the smaller footprint.
    problem = make_problem([(1, 6), (2, 6)], capacity=2)
    result = exhaustive_allocate(problem)
    assert result.total_delta_r == 6
    assert result.slots_used == 1
    assert result.cached == [(0, 1)]


def test_tie_break_is_deterministic_on_equal_profit_and_slots():
    """Two optima with identical profit AND slots: the pick is stable."""
    # Two items, identical (slots, profit); capacity admits exactly one,
    # so only the key ordering can break the tie. Pin the exact outcome
    # so any change to the enumeration order surfaces here.
    problem = make_problem([(2, 5), (2, 5)], capacity=2)
    first = exhaustive_allocate(problem)
    second = exhaustive_allocate(problem)
    assert first.cached == second.cached
    assert first.total_delta_r == 5
    assert first.cached == [(1, 2)]


def test_size_guard():
    spec = [(1, 1)] * 17
    problem = make_problem(spec, capacity=8)
    with pytest.raises(OracleSizeError):
        exhaustive_allocate(problem, limit=16)
    # raising the limit admits the instance
    result = exhaustive_allocate(problem, limit=17)
    assert result.total_delta_r == 8


def test_oracle_equality_with_indifferent_edges():
    """Indifferent (zero-profit) edges never enter the enumeration."""
    problem = AllocationProblem(
        items=[
            AllocationItem(key=(0, 1), slots=2, delta_r=3, deadline=0),
            AllocationItem(key=(1, 2), slots=2, delta_r=2, deadline=1),
        ],
        capacity_slots=2,
        indifferent=[(2, 3), (3, 4)],
    )
    result = exhaustive_allocate(problem)
    assert result.total_delta_r == 3
    assert result.cached == [(0, 1)]
