"""Acceptance tests for the search-allocator differential battery."""

from __future__ import annotations

import pytest

from repro.pim.config import PimConfig
from repro.verify.differential_search import (
    DEFAULT_BUDGET_LADDER,
    SearchDifferentialReport,
    machine_variants,
    search_differential,
    search_differential_sweep,
)
from repro.graph.generators import synthetic_benchmark


@pytest.fixture(scope="module")
def config():
    return PimConfig(num_pes=16, iterations=1000)


@pytest.fixture(scope="module")
def reports(config):
    return search_differential(synthetic_benchmark("cat"), config)


class TestMachineVariants:
    def test_healthy_degraded_and_shards(self, config):
        labels = [label for label, _ in machine_variants(config)]
        assert labels == ["healthy", "degraded", "shard-0", "shard-1"]

    def test_variant_machines_shrink(self, config):
        variants = dict(machine_variants(config))
        assert variants["degraded"].num_pes == config.num_pes - 1
        assert (
            variants["shard-0"].num_pes + variants["shard-1"].num_pes
            == config.num_pes
        )

    def test_single_pe_machine_has_only_healthy(self):
        labels = [label for label, _ in machine_variants(PimConfig(num_pes=1))]
        assert labels == ["healthy"]


class TestSearchDifferential:
    def test_battery_is_green(self, reports):
        for report in reports:
            assert report.ok, report.failures + report.validator_errors

    def test_covers_every_variant(self, reports):
        assert [r.variant for r in reports] == [
            "healthy", "degraded", "shard-0", "shard-1",
        ]

    def test_search_profits_at_least_dp(self, reports):
        for report in reports:
            assert report.profits["anneal"] >= report.profits["dp"]
            assert report.profits["portfolio"] >= report.profits["dp"]

    def test_oracle_equality_when_enumerable(self, reports):
        for report in reports:
            if report.exhaustive_checked:
                assert (
                    report.profits["anneal"] == report.profits["exhaustive"]
                )

    def test_budget_ladder_is_monotone(self, reports):
        for report in reports:
            profits = list(report.budget_profits.values())
            assert sorted(report.budget_profits) == list(
                report.budget_profits
            )
            assert profits == sorted(profits)
            assert set(report.budget_profits) == set(DEFAULT_BUDGET_LADDER)

    def test_validator_battery_ran_clean(self, reports):
        for report in reports:
            assert report.validator_errors == []

    def test_report_dict_shape(self, reports):
        payload = reports[0].as_dict()
        assert payload["ok"] is True
        assert payload["workload"] == "cat"
        assert set(payload["budget_profits"]) == {
            str(b) for b in DEFAULT_BUDGET_LADDER
        }

    def test_failures_flip_ok(self):
        report = SearchDifferentialReport(
            workload="w", variant="healthy", num_items=1, capacity_slots=1
        )
        assert report.ok
        report.failures.append("boom")
        assert not report.ok
        broken = SearchDifferentialReport(
            workload="w", variant="healthy", num_items=1, capacity_slots=1,
            validator_errors=["bad plan"],
        )
        assert not broken.ok


class TestSweepAndCli:
    def test_sweep_subset_green(self, config):
        outcome = search_differential_sweep(
            config=config, benchmarks=["cat", "car"], budgets=[0, 150]
        )
        assert outcome.ok
        assert len(outcome.reports) == 8  # 2 benchmarks x 4 variants
        assert outcome.budgets == [0, 150]
        text = outcome.summary()
        assert "search differential" in text
        assert "overall: ok" in text

    def test_verify_cli_search_flag(self, capsys):
        from repro.verify.__main__ import main

        code = main([
            "--benchmarks", "cat", "--no-mutations",
            "--search", "--search-budgets", "0", "100",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "search[4/4]=ok" in out

    def test_runner_wires_search_reports(self, config):
        from repro.verify.runner import verify_workload

        outcome = verify_workload(
            synthetic_benchmark("cat"),
            config,
            allocators=["dp"],
            with_differential=False,
            with_faults=False,
            with_search=True,
            search_budgets=[0, 100],
        )
        assert outcome.ok
        assert len(outcome.search) == 4
        assert outcome.as_dict()["search"][0]["variant"] == "healthy"
