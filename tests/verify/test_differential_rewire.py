"""The live-rewire differential battery and its report verdicts.

Two layers under test: the report dataclasses' ``ok`` logic (a failure
in any dimension — mismatch, lost request, cold repeat swap, validator
error — must fail the battery) and the battery itself run end-to-end on
small graphs (it must come back green against the full-unroll oracle).
"""

from __future__ import annotations

import json

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.graph.randwired import RandwiredSpec
from repro.pim.config import PimConfig
from repro.verify.differential_rewire import (
    RandwiredPropertyReport,
    RewireCaseReport,
    RewireDifferentialReport,
    RewireMismatch,
    randwired_property_battery,
    rewire_case,
    rewire_differential,
)


def small_config() -> PimConfig:
    return PimConfig(num_pes=8, iterations=50)


class TestReportVerdicts:
    def clean_case(self) -> RewireCaseReport:
        return RewireCaseReport(
            workload="cat", new_graph="cat-v2", cut_point="drain",
            iterations=10, lost=0, repeat_recompiles=0,
        )

    def test_clean_case_is_ok(self):
        assert self.clean_case().ok

    def test_mismatch_fails(self):
        report = self.clean_case()
        report.mismatches.append(
            RewireMismatch(field="makespan", post_swap_value=9, cold_value=8)
        )
        assert not report.ok
        assert "makespan" in report.describe()

    def test_lost_request_fails(self):
        report = self.clean_case()
        report.lost = 1
        assert not report.ok

    def test_cold_repeat_swap_fails(self):
        report = self.clean_case()
        report.repeat_recompiles = 2
        assert not report.ok

    def test_validator_error_fails(self):
        report = self.clean_case()
        report.validator_errors = 1
        assert not report.ok

    def test_error_fails(self):
        report = self.clean_case()
        report.error = "boom"
        assert not report.ok
        assert "boom" in report.describe()

    def test_empty_randwired_battery_is_not_ok(self):
        assert not RandwiredPropertyReport().ok
        assert RandwiredPropertyReport(cases=4).ok
        assert not RandwiredPropertyReport(cases=4, failures=["f"]).ok

    def test_overall_report_aggregates(self):
        report = RewireDifferentialReport(
            cases=[self.clean_case()],
            randwired=RandwiredPropertyReport(cases=1),
            fleet_lost=0,
            fleet_repeat_warm=True,
        )
        assert report.ok
        assert "overall rewire: ok" in report.describe()
        report.fleet_lost = 3
        assert not report.ok
        report.fleet_lost = 0
        report.fleet_repeat_warm = False
        assert not report.ok
        report.fleet_repeat_warm = True
        report.cases.append(
            RewireCaseReport(
                workload="x", new_graph="y", cut_point="drain",
                iterations=1, error="exploded",
            )
        )
        assert "overall rewire: FAIL" in report.describe()

    def test_as_dict_is_json_serializable(self):
        report = RewireDifferentialReport(
            cases=[self.clean_case()],
            randwired=RandwiredPropertyReport(cases=2),
            fleet_lost=0,
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["cases"][0]["workload"] == "cat"


class TestRewireCase:
    @pytest.mark.parametrize("cut_point", ("drain", "reroute"))
    def test_small_case_green(self, cut_point):
        report = rewire_case(
            synthetic_benchmark("cat"),
            synthetic_benchmark("car"),
            small_config(),
            cut_point=cut_point,
            iterations=8,
            queued=3,
        )
        assert report.error is None
        assert report.mismatches == []
        assert report.lost == 0
        assert report.repeat_recompiles == 0
        if cut_point == "drain":
            assert report.drained == 3
        else:
            assert report.rerouted == 3
        assert report.ok


class TestRandwiredBattery:
    def test_small_sweep_green(self):
        report = randwired_property_battery(
            config=small_config(),
            specs=[
                RandwiredSpec(kind="er", num_vertices=10, p=0.3, seed=0),
                RandwiredSpec(kind="ba", num_vertices=10, m=2, seed=0),
            ],
            seeds=1,
        )
        assert report.failures == []
        assert report.cases == 2
        assert report.ok


class TestFullBattery:
    def test_rewire_differential_green(self):
        report = rewire_differential(
            config=small_config(), iterations=8, seeds=1
        )
        assert report.error is None
        assert [case.ok for case in report.cases] == [True] * len(report.cases)
        assert report.fleet_lost == 0
        assert report.fleet_repeat_warm is True
        assert report.ok
        assert "overall rewire: ok" in report.describe()
