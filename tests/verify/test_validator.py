"""ScheduleValidator: pristine plans pass, corrupted plans fail precisely."""

import pytest

from repro.core.paraconv import ParaConv
from repro.core.schedule import PlacedOp
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.pim.memory import Placement
from repro.verify.mutation import clone_result
from repro.verify.validator import (
    CHECK_CATALOG,
    ScheduleValidator,
    verify_result,
)


@pytest.fixture(scope="module")
def config():
    return PimConfig(num_pes=16, iterations=1000)


@pytest.fixture(scope="module")
def plan(config):
    return ParaConv(config).run(synthetic_benchmark("cat"))


class TestPristinePlans:
    def test_default_plan_has_zero_errors(self, plan):
        report = ScheduleValidator().validate(plan)
        assert report.ok, report.summary()

    def test_all_catalog_checks_ran(self, plan):
        report = ScheduleValidator().validate(plan)
        covered = set(report.checks_run) | set(report.checks_skipped)
        assert covered == set(CHECK_CATALOG)

    def test_validator_is_callable(self, plan):
        assert ScheduleValidator()(plan).ok

    def test_verify_result_convenience(self, plan):
        assert verify_result(plan).ok

    def test_liveness_aware_plan_is_strict_clean(self, config):
        """liveness_aware plans satisfy even the strict occupancy check."""
        plan = ParaConv(config, liveness_aware=True).run(
            synthetic_benchmark("cat")
        )
        report = ScheduleValidator(strict_liveness=True).validate(plan)
        assert report.ok, report.summary()

    def test_oracle_plan_skips_capacity(self, config):
        plan = ParaConv(config, allocator_name="oracle").run(
            synthetic_benchmark("cat")
        )
        report = ScheduleValidator().validate(plan)
        assert report.ok, report.summary()
        assert "cache-capacity" in report.checks_skipped

    def test_unroll_must_be_positive(self):
        with pytest.raises(ValueError):
            ScheduleValidator(unroll_iterations=0)


class TestTargetedCorruptions:
    """Each corruption trips exactly the check that owns the invariant."""

    def _checks_fired(self, mutant):
        report = ScheduleValidator().validate(mutant)
        assert not report.ok
        return set(v.check for v in report.errors())

    def test_dropped_op_hits_kernel_resources(self, plan):
        mutant = clone_result(plan)
        op_id = sorted(mutant.schedule.kernel.placements)[0]
        del mutant.schedule.kernel.placements[op_id]
        assert "kernel-resources" in self._checks_fired(mutant)

    def test_stretched_op_misreports_duration(self, plan):
        mutant = clone_result(plan)
        kernel = mutant.schedule.kernel
        op_id = sorted(kernel.placements)[0]
        p = kernel.placements[op_id]
        kernel.placements[op_id] = PlacedOp(op_id, p.pe, p.start, p.finish + 1)
        assert "kernel-resources" in self._checks_fired(mutant)

    def test_negative_retiming_hits_legality(self, plan):
        mutant = clone_result(plan)
        op_id = sorted(mutant.schedule.retiming)[0]
        mutant.schedule.retiming[op_id] = -2
        assert "retiming-legality" in self._checks_fired(mutant)

    def test_edge_band_violation_hits_legality(self, plan):
        mutant = clone_result(plan)
        key = sorted(mutant.schedule.edge_retiming)[0]
        mutant.schedule.edge_retiming[key] = 10_000
        assert "retiming-legality" in self._checks_fired(mutant)

    def test_profit_corruption_hits_allocation(self, plan):
        mutant = clone_result(plan)
        mutant.allocation.total_delta_r += 3
        assert "allocation" in self._checks_fired(mutant)

    def test_capacity_overfill_hits_cache_capacity(self, plan):
        mutant = clone_result(plan)
        mutant.allocation.slots_used = mutant.allocation.capacity_slots + 1
        fired = self._checks_fired(mutant)
        assert "cache-capacity" in fired

    def test_shrunk_period_hits_period(self, plan):
        mutant = clone_result(plan)
        kernel = mutant.schedule.kernel
        kernel.period = kernel.makespan() - 1
        assert "period" in self._checks_fired(mutant)

    def test_oversized_group_hits_grouping(self, plan):
        mutant = clone_result(plan)
        mutant = type(mutant)(
            graph=mutant.graph,
            config=mutant.config,
            schedule=mutant.schedule,
            allocation=mutant.allocation,
            case_histogram=mutant.case_histogram,
            group_width=mutant.group_width,
            num_groups=mutant.config.num_pes + 1,
        )
        assert "grouping" in self._checks_fired(mutant)

    def test_placement_flip_breaks_transfer_consistency(self, plan):
        mutant = clone_result(plan)
        # flip the first cached edge to eDRAM without touching transfers
        cached = sorted(mutant.allocation.cached)
        if not cached:
            pytest.skip("plan caches nothing")
        key = cached[0]
        mutant.schedule.placements[key] = Placement.EDRAM
        mutant.allocation.placements[key] = Placement.EDRAM
        mutant.allocation.cached = [k for k in cached if k != key]
        assert "allocation" in self._checks_fired(mutant)

    def test_report_collects_multiple_faults_in_one_pass(self, plan):
        """The validator never stops at the first broken invariant."""
        mutant = clone_result(plan)
        mutant.allocation.total_delta_r += 1
        op_id = sorted(mutant.schedule.retiming)[0]
        mutant.schedule.retiming[op_id] = -1
        fired = self._checks_fired(mutant)
        assert {"allocation", "retiming-legality"} <= fired
