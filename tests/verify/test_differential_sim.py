"""Tests for the full-vs-steady simulation differential check."""

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.verify.differential_sim import (
    DEFAULT_SIM_ITERATIONS,
    SimDifferentialReport,
    SimMismatch,
    differential_simulate,
    sim_differential_battery,
)
from repro.verify.runner import verify_workload


@pytest.fixture(scope="module")
def machine():
    return PimConfig(num_pes=16)


@pytest.fixture(scope="module")
def flower_plan(machine):
    return ParaConv(machine).run(synthetic_benchmark("flower"))


class TestDifferentialSimulate:
    def test_engines_agree(self, machine, flower_plan):
        report = differential_simulate(
            flower_plan, config=machine, iterations=300
        )
        assert report.ok
        assert report.mismatches == []
        assert report.workload == "flower"
        assert "ok" in report.describe()

    def test_convergence_metadata_captured(self, machine, flower_plan):
        report = differential_simulate(
            flower_plan, config=machine, iterations=1000
        )
        assert report.converged_round is not None
        assert report.rounds_fast_forwarded > 0
        assert f"converged@{report.converged_round}" in report.describe()

    def test_battery_covers_every_count(self, machine, flower_plan):
        reports = sim_differential_battery(
            flower_plan, config=machine, iteration_counts=(1, 20)
        )
        assert [r.iterations for r in reports] == [1, 20]
        assert all(r.ok for r in reports)

    def test_default_counts_span_regimes(self):
        assert DEFAULT_SIM_ITERATIONS == (1, 20, 1000)

    def test_as_dict_round_trips_mismatches(self):
        report = SimDifferentialReport(workload="x", iterations=10)
        report.mismatches.append(
            SimMismatch(field="busy_units", full_value=10, steady_value=11)
        )
        assert not report.ok
        payload = report.as_dict()
        assert payload["ok"] is False
        assert payload["mismatches"][0]["field"] == "busy_units"
        assert "MISMATCH" in report.describe()
        assert "busy_units" in report.describe()


class TestRunnerIntegration:
    def test_verify_workload_runs_sim_stage(self, machine):
        outcome = verify_workload(
            synthetic_benchmark("cat"),
            machine,
            allocators=["dp", "greedy"],
            with_differential=False,
            with_faults=False,
            with_simulation=True,
            sim_iterations=[1, 20],
        )
        assert set(outcome.simulation) == {"dp", "greedy"}
        for battery in outcome.simulation.values():
            assert [r.iterations for r in battery] == [1, 20]
            assert all(r.ok for r in battery)
        assert outcome.ok
        payload = outcome.as_dict()
        assert set(payload["simulation"]) == {"dp", "greedy"}

    def test_sim_stage_failure_fails_workload(self, machine):
        outcome = verify_workload(
            synthetic_benchmark("cat"),
            machine,
            allocators=["dp"],
            with_differential=False,
            with_faults=False,
            with_simulation=True,
            sim_iterations=[1],
        )
        # Plant a mismatch: the workload verdict must flip to failing.
        outcome.simulation["dp"][0].mismatches.append(
            SimMismatch(field="busy_units", full_value=1, steady_value=2)
        )
        assert not outcome.ok

    def test_sim_stage_off_by_default(self, machine):
        outcome = verify_workload(
            synthetic_benchmark("cat"),
            machine,
            allocators=["dp"],
            with_differential=False,
            with_faults=False,
        )
        assert outcome.simulation == {}
