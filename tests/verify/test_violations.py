"""Unit tests for the structured violation/report types."""

import pytest

from repro.verify.violations import (
    Severity,
    VerificationError,
    VerificationReport,
    Violation,
    worst_of,
)


def test_empty_report_is_ok_and_clean():
    report = VerificationReport(subject="x")
    assert report.ok
    assert report.clean
    report.raise_if_failed()  # no-op


def test_warning_keeps_ok_but_not_clean():
    report = VerificationReport()
    report.add("cache-capacity", "transient overflow",
               severity=Severity.WARNING)
    assert report.ok
    assert not report.clean
    assert len(report.warnings()) == 1
    assert report.errors() == []
    report.raise_if_failed()  # warnings never raise


def test_error_fails_and_raises():
    report = VerificationReport(subject="plan")
    report.add("period", "kernel makespan 12 exceeds period 10")
    assert not report.ok
    with pytest.raises(VerificationError) as excinfo:
        report.raise_if_failed()
    assert excinfo.value.report is report
    assert "period" in str(excinfo.value)


def test_skip_is_recorded_not_counted():
    report = VerificationReport()
    report.skip("cache-capacity", "oracle is capacity-oblivious")
    assert report.ok
    assert report.checks_skipped == {
        "cache-capacity": "oracle is capacity-oblivious"
    }
    assert "skipped:cache-capacity" in report.summary()


def test_by_check_groups_violations():
    report = VerificationReport()
    report.add("allocation", "a", subject=(0, 1))
    report.add("allocation", "b", subject=(1, 2))
    report.add("period", "c")
    grouped = report.by_check()
    assert sorted(grouped) == ["allocation", "period"]
    assert len(grouped["allocation"]) == 2


def test_violation_str_and_dict_round():
    violation = Violation("grouping", Severity.ERROR, "too wide", (3, 4))
    assert "[error:grouping]" in str(violation)
    payload = violation.as_dict()
    assert payload["subject"] == [3, 4]  # tuples made JSON-able
    assert payload["severity"] == "error"


def test_as_dict_counts():
    report = VerificationReport(subject="s")
    report.checks_run.append("period")
    report.add("period", "bad")
    report.add("cache-capacity", "soft", severity=Severity.WARNING)
    payload = report.as_dict()
    assert payload["num_errors"] == 1
    assert payload["num_warnings"] == 1
    assert payload["ok"] is False


def test_worst_of_merges():
    ok_report = VerificationReport(subject="a")
    ok_report.checks_run.append("period")
    bad_report = VerificationReport(subject="b")
    bad_report.add("prologue", "off by one")
    merged = worst_of([ok_report, bad_report])
    assert not merged.ok
    assert merged.checks_run == ["period"]
    assert len(merged.violations) == 1
