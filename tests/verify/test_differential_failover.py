"""Tests for the runtime failover fault-injection differential."""

from __future__ import annotations

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT
from repro.runtime.plan_cache import PlanCache
from repro.verify.differential_failover import (
    FailoverDifferentialReport,
    FailoverMismatch,
    failover_differential,
)
from repro.verify.runner import verify_workload


@pytest.fixture(scope="module")
def machine():
    return PimConfig(num_pes=16, iterations=100)


@pytest.fixture(scope="module")
def graph():
    return synthetic_benchmark("cat")


class TestFailoverDifferential:
    def test_pe_fault_differential_is_clean(self, graph, machine):
        report = failover_differential(graph, machine, iterations=20)
        assert report.ok, report.describe()
        assert report.mismatches == []
        assert report.faults_observed == 1
        assert report.failovers == 1
        assert report.warm_recompiles == 0  # second strike hit the cache
        assert report.warm_faults == 1  # the fault trace still replays
        assert report.validator_errors == 0
        assert "ok" in report.describe()

    def test_vault_fault_differential_is_clean(self, graph, machine):
        report = failover_differential(
            graph,
            machine,
            unit=FAULT_UNIT_VAULT,
            unit_id=2,
            fault_iteration=1,
            iterations=10,
        )
        assert report.ok, report.describe()
        assert report.unit == FAULT_UNIT_VAULT and report.unit_id == 2

    def test_shared_cache_and_no_warm_check(self, graph, machine):
        cache = PlanCache(capacity=8)
        report = failover_differential(
            graph, machine, cache=cache, check_warm=False
        )
        assert report.ok
        assert report.warm_recompiles is None and report.warm_faults is None
        # healthy + degraded plans both landed in the shared cache
        assert cache.stats.misses == 2

    def test_invalid_unit_rejected(self, graph, machine):
        with pytest.raises(ValueError):
            failover_differential(graph, machine, unit="gpu")

    def test_unreachable_fault_flags_vacuous_scenario(self, machine):
        """A fault id outside the machine never fires: the differential
        must flag the vacuous scenario (faults_observed == 0) instead of
        reporting a hollow pass."""
        graph = synthetic_benchmark("cat")
        report = failover_differential(
            graph, machine, unit_id=machine.num_pes + 5
        )
        assert not report.ok
        assert report.faults_observed == 0 and report.failovers == 0
        assert "FAIL" in report.describe()

    def test_as_dict_round_trips_fields(self):
        report = FailoverDifferentialReport(
            workload="x",
            unit=FAULT_UNIT_PE,
            unit_id=0,
            fault_iteration=3,
            iterations=20,
        )
        report.mismatches.append(
            FailoverMismatch(
                field="busy_units", failover_value=1, cold_value=2
            )
        )
        payload = report.as_dict()
        assert payload["ok"] is False
        assert payload["mismatches"][0]["field"] == "busy_units"
        assert "busy_units" in report.describe()

    def test_ok_requires_exactly_one_failover(self):
        report = FailoverDifferentialReport(
            workload="x",
            unit=FAULT_UNIT_PE,
            unit_id=0,
            fault_iteration=3,
            iterations=20,
            faults_observed=0,
            failovers=0,
        )
        assert not report.ok  # the fault never fired: scenario is vacuous
        report.faults_observed = report.failovers = 1
        assert report.ok
        report.warm_recompiles = 1
        assert not report.ok  # warm repeat paid a compile


class TestRunnerIntegration:
    def test_verify_workload_populates_failover(self, graph, machine):
        outcome = verify_workload(
            graph,
            machine,
            allocators=["dp"],
            with_differential=False,
            with_faults=False,
            with_failover=True,
        )
        assert outcome.failover is not None
        assert outcome.failover.ok
        assert outcome.ok
        assert outcome.as_dict()["failover"]["ok"] is True

    def test_failover_off_by_default(self, graph, machine):
        outcome = verify_workload(
            graph,
            machine,
            allocators=["dp"],
            with_differential=False,
            with_faults=False,
        )
        assert outcome.failover is None
        assert outcome.as_dict()["failover"] is None
