"""Fleet differential: replay equivalence, conservation, warm-everywhere."""

from __future__ import annotations

import pytest

from repro.verify.differential_fleet import (
    FleetDifferentialReport,
    FleetReplayMismatch,
    fleet_differential,
)

WORKLOADS = ("cat", "car", "flower", "speech-1")


@pytest.fixture(scope="module")
def report() -> FleetDifferentialReport:
    # Synthetic-benchmark workloads keep the module-scoped run fast; the
    # trace still crosses a worker kill at the halfway point.
    return fleet_differential(
        workloads=WORKLOADS, requests=160, batch_window=8, seed=0
    )


class TestCleanRun:
    def test_overall_ok(self, report):
        assert report.error is None
        assert report.ok, report.describe()

    def test_replay_found_no_mismatches(self, report):
        assert report.mismatches == []
        assert report.replayed_batches > 0

    def test_conservation_across_kill(self, report):
        assert report.killed_worker == "worker-3"
        assert report.accounting["lost"] == 0
        assert report.accounting["served"] == 160
        assert report.duplicate_fleet_ids == []
        assert report.missing_fleet_ids == []

    def test_warm_everywhere(self, report):
        assert report.store_plans == len(WORKLOADS)
        assert report.fleet_compiles == len(WORKLOADS)
        assert report.cold_replica_compiles == 0
        assert report.cold_replica_disk_hits == len(WORKLOADS)

    def test_serializes_and_describes(self, report):
        payload = report.as_dict()
        assert payload["ok"] is True
        assert payload["accounting"]["lost"] == 0
        assert "ok" in report.describe()


class TestReportVerdicts:
    def _clean(self) -> FleetDifferentialReport:
        return FleetDifferentialReport(
            workloads=["a", "b"],
            num_workers=2,
            requests=10,
            accounting={"lost": 0},
            store_plans=2,
            fleet_compiles=2,
            cold_replica_compiles=0,
            cold_replica_disk_hits=2,
        )

    def test_clean_is_ok(self):
        assert self._clean().ok

    def test_mismatch_fails(self):
        report = self._clean()
        report.mismatches.append(
            FleetReplayMismatch("w", 1, 2, "sim_latency", 10, 11)
        )
        assert not report.ok
        assert "sim_latency" in report.describe()

    def test_lost_request_fails(self):
        report = self._clean()
        report.accounting["lost"] = 1
        assert not report.ok

    def test_duplicate_or_missing_ids_fail(self):
        report = self._clean()
        report.duplicate_fleet_ids = [7]
        assert not report.ok
        report = self._clean()
        report.missing_fleet_ids = [3]
        assert not report.ok

    def test_extra_compiles_fail(self):
        report = self._clean()
        report.fleet_compiles = 3  # someone recompiled a warm plan
        assert not report.ok
        report = self._clean()
        report.cold_replica_compiles = 1  # the store was not warm
        assert not report.ok

    def test_error_fails(self):
        report = self._clean()
        report.error = "Boom: broke"
        assert not report.ok
        assert "ERROR" in report.describe()


class TestGuards:
    def test_uneven_split_is_reported_not_raised(self):
        report = fleet_differential(
            workloads=("cat",), num_workers=3, num_pes=64, requests=10
        )
        assert not report.ok
        assert "divide evenly" in report.error
