"""The cProfile hotspot harness (``python -m repro.eval profile``)."""

from __future__ import annotations

import pytest

from repro.eval.profile import (
    PROFILE_TARGETS,
    ProfileReport,
    run_profile,
    run_profiles,
)
from repro.pim.config import PimConfig


@pytest.fixture(scope="module")
def small_machine():
    return PimConfig(num_pes=8, iterations=40)


class TestRunProfile:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown profile target"):
            run_profile("link")

    def test_compile_profile_shape(self, small_machine):
        report = run_profile(
            "compile", small_machine, workload="cat", top=5
        )
        assert isinstance(report, ProfileReport)
        assert report.target == "compile"
        assert report.workload == "cat"
        assert 0 < len(report.rows) <= 5
        assert report.seconds > 0
        # The hotspot table must actually surface the compile pipeline.
        table = "\n".join(row.function for row in report.rows)
        assert "repro" in table
        for row in report.rows:
            assert row.calls >= 1
            assert row.cumulative_seconds >= row.total_seconds >= 0

    def test_sim_profile_hits_the_columnar_engine(self, small_machine):
        report = run_profile("sim", small_machine, workload="cat", top=25)
        table = "\n".join(row.function for row in report.rows)
        assert "columnar" in table

    def test_sim_profile_honors_mode(self, small_machine):
        report = run_profile(
            "sim", small_machine, workload="cat", top=25, sim_mode="full"
        )
        table = "\n".join(row.function for row in report.rows)
        assert "columnar" not in table

    def test_rows_sorted_by_cumulative_time(self, small_machine):
        report = run_profile("compile", small_machine, workload="cat")
        cumulative = [row.cumulative_seconds for row in report.rows]
        assert cumulative == sorted(cumulative, reverse=True)

    def test_render_is_a_table(self, small_machine):
        rendered = run_profile(
            "compile", small_machine, workload="cat", top=3
        ).render()
        assert rendered.startswith("## Hotspots: compile")
        assert "cumtime" in rendered


def test_run_profiles_covers_both_targets(small_machine):
    reports = run_profiles(config=small_machine, workload="cat", top=3)
    assert set(reports) == set(PROFILE_TARGETS)


def test_profile_cli(capsys):
    from repro.eval.__main__ import main

    assert main([
        "profile", "compile", "--top", "4", "--iterations", "40",
    ]) == 0
    out = capsys.readouterr().out
    assert "## Hotspots: compile" in out
    assert "cumtime" in out
