"""Tests for experiment artifact persistence and diffing."""

import pytest

from repro.eval.artifacts import (
    ArtifactError,
    diff_artifacts,
    load_artifact,
    save_artifact,
)
from repro.eval.table1 import run_table1
from repro.pim.config import PimConfig

CONFIG = PimConfig(iterations=100)


@pytest.fixture(scope="module")
def rows():
    return run_table1(CONFIG, benchmarks=["cat", "car"])


class TestSaveLoad:
    def test_round_trip(self, rows, tmp_path):
        path = tmp_path / "table1.json"
        save_artifact("table1", rows, CONFIG, path)
        payload = load_artifact(path)
        assert payload["experiment"] == "table1"
        assert payload["config"]["iterations"] == 100
        assert len(payload["rows"]) == 2
        first = payload["rows"][0]
        assert first["benchmark"] == "cat"
        assert "16" in first["cells"]

    def test_extra_metadata(self, rows, tmp_path):
        path = tmp_path / "a.json"
        save_artifact("table1", rows, CONFIG, path, extra={"note": "run-1"})
        assert load_artifact(path)["extra"]["note"] == "run-1"

    def test_bad_version_rejected(self, rows, tmp_path):
        import json

        path = tmp_path / "bad.json"
        save_artifact("table1", rows, CONFIG, path)
        payload = json.loads(path.read_text())
        payload["artifact_version"] = 9
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="version"):
            load_artifact(path)

    def test_missing_fields_rejected(self, tmp_path):
        import json

        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"artifact_version": 1, "experiment": "x"}))
        with pytest.raises(ArtifactError, match="missing"):
            load_artifact(path)


class TestDiff:
    def _artifact(self, rows, tmp_path, name):
        path = tmp_path / name
        save_artifact("table1", rows, CONFIG, path)
        return load_artifact(path)

    def test_identical_runs_have_no_diff(self, rows, tmp_path):
        a = self._artifact(rows, tmp_path, "a.json")
        b = self._artifact(rows, tmp_path, "b.json")
        assert diff_artifacts(a, b) == []

    def test_numeric_drift_reported(self, rows, tmp_path):
        a = self._artifact(rows, tmp_path, "a.json")
        b = self._artifact(rows, tmp_path, "b.json")
        b["rows"][0]["cells"]["16"]["sparta_time"] += 100
        messages = diff_artifacts(a, b)
        assert any("sparta_time" in m for m in messages)

    def test_tolerance_suppresses_noise(self, rows, tmp_path):
        a = self._artifact(rows, tmp_path, "a.json")
        b = self._artifact(rows, tmp_path, "b.json")
        b["rows"][0]["cells"]["16"]["sparta_time"] *= 1.001
        assert diff_artifacts(a, b, tolerance=0.01) == []
        assert diff_artifacts(a, b, tolerance=0.0) != []

    def test_mismatched_experiments_rejected(self, rows, tmp_path):
        a = self._artifact(rows, tmp_path, "a.json")
        b = self._artifact(rows, tmp_path, "b.json")
        b["experiment"] = "table2"
        with pytest.raises(ArtifactError):
            diff_artifacts(a, b)

    def test_row_count_change_reported(self, rows, tmp_path):
        a = self._artifact(rows, tmp_path, "a.json")
        b = self._artifact(rows, tmp_path, "b.json")
        b["rows"] = b["rows"][:1]
        assert any("row count" in m for m in diff_artifacts(a, b))
