"""Tests for the parameter sweeps."""


from repro.eval.sweep import (
    render_sweep,
    sweep_cache_capacity,
    sweep_edram_factor,
    sweep_graph_scale,
)
from repro.pim.config import PimConfig


class TestGraphScale:
    def test_improvement_holds_across_sizes(self):
        points = sweep_graph_scale(sizes=(40, 80, 160), config=PimConfig(num_pes=16, iterations=200))
        for point in points:
            assert point.improvement_percent > 0

    def test_rmax_grows_with_size(self):
        points = sweep_graph_scale(sizes=(40, 400), config=PimConfig(num_pes=16, iterations=200))
        assert points[-1].paraconv_time > points[0].paraconv_time


class TestEdramFactor:
    def test_sparta_degrades_with_slower_edram(self):
        points = sweep_edram_factor(
            "flower", factors=(2, 10), config=PimConfig(num_pes=16, iterations=200)
        )
        assert points[1].sparta_time >= points[0].sparta_time

    def test_improvement_grows_with_penalty(self):
        # the costlier the vault fetch, the more retiming + caching helps
        points = sweep_edram_factor(
            "shortest-path", factors=(2, 10),
            config=PimConfig(num_pes=16, iterations=200),
        )
        assert points[1].improvement_percent >= points[0].improvement_percent


class TestCacheCapacity:
    def test_zero_cache_machine_supported(self):
        points = sweep_cache_capacity(
            "flower", capacities=(0, 4096),
            config=PimConfig(num_pes=16, iterations=200),
        )
        assert points[0].num_cached == 0
        assert points[1].num_cached >= points[0].num_cached

    def test_more_cache_never_hurts_paraconv(self):
        points = sweep_cache_capacity(
            "shortest-path", capacities=(0, 2048, 16384),
            config=PimConfig(num_pes=16, iterations=200),
        )
        times = [p.paraconv_time for p in points]
        assert times == sorted(times, reverse=True) or max(times) - min(times) <= times[-1] * 0.1


class TestRendering:
    def test_render_sweep(self):
        points = sweep_graph_scale(sizes=(40,), config=PimConfig(num_pes=16, iterations=100))
        text = render_sweep(points, "size", "Scale sweep")
        assert "Scale sweep" in text
        assert "IMP%" in text
