"""The schema-versioned bench-trajectory writer (``repro.eval.bench_io``)."""

from __future__ import annotations

import json

import pytest

from repro.eval.bench_io import (
    SCHEMA_KEY,
    BenchSchemaError,
    bench_environment,
    dump_bench,
    load_bench,
    new_report,
    parse_schema,
    schema_tag,
)


class TestSchemaTags:
    def test_tag_round_trips(self):
        assert schema_tag("fleet") == "BENCH_fleet/v1"
        assert schema_tag("compile", 3) == "BENCH_compile/v3"
        assert parse_schema("BENCH_sim/v2") == ("sim", 2)

    @pytest.mark.parametrize("bad", (
        "", "fleet bench", "a/b",
    ))
    def test_invalid_kind_rejected(self, bad):
        with pytest.raises(BenchSchemaError):
            schema_tag(bad)

    def test_invalid_version_rejected(self):
        with pytest.raises(BenchSchemaError):
            schema_tag("fleet", 0)

    @pytest.mark.parametrize("bad", (
        None, 7, "fleet/v1", "BENCH_", "BENCH_fleet", "BENCH_fleet/vX",
        "BENCH_/v1",
    ))
    def test_malformed_tags_rejected(self, bad):
        with pytest.raises(BenchSchemaError):
            parse_schema(bad)


class TestReports:
    def test_schema_key_leads_the_report(self):
        report = new_report("sim", {"speedup": 8.0})
        assert next(iter(report)) == SCHEMA_KEY
        assert report[SCHEMA_KEY] == "BENCH_sim/v1"
        assert report["speedup"] == 8.0
        assert "python" in report["environment"]
        assert "numpy" in report["environment"]

    def test_environment_block_is_optional(self):
        report = new_report("sim", environment=False)
        assert "environment" not in report

    def test_payload_cannot_smuggle_its_own_tag(self):
        with pytest.raises(BenchSchemaError):
            new_report("sim", {SCHEMA_KEY: "BENCH_sim/v9"})

    def test_environment_reports_running_stack(self):
        import platform

        assert bench_environment()["python"] == platform.python_version()


class TestRoundTrip:
    def test_dump_then_load(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        written = dump_bench(path, new_report("sim", {"speedup": 2.5}))
        assert written == path
        assert path.read_text().endswith("\n")
        loaded = load_bench(path, kind="sim")
        assert loaded["speedup"] == 2.5

    def test_dump_refuses_untagged_report(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            dump_bench(tmp_path / "x.json", {"speedup": 1.0})

    def test_load_refuses_wrong_kind(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        dump_bench(path, new_report("sim"))
        with pytest.raises(BenchSchemaError):
            load_bench(path, kind="compile")

    def test_load_refuses_untagged_document(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"speedup": 1.0}))
        with pytest.raises(BenchSchemaError):
            load_bench(path)

    def test_load_refuses_non_object_root(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BenchSchemaError):
            load_bench(path)


class TestFleetMigration:
    def test_fleet_report_rides_the_shared_writer(self):
        """The fleet bench report is a bench_io trajectory now."""
        from repro.fleet.loadgen import FleetLoadGenerator, run_bench
        from repro.fleet.router import FleetRouter  # noqa: F401

        # A tiny healthy-fleet run; the schema/environment stamp is what
        # this test pins (behavior is covered by tests/fleet/).
        import tempfile

        from repro.fleet.store import SharedPlanStore
        from repro.fleet.__main__ import build_fleet

        with tempfile.TemporaryDirectory() as store_dir:
            router = build_fleet(
                2, 8, 16, SharedPlanStore(store_dir),
                batch_window=4, max_queue=32,
            )
            report = run_bench(
                router,
                FleetLoadGenerator(["cat"], seed=1),
                num_requests=6,
            )
        assert parse_schema(report[SCHEMA_KEY]) == ("fleet", 1)
        assert "environment" in report
