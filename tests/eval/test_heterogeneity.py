"""Tests for the heterogeneous-array extension."""

import pytest

from repro.core.schedule import validate_kernel, validate_periodic_schedule
from repro.core.scheduler import (
    compact_kernel_schedule,
    compact_kernel_schedule_heterogeneous,
    list_schedule,
    list_schedule_heterogeneous,
)
from repro.eval.heterogeneity import (
    paraconv_heterogeneous,
    render_heterogeneity,
    run_heterogeneity,
)
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import ConfigurationError, PimConfig
from repro.pim.heterogeneous import HeterogeneousArray, big_little, homogeneous


class TestHeterogeneousArray:
    def test_speed_count_must_match(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousArray(PimConfig(num_pes=4), speeds=(1.0, 1.0))

    def test_non_positive_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousArray(PimConfig(num_pes=2), speeds=(1.0, 0.0))

    def test_effective_time(self):
        array = HeterogeneousArray(PimConfig(num_pes=2), speeds=(1.0, 0.5))
        assert array.effective_time(3, 0) == 3
        assert array.effective_time(3, 1) == 6
        assert array.effective_time(1, 1) == 2

    def test_effective_time_floor_one(self):
        array = HeterogeneousArray(PimConfig(num_pes=1), speeds=(4.0,))
        assert array.effective_time(1, 0) == 1

    def test_big_little_layout(self):
        array = big_little(PimConfig(num_pes=8), big_fraction=0.25,
                           little_speed=0.5)
        assert array.speeds == (1.0, 1.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5)

    def test_group_subarray(self):
        array = big_little(PimConfig(num_pes=4), little_speed=0.5)
        sub = array.group([0, 3])
        assert sub.speeds == (1.0, 0.5)
        assert sub.config.num_pes == 2

    def test_homogeneous_degenerates(self):
        array = homogeneous(PimConfig(num_pes=4))
        assert set(array.speeds) == {1.0}


class TestHeterogeneousSchedulers:
    @pytest.fixture
    def graph(self):
        return synthetic_benchmark("flower")

    @pytest.fixture
    def array(self):
        return big_little(PimConfig(num_pes=8), little_speed=0.5)

    def test_compact_het_resource_feasible(self, graph, array):
        kernel = compact_kernel_schedule_heterogeneous(graph, array)
        validate_kernel(
            graph, kernel, 8,
            duration_of=lambda op, pe: array.effective_time(
                graph.operation(op).execution_time, pe
            ),
        )

    def test_homogeneous_array_matches_nominal_bound(self, graph):
        array = homogeneous(PimConfig(num_pes=8))
        het = compact_kernel_schedule_heterogeneous(graph, array)
        hom = compact_kernel_schedule(graph, 8)
        # same machine, both greedy: identical periods
        assert het.period == hom.period

    def test_slower_littles_stretch_the_period(self, graph):
        fast = big_little(PimConfig(num_pes=8), little_speed=1.0)
        slow = big_little(PimConfig(num_pes=8), little_speed=0.25)
        assert (
            compact_kernel_schedule_heterogeneous(graph, slow).period
            >= compact_kernel_schedule_heterogeneous(graph, fast).period
        )

    def test_list_het_honors_dependencies(self, graph, array):
        kernel = list_schedule_heterogeneous(graph, array)
        for edge in graph.edges():
            assert kernel.finish(edge.producer) <= kernel.start(edge.consumer)

    def test_extra_occupancy_stretches(self, graph, array):
        plain = list_schedule_heterogeneous(graph, array)
        stalled = list_schedule_heterogeneous(
            graph, array,
            extra_occupancy={op.op_id: 2 for op in graph.operations()},
        )
        assert stalled.period > plain.period


class TestHeterogeneityStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_heterogeneity(
            PimConfig(iterations=200),
            benchmarks=("flower", "character-1"),
            pes=8,
            little_speeds=(1.0, 0.25),
        )

    def test_paraconv_wins_even_on_sparta_turf(self, rows):
        for row in rows:
            assert row.improvement_percent > 0

    def test_gap_narrows_with_heterogeneity(self, rows):
        by_speed = {}
        for row in rows:
            by_speed.setdefault(row.little_speed, []).append(
                row.improvement_percent
            )
        homogeneous_avg = sum(by_speed[1.0]) / len(by_speed[1.0])
        skewed_avg = sum(by_speed[0.25]) / len(by_speed[0.25])
        assert skewed_avg <= homogeneous_avg

    def test_schedules_valid(self):
        array = big_little(PimConfig(num_pes=8, iterations=200),
                           little_speed=0.5)
        schedule, total = paraconv_heterogeneous(
            synthetic_benchmark("flower"), array
        )
        validate_periodic_schedule(schedule)
        assert total > 0

    def test_render(self, rows):
        assert "big.LITTLE" in render_heterogeneity(rows)
