"""Tests for trend-agreement scoring."""

import pytest

from repro.eval.trends import rank_agreement, sign_agreement, table1_trend_report


class TestRankAgreement:
    def test_perfect_agreement(self):
        assert rank_agreement([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert rank_agreement([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        value = rank_agreement([1, 1, 2], [5, 5, 9])
        assert 0.9 <= value <= 1.0

    def test_constant_series_degenerate(self):
        assert rank_agreement([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rank_agreement([1], [1, 2])

    def test_short_series(self):
        assert rank_agreement([1], [2]) == 0.0


class TestSignAgreement:
    def test_same_directions(self):
        assert sign_agreement([1, 2, 3], [10, 30, 50]) == 1.0

    def test_opposite_directions(self):
        assert sign_agreement([1, 2, 3], [3, 2, 1]) == 0.0

    def test_flat_counts_as_match(self):
        assert sign_agreement([1, 1], [5, 9]) == 1.0

    def test_single_point(self):
        assert sign_agreement([1], [2]) == 1.0


class TestTable1Trends:
    def test_reproduction_agrees_with_paper(self):
        from repro.eval.table1 import run_table1
        from repro.pim.config import PimConfig

        rows = run_table1(PimConfig(iterations=1000))
        report = table1_trend_report(rows)
        assert report["benchmarks_compared"] == 12.0
        # totals scale the same direction across the PE sweep everywhere
        assert report["scaling_sign_agreement"] == 1.0
        # which benchmarks benefit most correlates positively with the paper
        assert report["benchmark_rank_agreement"] > -0.5
