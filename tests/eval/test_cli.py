"""Tests for the command-line entry points."""

import pytest

from repro.eval.__main__ import build_parser, main as eval_main
from repro.__main__ import main as repro_main


class TestEvalCli:
    def test_parser_accepts_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--benchmarks", "cat"])
        assert args.experiment == "table1"
        assert args.benchmarks == ["cat"]

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_table1_runs(self, capsys):
        assert eval_main(["table1", "--benchmarks", "cat", "--iterations", "100"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Overall average reduction" in out

    def test_figure6_runs(self, capsys):
        assert eval_main(["figure6", "--benchmarks", "cat"]) == 0
        assert "Figure 6" in capsys.readouterr().out


class TestReproCli:
    def test_list_workloads(self, capsys):
        assert repro_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "protein" in out
        assert "googlenet" in out

    def test_run_workload_with_gantt_and_baseline(self, capsys):
        code = repro_main(
            ["cat", "--pes", "8", "--iterations", "100", "--gantt", "--baseline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Para-CONV on 'cat'" in out
        assert "PE0" in out
        assert "SPARTA baseline" in out

    def test_no_workload_prints_usage(self, capsys):
        assert repro_main([]) == 2

    def test_alternate_allocator(self, capsys):
        assert repro_main(["cat", "--pes", "4", "--allocator", "greedy",
                           "--iterations", "50"]) == 0
        assert "Para-CONV" in capsys.readouterr().out
