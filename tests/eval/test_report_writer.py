"""Tests for the markdown report generator."""

import pytest

from repro.eval.report_writer import build_report, write_report
from repro.pim.config import PimConfig

CONFIG = PimConfig(iterations=100)


class TestBuildReport:
    def test_selected_sections_only(self):
        text = build_report(
            CONFIG, benchmarks=["cat"], sections=("table1", "figure5")
        )
        assert "## Table 1" in text
        assert "## Figure 5" in text
        assert "## Table 2" not in text
        assert "Overall average reduction" in text

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown report sections"):
            build_report(CONFIG, sections=("table9",))

    def test_machine_header(self):
        text = build_report(CONFIG, benchmarks=["cat"], sections=("table2",))
        assert "Machine:" in text
        assert "N = 100 iterations" in text


class TestWriteReport:
    def test_file_written(self, tmp_path):
        path = tmp_path / "report.md"
        write_report(path, CONFIG, benchmarks=["cat"], sections=("table2",))
        content = path.read_text()
        assert content.startswith("# Para-CONV experiment report")
        assert "R_max@16" in content
