"""Tests for the table/figure experiment harness.

These run on benchmark subsets to stay fast while still asserting the
qualitative shapes the paper reports.
"""

import pytest

from repro.eval.ablation import render_ablation, run_ablation
from repro.eval.energy import render_energy, run_energy
from repro.eval.figure5 import render_figure5, run_figure5
from repro.eval.figure6 import render_figure6, run_figure6
from repro.eval.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_imp,
    paper_reduction,
)
from repro.eval.table1 import (
    average_improvement,
    overall_average_improvement,
    render_table1,
    run_table1,
)
from repro.eval.table2 import render_table2, run_table2
from repro.eval.validation import run_validation, render_validation
from repro.pim.config import PimConfig

SUBSET = ["cat", "flower", "shortest-path"]
CONFIG = PimConfig(iterations=200)


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(CONFIG, benchmarks=SUBSET)


class TestPaperData:
    def test_tables_cover_all_benchmarks(self):
        assert len(PAPER_TABLE1) == 12
        assert len(PAPER_TABLE2) == 12

    def test_paper_imp_lookup(self):
        assert paper_imp("protein", 16) == 56.93

    def test_paper_reduction_recomputed(self):
        # cat/16: 4.7 -> 4.0 is a ~14.9% reduction despite the printed 85.13
        assert paper_reduction("cat", 16) == pytest.approx(14.89, abs=0.01)


class TestTable1:
    def test_row_structure(self, table1_rows):
        assert [r.benchmark for r in table1_rows] == SUBSET
        for row in table1_rows:
            assert set(row.cells) == {16, 32, 64}

    def test_paraconv_always_wins(self, table1_rows):
        for row in table1_rows:
            for cell in row.cells.values():
                assert cell.paraconv_time < cell.sparta_time
                assert cell.improvement_percent > 0
                assert cell.speedup > 1.0

    def test_average_improvement_near_paper(self, table1_rows):
        overall = overall_average_improvement(table1_rows)
        assert 35.0 <= overall <= 75.0  # paper: 53.42 on the full set

    def test_both_schemes_scale_with_pes(self, table1_rows):
        for row in table1_rows:
            assert row.cells[64].paraconv_time < row.cells[16].paraconv_time
            assert row.cells[64].sparta_time < row.cells[16].sparta_time

    def test_render(self, table1_rows):
        text = render_table1(table1_rows)
        assert "Table 1" in text
        assert "AVERAGE" in text
        assert "cat" in text

    def test_per_pe_average(self, table1_rows):
        value = average_improvement(table1_rows, 16)
        assert 0 < value < 100


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(CONFIG, benchmarks=SUBSET)

    def test_rmax_grows_with_scale(self, rows):
        by_name = {r.benchmark: r for r in rows}
        # larger applications retime deeper (paper's scale claim)
        assert (
            by_name["shortest-path"].average > by_name["cat"].average
        )

    def test_prologue_overhead_negligible(self, rows):
        # paper: "this overhead is negligible"
        for row in rows:
            for pes in (16, 32, 64):
                assert row.prologue_fraction(pes) < 0.25

    def test_render(self, rows):
        text = render_table2(rows)
        assert "Table 2" in text
        assert "R_max@16" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure5(CONFIG, benchmarks=SUBSET)

    def test_iteration_time_decreases_with_pes(self, rows):
        for row in rows:
            assert (
                row.iteration_time[64]
                <= row.iteration_time[32]
                <= row.iteration_time[16]
            )

    def test_paraconv_beats_64pe_baseline_at_64(self, rows):
        for row in rows:
            assert row.normalized(64) < 1.0

    def test_render(self, rows):
        assert "Figure 5" in render_figure5(rows)


class TestFigure6:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure6(CONFIG, benchmarks=SUBSET)

    def test_cached_counts_bounded(self, rows):
        for row in rows:
            for pes in (16, 32, 64):
                assert 0 <= row.cached_per_group[pes] <= row.num_edges
                assert row.cached_per_group[pes] <= row.competing[pes]

    def test_cached_never_decreases_much_with_capacity(self, rows):
        # full-array capacity doubles 16->32->64; the cached count should
        # not collapse (it saturates at the competing ceiling)
        for row in rows:
            assert row.cached_per_group[64] + 2 >= min(
                row.cached_per_group[16], row.competing[64]
            )

    def test_small_benchmark_saturates(self, rows):
        by_name = {r.benchmark: r for r in rows}
        assert by_name["cat"].saturated(32, 64)

    def test_render(self, rows):
        assert "Figure 6" in render_figure6(rows)


class TestAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablation(CONFIG, benchmarks=SUBSET, pes=16)

    def test_profit_ordering(self, rows):
        for row in rows:
            cells = row.cells
            assert cells["oracle"].profit >= cells["dp"].profit
            assert cells["dp"].profit >= cells["greedy"].profit
            assert cells["greedy"].profit >= cells["random"].profit
            assert cells["all-edram"].profit == 0

    def test_rmax_ordering(self, rows):
        for row in rows:
            cells = row.cells
            assert cells["oracle"].max_retiming <= cells["dp"].max_retiming
            assert cells["iterative"].max_retiming <= cells["dp"].max_retiming
            assert cells["dp"].max_retiming <= cells["all-edram"].max_retiming

    def test_regression_metric(self, rows):
        for row in rows:
            assert row.regression_vs_dp("all-edram") >= 0.0

    def test_render(self, rows):
        assert "Ablation" in render_ablation(rows)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            run_ablation(CONFIG, benchmarks=["cat"], strategies=("dp", "magic"))


class TestValidation:
    def test_model_matches_simulation(self):
        rows = run_validation(
            CONFIG, benchmarks=("cat", "flower"), pes=16, iterations=8
        )
        for row in rows:
            assert row.slowdown == pytest.approx(1.0, abs=0.05)
            assert row.realized >= row.analytic * 0.95
        text = render_validation(rows)
        assert "Validation" in text


class TestEnergy:
    def test_paraconv_saves_vs_no_cache(self):
        rows = run_energy(CONFIG, benchmarks=SUBSET, pes=16)
        for row in rows:
            assert row.paraconv_pj <= row.all_edram_pj
            assert row.saving_vs_no_cache >= 0.0
        text = render_energy(rows)
        assert "energy" in text.lower()
