"""CLI coverage for the remaining eval subcommands and repro flags."""

import json


from repro.__main__ import main as repro_main
from repro.eval.__main__ import main as eval_main

FAST = ["--iterations", "100", "--benchmarks", "cat"]


class TestEvalSubcommands:
    def test_table2(self, capsys):
        assert eval_main(["table2", *FAST]) == 0
        assert "R_max@16" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert eval_main(["figure5", *FAST]) == 0
        assert "norm@64" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert eval_main(["ablation", *FAST]) == 0
        out = capsys.readouterr().out
        assert "dp:time" in out
        assert "iterative:R" in out

    def test_validation(self, capsys):
        assert eval_main(["validation", *FAST]) == 0
        assert "slowdown" in capsys.readouterr().out

    def test_energy(self, capsys):
        assert eval_main(["energy", *FAST]) == 0
        assert "no-cache" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert eval_main(["latency", *FAST]) == 0
        assert "latency ratio" in capsys.readouterr().out

    def test_architectures(self, capsys):
        assert eval_main(["architectures", *FAST]) == 0
        assert "edge_pim" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        assert eval_main(["report", *FAST, "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("# Para-CONV experiment report")

    def test_machine_knobs_flow_through(self, capsys):
        assert eval_main(
            ["table2", "--benchmarks", "cat", "--iterations", "100",
             "--cache-bytes-per-pe", "0", "--edram-factor", "8"]
        ) == 0
        # zero cache: nothing allocated, R_max still reported
        assert "R_max@16" in capsys.readouterr().out


class TestReproFlags:
    def test_simulate_and_exports(self, tmp_path, capsys):
        dot = tmp_path / "g.dot"
        trace = tmp_path / "t.json"
        code = repro_main(
            ["cat", "--pes", "8", "--iterations", "100",
             "--simulate", "4", "--dot", str(dot), "--trace", str(trace),
             "--liveness-aware"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Simulated 4 iterations" in out
        assert dot.read_text().startswith("digraph")
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
