"""BENCH_tenancy trajectory: schema, payload shape, CLI artifact."""

from repro.eval.bench_io import dump_bench, load_bench
from repro.eval.tenancy import render_tenancy, run_tenancy_bench

FAST = dict(
    scenarios=(
        ("2-tenant", ("tenant-a", "tenant-b"), ("flower", "stock-predict")),
    ),
    fused_models=("alexnet",),
    num_pes=16,
    requests_per_tenant=2,
    iterations=2,
)


class TestRunTenancyBench:
    def test_schema_and_shape(self):
        report = run_tenancy_bench(**FAST)
        assert report["schema"] == "BENCH_tenancy/v1"
        assert "environment" in report
        assert len(report["scenarios"]) == 1
        assert len(report["fused"]) == 1

    def test_scenario_row(self):
        row = run_tenancy_bench(**FAST)["scenarios"][0]
        assert row["requests"] == 4
        assert row["plans_cached"] == 2
        assert row["makespan_units"] > 0
        # Disjoint partitions: concurrent makespan never exceeds serial.
        assert row["makespan_units"] <= row["serial_units"]
        assert row["consolidation_speedup"] >= 1.0
        for info in row["tenants"].values():
            assert info["served"] == 2

    def test_fused_row(self):
        row = run_tenancy_bench(**FAST)["fused"][0]
        assert row["model"] == "alexnet"
        assert row["fused"]["ops"] < row["unfused"]["ops"]
        assert row["fused"]["delta_r"]["fused_ops_absorbed"] > 0
        assert row["unfused"]["delta_r"]["fused_ops_absorbed"] == 0
        assert row["latency_ratio"] > 0

    def test_render(self):
        report = run_tenancy_bench(**FAST)
        text = render_tenancy(report)
        assert "consolidation" in text
        assert "2-tenant" in text
        assert "alexnet" in text

    def test_round_trip(self, tmp_path):
        report = run_tenancy_bench(**FAST)
        path = dump_bench(tmp_path / "BENCH_tenancy.json", report)
        assert load_bench(path, kind="tenancy") == report


class TestCli:
    def test_eval_tenancy_writes_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        from repro.eval.__main__ import main

        assert main(["tenancy"]) == 0
        loaded = load_bench(tmp_path / "BENCH_tenancy.json", kind="tenancy")
        assert loaded["scenarios"]
