"""Tests for the cross-architecture study and presets."""

import pytest

from repro.eval.architectures import (
    average_improvement_by_architecture,
    render_architectures,
    run_architectures,
)
from repro.pim.config import ConfigurationError
from repro.pim.presets import ARCHITECTURES, architecture, architecture_names


class TestPresets:
    def test_all_presets_valid_configs(self):
        for name in architecture_names():
            config = architecture(name)
            assert config.num_pes >= 1
            assert 2 <= config.edram_latency_factor <= 10

    def test_pe_override(self):
        config = architecture("neurocube", num_pes=64)
        assert config.num_pes == 64
        # and the base preset is untouched
        assert ARCHITECTURES["neurocube"].num_pes == 16

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown architecture"):
            architecture("tpu")

    def test_design_points_differ(self):
        factors = {c.edram_latency_factor for c in ARCHITECTURES.values()}
        assert len(factors) >= 3  # genuinely different machines


class TestStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_architectures(workloads=("flower", "shortest-path"), num_pes=16)

    def test_grid_complete(self, rows):
        assert len(rows) == len(ARCHITECTURES) * 2

    def test_paraconv_wins_on_every_architecture(self, rows):
        for row in rows:
            assert row.improvement_percent > 0, (row.architecture, row.workload)

    def test_offpe_penalty_drives_the_margin(self, rows):
        averages = average_improvement_by_architecture(rows)
        # the slow-vault edge machine gains the most; the cheap-path RRAM
        # machine gains the least (or ties the reference)
        assert averages["edge_pim"] >= averages["neurocube"]
        assert averages["edge_pim"] >= averages["rram_pim"]

    def test_subset_selection(self):
        rows = run_architectures(
            workloads=("flower",), names=["rram_pim"], num_pes=16
        )
        assert {r.architecture for r in rows} == {"rram_pim"}

    def test_render(self, rows):
        text = render_architectures(rows)
        assert "Cross-architecture" in text
        assert "edge_pim" in text
