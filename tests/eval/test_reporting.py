"""Tests for the reporting helpers."""

import pytest

from repro.eval.reporting import format_table, geometric_mean, to_csv


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1], ["bb", 22.5]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]
        assert "22.50" in lines[4]  # floats rendered with 2 decimals

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [[1]])

    def test_label_left_numbers_right(self):
        text = format_table(["name", "n"], [["x", 5], ["longlabel", 123]])
        lines = text.splitlines()
        assert lines[2].startswith("x ")
        assert lines[2].rstrip().endswith("5")


class TestCsv:
    def test_round_trip(self):
        text = to_csv(["a", "b"], [[1, "x"], [2, "y"]])
        rows = [line.split(",") for line in text.strip().splitlines()]
        assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
