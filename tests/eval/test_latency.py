"""Tests for the frame-latency trade-off analysis."""

import pytest

from repro.eval.latency import render_latency, run_latency
from repro.pim.config import PimConfig


class TestLatency:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_latency(
            PimConfig(iterations=200),
            benchmarks=["cat", "flower", "protein"],
            pes=16,
        )

    def test_paraconv_wins_throughput(self, rows):
        for row in rows:
            assert row.throughput_ratio > 1.0

    def test_retiming_costs_latency(self, rows):
        # the trade-off the paper does not report: pipelining a frame over
        # R_max + 1 rounds stretches its sojourn time
        assert any(row.latency_ratio > 1.0 for row in rows)

    def test_latency_formula(self, rows):
        from repro.core.paraconv import ParaConv
        from repro.graph.generators import synthetic_benchmark

        config = PimConfig(num_pes=16, iterations=200)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        row = next(r for r in rows if r.benchmark == "cat")
        assert row.paraconv_latency == (result.max_retiming + 1) * result.period

    def test_intervals_positive(self, rows):
        for row in rows:
            assert row.paraconv_interval > 0
            assert row.sparta_interval > 0

    def test_render(self, rows):
        text = render_latency(rows)
        assert "latency ratio" in text
        assert "throughput ratio" in text
