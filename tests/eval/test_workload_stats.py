"""Tests for the workload census."""


from repro.eval.workload_stats import render_workload_stats, run_workload_stats


class TestWorkloadStats:
    def test_selected_subset(self):
        rows = run_workload_stats(["cat", "protein"])
        assert [r.name for r in rows] == ["cat", "protein"]
        assert rows[0].num_vertices == 9
        assert rows[1].num_edges == 1449

    def test_all_workloads_census(self):
        rows = run_workload_stats()
        names = {r.name for r in rows}
        # graph names may differ from registry keys (e.g. googlenet prefix)
        assert len(rows) >= 15  # 12 paper + googlenet x2 + 3 models
        assert "cat" in names
        assert "vgg16" in names

    def test_chain_model_has_no_parallelism(self):
        rows = run_workload_stats(["lenet5"])
        assert rows[0].max_parallelism == 1  # a pure pipeline

    def test_render(self):
        text = render_workload_stats(run_workload_stats(["cat"]))
        assert "Workload census" in text
        assert "critical path" in text

    def test_cli_subcommand(self, capsys):
        from repro.eval.__main__ import main

        assert main(["workloads", "--benchmarks", "cat", "car"]) == 0
        out = capsys.readouterr().out
        assert "Workload census" in out
        assert "car" in out
