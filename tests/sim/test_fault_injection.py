"""Fault injection in the discrete-event executor.

Covers the fault-path matrix from the degraded-serving design: faults at
iteration 0 (static and timed), mid-prologue strikes, strikes *after*
steady-state convergence (the fast-forward must never skip a fault
boundary), vault faults on eDRAM-resident intermediate results, and the
guarantee that a trivial fault model leaves execution bit-identical.
"""

from __future__ import annotations

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT, FaultModel
from repro.sim.executor import PeFaultError, ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


@pytest.fixture(scope="module")
def machine():
    return PimConfig(num_pes=16, iterations=100)


@pytest.fixture(scope="module")
def plan(machine):
    return ParaConv(machine).run(synthetic_benchmark("cat"))


def executor(machine, mode=SimMode.FULL_UNROLL):
    return ScheduleExecutor(machine, num_vaults=32, mode=mode)


class TestPeFaults:
    def test_timed_pe_fault_raises_with_context(self, machine, plan):
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 3)
        with pytest.raises(PeFaultError) as excinfo:
            executor(machine).execute(plan, iterations=10, fault_model=fault_model)
        fault = excinfo.value
        assert fault.unit == FAULT_UNIT_PE
        assert fault.unit_id == 0
        assert fault.fault_iteration == 3
        assert fault.round >= 3
        assert "pe 0" in str(fault) and "round" in str(fault)

    def test_fault_at_iteration_zero(self, machine, plan):
        """An event at boundary 0 behaves like a static failure."""
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 0)
        with pytest.raises(PeFaultError) as excinfo:
            executor(machine).execute(plan, iterations=5, fault_model=fault_model)
        assert excinfo.value.fault_iteration == 0
        assert excinfo.value.round >= 1

    def test_static_mask_fault(self, machine, plan):
        fault_model = FaultModel.static(failed_pes=[0])
        with pytest.raises(PeFaultError) as excinfo:
            executor(machine).execute(plan, iterations=5, fault_model=fault_model)
        assert excinfo.value.fault_iteration == 0

    def test_fault_mid_prologue(self, machine, plan):
        """A strike at boundary 1 lands while the pipeline is still
        filling (the prologue spans R_max rounds)."""
        assert plan.max_retiming >= 1  # the scenario requires a prologue
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 1)
        with pytest.raises(PeFaultError) as excinfo:
            executor(machine).execute(plan, iterations=10, fault_model=fault_model)
        assert 1 <= excinfo.value.round <= plan.max_retiming + 1

    def test_constructor_level_fault_model(self, machine, plan):
        runner = ScheduleExecutor(
            machine,
            num_vaults=32,
            mode=SimMode.FULL_UNROLL,
            fault_model=FaultModel.single(FAULT_UNIT_PE, 0, 2),
        )
        with pytest.raises(PeFaultError):
            runner.execute(plan, iterations=5)
        # Per-call override takes precedence over the constructor model.
        trace = runner.execute(plan, iterations=5, fault_model=FaultModel.none())
        assert trace.num_instances > 0


class TestVaultFaults:
    def test_vault_fault_on_edram_resident_ir(self, machine, plan):
        """A vault holding an eDRAM-placed intermediate result dies: the
        first transfer touching it must raise, naming the vault."""
        healthy = executor(machine).execute(
            plan, iterations=5, sink=NullSink()
        )
        assert healthy.stats.edram_accesses > 0  # scenario precondition
        raised = []
        for vault_id in range(32):
            try:
                executor(machine).execute(
                    plan,
                    iterations=5,
                    sink=NullSink(),
                    fault_model=FaultModel.single(FAULT_UNIT_VAULT, vault_id, 1),
                )
            except PeFaultError as fault:
                assert fault.unit == FAULT_UNIT_VAULT
                assert fault.unit_id == vault_id
                raised.append(vault_id)
        assert raised, "no vault fault ever fired despite eDRAM traffic"


class TestSteadyStateInteraction:
    def test_fast_forward_never_skips_a_fault(self, machine, plan):
        """The steady-state engine converges long before iteration 500;
        its O(1) splice must stop at the fault boundary, not jump it."""
        healthy = executor(machine, SimMode.STEADY_STATE).execute(
            plan, iterations=1000, sink=NullSink()
        )
        assert healthy.converged_round is not None
        assert healthy.converged_round < 500  # the splice would jump 500
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 500)
        with pytest.raises(PeFaultError) as excinfo:
            executor(machine, SimMode.STEADY_STATE).execute(
                plan, iterations=1000, sink=NullSink(), fault_model=fault_model
            )
        assert excinfo.value.fault_iteration == 500
        assert 500 <= excinfo.value.round <= 1000

    def test_late_fault_near_horizon(self, machine, plan):
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 1999)
        with pytest.raises(PeFaultError) as excinfo:
            executor(machine, SimMode.STEADY_STATE).execute(
                plan, iterations=2000, sink=NullSink(), fault_model=fault_model
            )
        assert excinfo.value.round >= 1999

    def test_trivial_model_is_bit_identical(self, machine, plan):
        base = executor(machine, SimMode.STEADY_STATE).execute(
            plan, iterations=200, sink=NullSink()
        )
        with_model = executor(machine, SimMode.STEADY_STATE).execute(
            plan, iterations=200, sink=NullSink(), fault_model=FaultModel.none()
        )
        assert base.aggregate_signature() == with_model.aggregate_signature()

    def test_unfired_future_fault_preserves_results(self, machine, plan):
        """A fault scheduled after the horizon must not perturb the run
        (the detector reset and fast-forward cap are behavior-neutral)."""
        base = executor(machine, SimMode.STEADY_STATE).execute(
            plan, iterations=200, sink=NullSink()
        )
        capped = executor(machine, SimMode.STEADY_STATE).execute(
            plan,
            iterations=200,
            sink=NullSink(),
            fault_model=FaultModel.single(FAULT_UNIT_PE, 0, 10_000),
        )
        assert base.aggregate_signature() == capped.aggregate_signature()
