"""Executor edge cases: degenerate machines and workload corners."""

import pytest

from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges
from repro.graph.generators import synthetic_benchmark
from repro.graph.taskgraph import TaskGraph, linear_chain
from repro.pim.config import PimConfig
from repro.pim.memory import Placement
from repro.sim.executor import ScheduleExecutor
from repro.verify.validator import ScheduleValidator


class TestDegenerateMachines:
    def test_zero_cache_machine(self):
        config = PimConfig(num_pes=8, cache_bytes_per_pe=0, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        assert all(
            p is Placement.EDRAM for p in result.schedule.placements.values()
        )
        trace = ScheduleExecutor(config, num_vaults=16).execute(
            result, iterations=6
        )
        assert trace.slowdown == pytest.approx(1.0, abs=0.05)
        assert trace.stats.cache_bytes == 0
        assert trace.stats.edram_bytes > 0

    def test_single_vault_contention_visible(self):
        config = PimConfig(num_pes=8, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("flower"))
        relaxed = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=8
        )
        contended = ScheduleExecutor(config, num_vaults=1).execute(
            result, iterations=8
        )
        # one vault serializes all off-chip traffic: lateness can only grow
        assert contended.total_lateness >= relaxed.total_lateness
        # and the executor absorbs it without losing instances
        assert len(contended.records) == len(relaxed.records)

    def test_two_pe_machine(self):
        config = PimConfig(num_pes=2, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        trace = ScheduleExecutor(config).execute(result, iterations=4)
        assert {r.pe for r in trace.records} <= {0, 1}


class TestWorkloadCorners:
    def test_pure_chain(self):
        graph = linear_chain([2, 3, 1, 2], size_bytes=2048)
        config = PimConfig(num_pes=4, iterations=100)
        result = ParaConv(config).run(graph)
        trace = ScheduleExecutor(config, num_vaults=8).execute(
            result, iterations=5
        )
        assert trace.slowdown == pytest.approx(1.0, abs=0.05)
        # chain dependencies: instance l of stage k+1 after stage k
        finish = {(r.op_id, r.iteration): r.finish for r in trace.records}
        start = {(r.op_id, r.iteration): r.start for r in trace.records}
        for stage in range(3):
            for iteration in range(1, 6):
                assert finish[(stage, iteration)] <= start[(stage + 1, iteration)]

    def test_single_iteration(self):
        config = PimConfig(num_pes=8, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        trace = ScheduleExecutor(config).execute(result, iterations=1)
        assert len(trace.records) == result.graph.num_vertices

    def test_epilogue_instances_complete(self):
        """Deep retiming: the last iterations drain correctly."""
        config = PimConfig(num_pes=16, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("character-1"))
        iterations = max(3, result.max_retiming // 2)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=iterations
        )
        executed = {(r.op_id, r.iteration) for r in trace.records}
        for op in result.graph.operations():
            for iteration in range(1, iterations + 1):
                assert (op.op_id, iteration) in executed


class TestExtremeCorners:
    """The boundary points of the machine/workload parameter space."""

    def test_single_pe_machine(self):
        """One PE: everything serializes into a single legal group."""
        config = PimConfig(num_pes=1, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        assert result.group_width == 1
        assert result.num_groups == 1
        # a 1-PE schedule is still invariant-clean ...
        assert ScheduleValidator().validate(result).ok
        # ... and the period is at least the serial work
        serial = sum(op.execution_time for op in result.graph.operations())
        assert result.period >= serial
        trace = ScheduleExecutor(config, num_vaults=4).execute(
            result, iterations=3
        )
        assert {r.pe for r in trace.records} == {0}
        assert len(trace.records) == 3 * result.graph.num_vertices

    def test_zero_ir_graph(self):
        """No intermediate results: nothing to retime, cache or transfer."""
        graph = TaskGraph(name="edgeless")
        for op_id in range(4):
            graph.add_op(op_id, execution_time=2)
        graph.validate()
        config = PimConfig(num_pes=4, iterations=100)
        result = ParaConv(config).run(graph)
        assert result.max_retiming == 0
        assert result.prologue_time == 0
        assert result.allocation.cached == []
        assert result.allocation.slots_used == 0
        assert result.offchip_bytes_per_iteration() == 0
        assert ScheduleValidator().validate(result).ok
        trace = ScheduleExecutor(config).execute(result, iterations=5)
        assert len(trace.records) == 5 * graph.num_vertices
        assert trace.stats.cache_bytes == 0
        assert trace.stats.edram_bytes == 0

    def test_cache_larger_than_total_ir_size(self):
        """Capacity >= total demand: every profitable edge is cached."""
        config = PimConfig(
            num_pes=8, cache_bytes_per_pe=1 << 20, iterations=100
        )
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        timings = analyze_edges(
            result.graph, result.schedule.kernel, config
        )
        profitable = {k for k, t in timings.items() if t.delta_r > 0}
        assert set(result.allocation.cached) == profitable
        assert result.allocation.slots_used <= result.allocation.capacity_slots
        trace = ScheduleExecutor(config, num_vaults=16).execute(
            result, iterations=4
        )
        assert trace.cache_spills == 0

    def test_single_iteration_is_prologue_plus_one_round(self):
        """N=1 analytic latency: the prologue plus exactly one period."""
        config = PimConfig(num_pes=8, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        assert result.total_time(1) == result.prologue_time + result.period
        trace = ScheduleExecutor(config).execute(result, iterations=1)
        # every op ran exactly once, and dependencies still held
        assert sorted(r.op_id for r in trace.records) == sorted(
            op.op_id for op in result.graph.operations()
        )
        finish = {r.op_id: r.finish for r in trace.records}
        start = {r.op_id: r.start for r in trace.records}
        for edge in result.graph.edges():
            assert finish[edge.producer] <= start[edge.consumer]
