"""Executor edge cases: degenerate machines and workload corners."""

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.graph.taskgraph import linear_chain
from repro.pim.config import PimConfig
from repro.pim.memory import Placement
from repro.sim.executor import ScheduleExecutor


class TestDegenerateMachines:
    def test_zero_cache_machine(self):
        config = PimConfig(num_pes=8, cache_bytes_per_pe=0, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        assert all(
            p is Placement.EDRAM for p in result.schedule.placements.values()
        )
        trace = ScheduleExecutor(config, num_vaults=16).execute(
            result, iterations=6
        )
        assert trace.slowdown == pytest.approx(1.0, abs=0.05)
        assert trace.stats.cache_bytes == 0
        assert trace.stats.edram_bytes > 0

    def test_single_vault_contention_visible(self):
        config = PimConfig(num_pes=8, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("flower"))
        relaxed = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=8
        )
        contended = ScheduleExecutor(config, num_vaults=1).execute(
            result, iterations=8
        )
        # one vault serializes all off-chip traffic: lateness can only grow
        assert contended.total_lateness >= relaxed.total_lateness
        # and the executor absorbs it without losing instances
        assert len(contended.records) == len(relaxed.records)

    def test_two_pe_machine(self):
        config = PimConfig(num_pes=2, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        trace = ScheduleExecutor(config).execute(result, iterations=4)
        assert {r.pe for r in trace.records} <= {0, 1}


class TestWorkloadCorners:
    def test_pure_chain(self):
        graph = linear_chain([2, 3, 1, 2], size_bytes=2048)
        config = PimConfig(num_pes=4, iterations=100)
        result = ParaConv(config).run(graph)
        trace = ScheduleExecutor(config, num_vaults=8).execute(
            result, iterations=5
        )
        assert trace.slowdown == pytest.approx(1.0, abs=0.05)
        # chain dependencies: instance l of stage k+1 after stage k
        finish = {(r.op_id, r.iteration): r.finish for r in trace.records}
        start = {(r.op_id, r.iteration): r.start for r in trace.records}
        for stage in range(3):
            for iteration in range(1, 6):
                assert finish[(stage, iteration)] <= start[(stage + 1, iteration)]

    def test_single_iteration(self):
        config = PimConfig(num_pes=8, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        trace = ScheduleExecutor(config).execute(result, iterations=1)
        assert len(trace.records) == result.graph.num_vertices

    def test_epilogue_instances_complete(self):
        """Deep retiming: the last iterations drain correctly."""
        config = PimConfig(num_pes=16, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("character-1"))
        iterations = max(3, result.max_retiming // 2)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=iterations
        )
        executed = {(r.op_id, r.iteration) for r in trace.records}
        for op in result.graph.operations():
            for iteration in range(1, iterations + 1):
                assert (op.op_id, iteration) in executed
