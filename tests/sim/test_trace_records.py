"""Unit tests for trace record types."""

from repro.sim.trace import InstanceRecord, TransferKind, TransferRecord


class TestInstanceRecord:
    def test_lateness(self):
        record = InstanceRecord(
            op_id=1, iteration=2, pe=0, nominal_start=10, start=13, finish=15
        )
        assert record.lateness == 3

    def test_on_time_instance(self):
        record = InstanceRecord(
            op_id=1, iteration=1, pe=0, nominal_start=5, start=5, finish=7
        )
        assert record.lateness == 0


class TestTransferRecord:
    def test_latency(self):
        record = TransferRecord(
            edge=(0, 1), iteration=3, kind=TransferKind.EDRAM,
            size_bytes=1024, issued=4, completed=9,
        )
        assert record.latency == 5

    def test_kinds(self):
        assert TransferKind.CACHE.value == "cache"
        assert TransferKind.EDRAM.value == "edram"
