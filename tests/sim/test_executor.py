"""Tests for the discrete-event schedule executor."""

import pytest

from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.sim.engine import SimulationError
from repro.sim.executor import ScheduleExecutor, simulate_sparta
from repro.sim.trace import TransferKind


@pytest.fixture(scope="module")
def flower_trace():
    config = PimConfig(num_pes=16)
    result = ParaConv(config).run(synthetic_benchmark("flower"))
    trace = ScheduleExecutor(config, num_vaults=32).execute(result, iterations=10)
    return result, trace


class TestExecution:
    def test_all_instances_execute(self, flower_trace):
        result, trace = flower_trace
        assert len(trace.records) == result.graph.num_vertices * 10

    def test_analytic_model_validated(self, flower_trace):
        _, trace = flower_trace
        assert trace.slowdown == pytest.approx(1.0, abs=0.05)
        assert trace.realized_makespan <= trace.analytic_makespan * 1.05

    def test_lateness_bounded(self, flower_trace):
        _, trace = flower_trace
        # transient vault contention may nudge instances, never cascades
        assert trace.max_lateness <= trace.config.edram_transfer_units(4096) * 4

    def test_dependencies_honored(self, flower_trace):
        result, trace = flower_trace
        finish = {(r.op_id, r.iteration): r.finish for r in trace.records}
        start = {(r.op_id, r.iteration): r.start for r in trace.records}
        for edge in result.graph.edges():
            for iteration in range(1, 11):
                producer = (edge.producer, iteration)
                consumer = (edge.consumer, iteration)
                assert finish[producer] <= start[consumer], (
                    f"instance {consumer} started before its input from "
                    f"{producer} was produced"
                )

    def test_no_pe_overlap(self, flower_trace):
        _, trace = flower_trace
        per_pe = {}
        for record in trace.records:
            per_pe.setdefault(record.pe, []).append(record)
        for records in per_pe.values():
            records.sort(key=lambda r: r.start)
            for left, right in zip(records, records[1:]):
                assert right.start >= left.finish

    def test_transfer_kinds_match_placement(self, flower_trace):
        result, trace = flower_trace
        from repro.pim.memory import Placement

        for transfer in trace.transfers:
            expected = result.schedule.placements[transfer.edge]
            if transfer.kind is TransferKind.CACHE:
                assert expected is Placement.CACHE
            # eDRAM transfers may also come from cache spills

    def test_traffic_accounted(self, flower_trace):
        _, trace = flower_trace
        assert trace.stats.total_bytes > 0
        assert trace.stats.alu_ops > 0

    def test_energy_report(self, flower_trace):
        _, trace = flower_trace
        report = trace.energy()
        assert report.total_pj > 0
        assert report.movement_pj <= report.total_pj

    def test_utilization_in_range(self, flower_trace):
        _, trace = flower_trace
        assert 0.0 < trace.pe_utilization() <= 1.0

    def test_invalid_iterations(self, flower_trace):
        result, _ = flower_trace
        with pytest.raises(SimulationError):
            ScheduleExecutor(result.config).execute(result, iterations=0)

    def test_deterministic(self):
        config = PimConfig(num_pes=8)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        a = ScheduleExecutor(config).execute(result, iterations=5)
        b = ScheduleExecutor(config).execute(result, iterations=5)
        assert a.records == b.records
        assert a.realized_makespan == b.realized_makespan


class TestSpartaSimulation:
    def test_back_to_back_iterations(self):
        config = PimConfig(num_pes=16)
        result = SpartaScheduler(config).run(synthetic_benchmark("cat"))
        trace = simulate_sparta(result, iterations=5)
        assert trace.realized_makespan == 5 * result.iteration_length
        assert len(trace.records) == result.graph.num_vertices * 5

    def test_traffic_scales_with_iterations(self):
        config = PimConfig(num_pes=16)
        result = SpartaScheduler(config).run(synthetic_benchmark("cat"))
        short = simulate_sparta(result, iterations=2)
        long = simulate_sparta(result, iterations=4)
        assert long.stats.total_bytes == 2 * short.stats.total_bytes

    def test_invalid_iterations(self):
        config = PimConfig(num_pes=16)
        result = SpartaScheduler(config).run(synthetic_benchmark("cat"))
        with pytest.raises(SimulationError):
            simulate_sparta(result, iterations=0)


class TestFifoAccounting:
    def test_pfifo_traffic_recorded(self):
        config = PimConfig(num_pes=8, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("flower"))
        trace = ScheduleExecutor(config, num_vaults=16).execute(
            result, iterations=6
        )
        # every delivered intermediate result staged through a pFIFO
        # (unless its FIFO was transiently full)
        assert trace.stats.fifo_pushes > 0
        assert trace.stats.fifo_pushes <= len(trace.transfers)
