"""Tests for pluggable trace sinks and windowed exports."""

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.sim.chrome_trace import trace_to_events
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import (
    CountingSink,
    FastForwardNotice,
    InMemorySink,
    NullSink,
    RingBufferSink,
    SamplingWindowSink,
)
from repro.sim.trace import InstanceRecord, TransferKind, TransferRecord


def _instance(op_id=0, iteration=1, start=0, finish=4):
    return InstanceRecord(
        op_id=op_id, iteration=iteration, pe=0,
        nominal_start=start, start=start, finish=finish,
    )


def _transfer(issued=0, completed=3):
    return TransferRecord(
        edge=(0, 1), iteration=1, kind=TransferKind.EDRAM,
        size_bytes=256, issued=issued, completed=completed,
    )


class TestUnitSinks:
    def test_null_sink_retains_nothing(self):
        sink = NullSink()
        sink.record_instance(_instance())
        sink.record_transfer(_transfer())
        assert sink.instances() == []
        assert sink.transfers() == []

    def test_in_memory_sink_retains_everything(self):
        sink = InMemorySink()
        for i in range(5):
            sink.record_instance(_instance(op_id=i))
        assert [r.op_id for r in sink.instances()] == [0, 1, 2, 3, 4]

    def test_ring_buffer_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.record_instance(_instance(op_id=i))
            sink.record_transfer(_transfer(issued=i, completed=i + 2))
        assert [r.op_id for r in sink.instances()] == [7, 8, 9]
        assert [t.issued for t in sink.transfers()] == [7, 8, 9]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBufferSink(capacity=0)

    def test_sampling_window_overlap_semantics(self):
        sink = SamplingWindowSink(windows=[(10, 20)])
        sink.record_instance(_instance(op_id=0, start=0, finish=10))   # abuts
        sink.record_instance(_instance(op_id=1, start=5, finish=11))   # overlaps
        sink.record_instance(_instance(op_id=2, start=19, finish=30))  # overlaps
        sink.record_instance(_instance(op_id=3, start=20, finish=25))  # after
        assert [r.op_id for r in sink.instances()] == [1, 2]

    def test_sampling_window_instantaneous_membership(self):
        sink = SamplingWindowSink(windows=[(10, 20)])
        sink.record_instance(_instance(op_id=0, start=10, finish=10))
        sink.record_instance(_instance(op_id=1, start=20, finish=20))
        assert [r.op_id for r in sink.instances()] == [0]

    def test_sampling_window_validates(self):
        with pytest.raises(ValueError, match="at least one"):
            SamplingWindowSink(windows=[])
        with pytest.raises(ValueError, match="empty window"):
            SamplingWindowSink(windows=[(5, 5)])

    def test_counting_sink_includes_fast_forwarded_work(self):
        sink = CountingSink()
        for _ in range(4):
            sink.record_instance(_instance())
        sink.record_transfer(_transfer())
        sink.on_fast_forward(FastForwardNotice(
            rounds=10, time_shift=100, iteration_shift=10,
            instances_skipped=40, transfers_skipped=30,
        ))
        assert sink.instances_emitted == 4
        assert sink.instances_total == 44
        assert sink.transfers_total == 31
        assert sink.fast_forwards == 1


@pytest.fixture(scope="module")
def flower_plan():
    config = PimConfig(num_pes=16)
    return config, ParaConv(config).run(synthetic_benchmark("flower"))


class TestExecutorIntegration:
    N = 1000

    def test_ring_buffer_bounds_memory_at_large_n(self, flower_plan):
        config, plan = flower_plan
        sink = RingBufferSink(capacity=64)
        trace = ScheduleExecutor(config, mode=SimMode.STEADY_STATE).execute(
            plan, iterations=self.N, sink=sink
        )
        # Aggregates count all work; the sink retains only the tail.
        assert trace.num_instances == plan.graph.num_vertices * self.N
        assert len(trace.records) <= 64
        assert len(trace.transfers) <= 64

    def test_counting_sink_matches_full_unroll_emission(self, flower_plan):
        config, plan = flower_plan
        counting = CountingSink()
        steady = ScheduleExecutor(config, mode=SimMode.STEADY_STATE).execute(
            plan, iterations=200, sink=counting
        )
        full = ScheduleExecutor(config, mode=SimMode.FULL_UNROLL).execute(
            plan, iterations=200, sink=InMemorySink()
        )
        assert counting.instances_total == len(full.records)
        assert counting.transfers_total == len(full.transfers)
        assert steady.num_instances == full.num_instances

    def test_window_sink_matches_full_trace_slice(self, flower_plan):
        """Window-sampled retention == windowed export of a full trace."""
        config, plan = flower_plan
        window = (plan.prologue_time, plan.prologue_time + 3 * plan.period)
        full = ScheduleExecutor(config).execute(
            plan, iterations=20, sink=InMemorySink()
        )
        sampled = ScheduleExecutor(config).execute(
            plan, iterations=20, sink=SamplingWindowSink([window])
        )
        begin, end = window

        def overlaps(start, finish):
            finish = finish if finish > start else start + 1
            return start < end and finish > begin

        assert sampled.records == [
            r for r in full.records if overlaps(r.start, r.finish)
        ]
        assert sampled.transfers == [
            t for t in full.transfers if overlaps(t.issued, t.completed)
        ]
        # And the exports agree: windowed export of the full trace ==
        # plain export of the window-sampled trace.
        assert trace_to_events(sampled) == trace_to_events(full, window=window)

    def test_windowed_export_rejects_empty_window(self, flower_plan):
        config, plan = flower_plan
        trace = ScheduleExecutor(config).execute(plan, iterations=2)
        with pytest.raises(ValueError, match="empty window"):
            trace_to_events(trace, window=(8, 8))
