"""Tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.sim.chrome_trace import trace_to_events, write_chrome_trace
from repro.sim.executor import ScheduleExecutor


@pytest.fixture(scope="module")
def trace():
    config = PimConfig(num_pes=8, iterations=100)
    result = ParaConv(config).run(synthetic_benchmark("cat"))
    return ScheduleExecutor(config, num_vaults=16).execute(result, iterations=4)


class TestTraceToEvents:
    def test_one_compute_event_per_instance(self, trace):
        events = trace_to_events(trace)
        compute = [e for e in events if e["cat"] == "compute"]
        assert len(compute) == len(trace.records)

    def test_event_schema(self, trace):
        for event in trace_to_events(trace):
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert isinstance(event["tid"], str)

    def test_unit_scaling(self, trace):
        base = trace_to_events(trace, unit_us=1.0)
        scaled = trace_to_events(trace, unit_us=10.0)
        compute_base = [e for e in base if e["cat"] == "compute"]
        compute_scaled = [e for e in scaled if e["cat"] == "compute"]
        assert compute_scaled[0]["ts"] == compute_base[0]["ts"] * 10

    def test_invalid_unit_rejected(self, trace):
        with pytest.raises(ValueError):
            trace_to_events(trace, unit_us=0)

    def test_transfer_rows_labelled(self, trace):
        events = trace_to_events(trace)
        rows = {e["tid"] for e in events if e["cat"] == "transfer"}
        assert rows <= {"cache-path", "eDRAM"}


class TestWriteChromeTrace:
    def test_file_is_loadable_json(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(trace, path)
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["otherData"]["iterations"] == trace.iterations
        assert len(payload["traceEvents"]) > 0
