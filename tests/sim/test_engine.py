"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, SimulationError


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        log = []
        queue.schedule(5, lambda: log.append("b"))
        queue.schedule(1, lambda: log.append("a"))
        queue.schedule(9, lambda: log.append("c"))
        queue.run()
        assert log == ["a", "b", "c"]
        assert queue.now == 9
        assert queue.processed == 3

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        log = []
        queue.schedule(3, lambda: log.append("low"), priority=5)
        queue.schedule(3, lambda: log.append("high"), priority=0)
        queue.run()
        assert log == ["high", "low"]

    def test_fifo_within_same_priority(self):
        queue = EventQueue()
        log = []
        for tag in ("first", "second", "third"):
            queue.schedule(1, lambda t=tag: log.append(t))
        queue.run()
        assert log == ["first", "second", "third"]

    def test_callbacks_can_schedule_more(self):
        queue = EventQueue()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                queue.schedule(queue.now + 1, lambda: chain(n + 1))

        queue.schedule(0, lambda: chain(0))
        queue.run()
        assert log == [0, 1, 2, 3]
        assert queue.now == 3

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(5, lambda: queue.schedule(1, lambda: None))
        with pytest.raises(SimulationError, match="cannot schedule"):
            queue.run()

    def test_run_until(self):
        queue = EventQueue()
        log = []
        queue.schedule(1, lambda: log.append(1))
        queue.schedule(10, lambda: log.append(10))
        queue.run(until=5)
        assert log == [1]
        assert len(queue) == 1

    def test_step_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_runaway_guard(self):
        queue = EventQueue()

        def forever():
            queue.schedule(queue.now, forever)

        queue.schedule(0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            queue.run(max_events=100)
