"""Tests for the discrete-event engine."""

import random

import pytest

from repro.sim.engine import EventQueue, SimulationError


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        log = []
        queue.schedule(5, lambda: log.append("b"))
        queue.schedule(1, lambda: log.append("a"))
        queue.schedule(9, lambda: log.append("c"))
        queue.run()
        assert log == ["a", "b", "c"]
        assert queue.now == 9
        assert queue.processed == 3

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        log = []
        queue.schedule(3, lambda: log.append("low"), priority=5)
        queue.schedule(3, lambda: log.append("high"), priority=0)
        queue.run()
        assert log == ["high", "low"]

    def test_fifo_within_same_priority(self):
        queue = EventQueue()
        log = []
        for tag in ("first", "second", "third"):
            queue.schedule(1, lambda t=tag: log.append(t))
        queue.run()
        assert log == ["first", "second", "third"]

    def test_callbacks_can_schedule_more(self):
        queue = EventQueue()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                queue.schedule(queue.now + 1, lambda: chain(n + 1))

        queue.schedule(0, lambda: chain(0))
        queue.run()
        assert log == [0, 1, 2, 3]
        assert queue.now == 3

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(5, lambda: queue.schedule(1, lambda: None))
        with pytest.raises(SimulationError, match="cannot schedule"):
            queue.run()

    def test_run_until(self):
        queue = EventQueue()
        log = []
        queue.schedule(1, lambda: log.append(1))
        queue.schedule(10, lambda: log.append(10))
        queue.run(until=5)
        assert log == [1]
        assert len(queue) == 1

    def test_step_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_runaway_guard(self):
        queue = EventQueue()

        def forever():
            queue.schedule(queue.now, forever)

        queue.schedule(0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            queue.run(max_events=100)


class TestDeterminism:
    """Tie-breaking must be a pure function of (time, priority, key, seq).

    The steady-state fast-forward rebuilds the pending heap with fresh
    sequence numbers, so keyed events must order identically no matter
    the insertion order; unkeyed events keep schedule-order FIFO.
    """

    @staticmethod
    def _run_schedule(entries):
        """Drain a queue built from (time, priority, key, label) tuples."""
        queue = EventQueue()
        log = []
        for time, priority, key, label in entries:
            queue.schedule(
                time,
                lambda lab=label: log.append(lab),
                priority=priority,
                key=key,
            )
        queue.run()
        return log

    def test_seeded_shuffles_processed_identically(self):
        # Keyed events: any insertion order yields the same processing
        # order, because (time, priority, key) is a total order here.
        entries = [
            (t, p, (t, p, k), f"e{t}.{p}.{k}")
            for t in range(5)
            for p in range(2)
            for k in range(3)
        ]
        reference = self._run_schedule(entries)
        for seed in range(10):
            shuffled = list(entries)
            random.Random(seed).shuffle(shuffled)
            assert self._run_schedule(shuffled) == reference

    def test_key_orders_same_time_same_priority(self):
        queue = EventQueue()
        log = []
        # Inserted in reverse key order on a shared timestamp/priority.
        for k in (3, 1, 2, 0):
            queue.schedule(7, lambda k=k: log.append(k), key=(k,))
        queue.run()
        assert log == [0, 1, 2, 3]

    def test_unkeyed_events_sort_before_keyed_and_stay_fifo(self):
        queue = EventQueue()
        log = []
        queue.schedule(1, lambda: log.append("keyed"), key=(0,))
        queue.schedule(1, lambda: log.append("plain-a"))
        queue.schedule(1, lambda: log.append("plain-b"))
        queue.run()
        # () < (0,): untagged events keep the legacy front-of-tie slot,
        # and FIFO among themselves.
        assert log == ["plain-a", "plain-b", "keyed"]

    def test_pending_events_snapshot_is_processing_order(self):
        queue = EventQueue()
        queue.schedule(9, lambda: None, key=(1,))
        queue.schedule(2, lambda: None, priority=1)
        queue.schedule(2, lambda: None, priority=0)
        snapshot = queue.pending_events()
        assert [(e.time, e.priority) for e in snapshot] == [
            (2, 0), (2, 1), (9, 0),
        ]
        assert len(queue) == 3  # snapshot does not consume

    def test_clear_pending_drains_in_processing_order(self):
        queue = EventQueue()
        queue.schedule(5, lambda: None, key=(2,), tag="late")
        queue.schedule(5, lambda: None, key=(1,), tag="early")
        drained = queue.clear_pending()
        assert [e.tag for e in drained] == ["early", "late"]
        assert not queue
        # Rebuilding (what the fast-forward splice does) preserves order
        # even though sequence numbers are fresh.
        for event in drained:
            queue.schedule(
                event.time, event.callback, priority=event.priority,
                key=event.key, tag=event.tag,
            )
        assert [e.tag for e in queue.pending_events()] == ["early", "late"]
