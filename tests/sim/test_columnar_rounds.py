"""Per-round equivalence of the columnar and object sim engines.

``python -m repro.verify --sim`` proves the engines agree on *aggregate*
signatures; this battery tightens the claim to every round boundary.
Both engines expose a ``round_probe`` hook that fires after each
simulated round with the monotone counter snapshot
(:class:`~repro.sim.executor._BoundarySnapshot`), so two runs are
per-round equivalent iff their probe streams compare equal. A seeded
property battery sweeps benchmarks, iteration counts, fault boundaries
and shard logical views; a divergence in any single round's counters —
even one that cancels out by the end of the run — fails the comparison.
"""

from __future__ import annotations

import random

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT, FaultModel
from repro.sim.executor import PeFaultError, ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


def round_stream(machine, plan, mode, iterations, fault_model=None):
    """Run one engine, recording every (round, snapshot) the probe sees.

    Returns ``(rounds, signature, fault)`` where ``signature`` is the
    aggregate signature (None if the run faulted) and ``fault`` is the
    raised fault's identifying tuple (None on a clean run).
    """
    rounds = []
    executor = ScheduleExecutor(
        machine,
        num_vaults=32,
        mode=mode,
        fault_model=fault_model,
        round_probe=lambda index, snapshot: rounds.append((index, snapshot)),
    )
    try:
        trace = executor.execute(
            plan, iterations=iterations, sink=NullSink()
        )
    except PeFaultError as exc:
        return rounds, None, (
            exc.unit, exc.unit_id, exc.round, exc.time, exc.fault_iteration
        )
    return rounds, trace.aggregate_signature(), None


def assert_round_equivalent(machine, plan, iterations, fault_model=None):
    """Both engine pairs must emit identical per-round probe streams."""
    full = round_stream(
        machine, plan, SimMode.FULL_UNROLL, iterations, fault_model
    )
    columnar = round_stream(
        machine, plan, SimMode.COLUMNAR, iterations, fault_model
    )
    assert columnar == full, (
        f"columnar/full per-round divergence on {plan.graph.name} "
        f"N={iterations}"
    )
    steady = round_stream(
        machine, plan, SimMode.STEADY_STATE, iterations, fault_model
    )
    columnar_steady = round_stream(
        machine, plan, SimMode.COLUMNAR_STEADY, iterations, fault_model
    )
    assert columnar_steady == steady, (
        f"columnar_steady/steady per-round divergence on "
        f"{plan.graph.name} N={iterations}"
    )
    return full


@pytest.fixture(scope="module")
def machine():
    return PimConfig(num_pes=16, iterations=100)


@pytest.fixture(scope="module")
def plans(machine):
    return {
        name: ParaConv(machine).run(synthetic_benchmark(name))
        for name in ("car", "cat", "image-compress")
    }


@pytest.mark.parametrize("name", ("car", "cat", "image-compress"))
@pytest.mark.parametrize("iterations", (1, 7, 40))
def test_per_round_counters_match(machine, plans, name, iterations):
    """Every round's cumulative counters agree, not just the final sums."""
    full = assert_round_equivalent(machine, plans[name], iterations)
    rounds, signature, fault = full
    assert fault is None
    assert signature is not None
    assert len(rounds) >= 1
    # The probe stream is per *simulated* round: strictly increasing
    # indices with monotone counters (the battery's own sanity check).
    indices = [index for index, _snapshot in rounds]
    assert indices == sorted(indices)
    for (_, earlier), (_, later) in zip(rounds, rounds[1:]):
        assert later.events_processed >= earlier.events_processed
        assert later.num_instances >= earlier.num_instances


def test_steady_probe_stops_at_fast_forward(machine, plans):
    """Steady engines only probe simulated rounds — the fast-forwarded
    tail produces no probe events, and both implementations agree on
    exactly which rounds were simulated."""
    full = round_stream(machine, plans["car"], SimMode.FULL_UNROLL, 60)
    steady = round_stream(machine, plans["car"], SimMode.STEADY_STATE, 60)
    columnar_steady = round_stream(
        machine, plans["car"], SimMode.COLUMNAR_STEADY, 60
    )
    assert columnar_steady == steady
    # Convergence means the steady engines simulate fewer rounds...
    assert len(steady[0]) < len(full[0])
    # ...and, up to the splice (probe indices are contiguous from 1
    # until the fast-forward jumps them), every simulated round matches
    # the full engine's round for round.
    pre_splice = [
        entry for position, entry in enumerate(steady[0])
        if entry[0] == position + 1
    ]
    assert 1 <= len(pre_splice) < len(steady[0])
    assert full[0][: len(pre_splice)] == pre_splice


class TestFaultBoundaries:
    """Per-round equality must hold right up to (and including) a fault."""

    @pytest.mark.parametrize("boundary", (0, 1, 3))
    def test_pe_fault_rounds_match(self, machine, plans, boundary):
        fault = FaultModel.single(FAULT_UNIT_PE, 0, boundary)
        full = assert_round_equivalent(
            machine, plans["cat"], 10, fault_model=fault
        )
        _rounds, signature, raised = full
        assert signature is None
        assert raised is not None and raised[0] == FAULT_UNIT_PE

    def test_vault_fault_rounds_match(self, machine, plans):
        # Vault faults only fire if a transfer touches the dead vault;
        # either way the engines must agree round for round.
        for vault_id in range(4):
            fault = FaultModel.single(FAULT_UNIT_VAULT, vault_id, 2)
            assert_round_equivalent(
                machine, plans["car"], 8, fault_model=fault
            )

    def test_fault_after_convergence_blocks_fast_forward(
        self, machine, plans
    ):
        """A fault beyond the convergence point must still fire: the
        splice is capped at the fault horizon in both engines."""
        fault = FaultModel.single(FAULT_UNIT_PE, 0, 50)
        steady = round_stream(
            machine, plans["car"], SimMode.STEADY_STATE, 60,
            fault_model=fault,
        )
        columnar_steady = round_stream(
            machine, plans["car"], SimMode.COLUMNAR_STEADY, 60,
            fault_model=fault,
        )
        assert columnar_steady == steady
        assert steady[2] is not None and steady[2][0] == FAULT_UNIT_PE


def test_shard_logical_views_match(machine):
    """Per-round equality holds on partitioned machines (PR 6 shard
    views recompile onto fewer PEs; the engines must agree there too)."""
    graph = synthetic_benchmark("flower")
    for shard in machine.split(2):
        plan = ParaConv(shard).run(graph)
        assert_round_equivalent(shard, plan, 12)


def test_degraded_machine_rounds_match(machine):
    """Same battery on the PR 5 degraded machine (highest PE dropped)."""
    degraded = machine.degraded([machine.num_pes - 1])
    plan = ParaConv(degraded).run(synthetic_benchmark("cat"))
    assert_round_equivalent(degraded, plan, 12)


SEEDED_TRIALS = 12


@pytest.mark.parametrize("seed", range(SEEDED_TRIALS))
def test_seeded_property_battery(seed):
    """Randomized sweep: benchmark x machine x N x optional fault.

    Each seed derives one configuration deterministically, so a failure
    reproduces by seed alone.
    """
    rng = random.Random(0xC01A + seed)
    name = rng.choice(
        ("car", "cat", "flower", "image-compress", "speech-1")
    )
    num_pes = rng.choice((4, 8, 16))
    iterations = rng.choice((1, 2, 5, 9, 17))
    machine = PimConfig(num_pes=num_pes, iterations=100)
    plan = ParaConv(machine).run(synthetic_benchmark(name))
    fault_model = None
    if rng.random() < 0.5:
        unit = rng.choice((FAULT_UNIT_PE, FAULT_UNIT_VAULT))
        unit_id = rng.randrange(num_pes if unit == FAULT_UNIT_PE else 32)
        fault_model = FaultModel.single(
            unit, unit_id, rng.randrange(0, iterations + 2)
        )
    assert_round_equivalent(machine, plan, iterations, fault_model)
