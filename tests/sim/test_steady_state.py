"""Tests for the steady-state engine: convergence, fast-forward, fidelity.

The contract under test: for any plan and any ``N``, the steady-state
engine's aggregate signature equals the full unroll's exactly, and when
the machine's round-boundary fingerprint recurs the engine skips the
converged rounds in O(1) while reporting what it skipped.
"""

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor, simulate_sparta
from repro.sim.modes import SimMode
from repro.sim.sinks import CountingSink, NullSink
from repro.core.baseline import SpartaScheduler


@pytest.fixture(scope="module")
def machine():
    return PimConfig(num_pes=16)


@pytest.fixture(scope="module")
def plans(machine):
    return {
        name: ParaConv(machine).run(synthetic_benchmark(name))
        for name in ("cat", "flower", "car")
    }


def _signatures(machine, plan, iterations):
    full = ScheduleExecutor(machine, mode=SimMode.FULL_UNROLL).execute(
        plan, iterations=iterations, sink=NullSink()
    )
    steady = ScheduleExecutor(machine, mode=SimMode.STEADY_STATE).execute(
        plan, iterations=iterations, sink=NullSink()
    )
    return full, steady


class TestSimModes:
    def test_from_name_aliases(self):
        assert SimMode.from_name("full") is SimMode.FULL_UNROLL
        assert SimMode.from_name("steady") is SimMode.STEADY_STATE
        assert SimMode.from_name(SimMode.STEADY_STATE) is SimMode.STEADY_STATE
        with pytest.raises(ValueError, match="unknown"):
            SimMode.from_name("warp-speed")


class TestAggregateEquivalence:
    @pytest.mark.parametrize("iterations", [1, 20, 300])
    @pytest.mark.parametrize("name", ["cat", "flower", "car"])
    def test_signatures_match_full_unroll(self, machine, plans, name, iterations):
        full, steady = _signatures(machine, plans[name], iterations)
        assert steady.aggregate_signature() == full.aggregate_signature()

    def test_realized_makespan_identical(self, machine, plans):
        full, steady = _signatures(machine, plans["flower"], 500)
        assert steady.realized_makespan == full.realized_makespan
        assert steady.max_lateness == full.max_lateness

    def test_greedy_allocator_plans_equivalent(self, machine):
        plan = ParaConv(machine, allocator_name="greedy").run(
            synthetic_benchmark("flower")
        )
        full, steady = _signatures(machine, plan, 200)
        assert steady.aggregate_signature() == full.aggregate_signature()


class TestConvergenceObservability:
    def test_fast_forward_engages_on_periodic_workload(self, machine, plans):
        _, steady = _signatures(machine, plans["flower"], 1000)
        assert steady.converged_round is not None
        assert steady.converged_period is not None
        assert steady.converged_period >= 1
        assert steady.rounds_fast_forwarded > 0
        assert steady.steady_fingerprint is not None
        # Simulated + skipped covers the whole horizon.
        full, _ = _signatures(machine, plans["flower"], 1)
        assert steady.rounds_simulated + steady.rounds_fast_forwarded > 900

    def test_full_unroll_reports_no_convergence(self, machine, plans):
        full, _ = _signatures(machine, plans["flower"], 100)
        assert full.converged_round is None
        assert full.converged_period is None
        assert full.rounds_fast_forwarded == 0

    def test_short_horizon_never_fast_forwards(self, machine, plans):
        plan = plans["cat"]
        steady = ScheduleExecutor(machine, mode=SimMode.STEADY_STATE).execute(
            plan, iterations=2, sink=NullSink()
        )
        assert steady.rounds_fast_forwarded == 0

    def test_counting_sink_sees_the_splice(self, machine, plans):
        sink = CountingSink()
        ScheduleExecutor(machine, mode=SimMode.STEADY_STATE).execute(
            plans["flower"], iterations=1000, sink=sink
        )
        assert sink.fast_forwards >= 1
        assert sink.instances_skipped > 0
        # All work accounted for: emitted + skipped == V * N.
        graph = plans["flower"].graph
        assert sink.instances_total == graph.num_vertices * 1000

    def test_detector_knobs_validated(self, machine):
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            ScheduleExecutor(machine, steady_max_period=0)
        with pytest.raises(SimulationError):
            ScheduleExecutor(machine, steady_confirm_budget=0)


class TestSpartaSteady:
    def test_sparta_steady_matches_full(self, machine):
        graph = synthetic_benchmark("cat")
        baseline = SpartaScheduler(machine).run(graph)
        full = simulate_sparta(
            baseline, iterations=50, mode=SimMode.FULL_UNROLL
        )
        steady = simulate_sparta(
            baseline, iterations=50, mode=SimMode.STEADY_STATE
        )
        assert steady.realized_makespan == full.realized_makespan
        assert steady.stats.as_dict() == full.stats.as_dict()
        assert steady.converged_round == 1
        assert steady.converged_period == 1
