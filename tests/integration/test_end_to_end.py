"""Cross-module integration tests.

These tie the whole stack together: the paper's own motivational example,
the retimed-schedule-vs-unrolled-DAG equivalence check, a real GoogLeNet
partition through the full pipeline, and a machine-validated execution.
"""


import pytest

from repro.cnn.googlenet import googlenet_prefix
from repro.cnn.partition import partition_network
from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.core.schedule import validate_periodic_schedule
from repro.graph.instances import unroll
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor


class TestMotivationalExample:
    """Paper Section 2.3 / Figure 3: the five-operation graph on 4 PEs."""

    @pytest.fixture
    def machine(self):
        # four PEs; each PE's cache holds one small intermediate result
        return PimConfig(
            num_pes=4,
            cache_bytes_per_pe=512,
            cache_slot_bytes=512,
            iterations=100,
        )

    def test_cache_holds_four_results(self, machine):
        assert machine.total_cache_slots == 4

    def test_compacted_kernel_uses_retiming(self, figure2_graph, machine):
        result = ParaConv(machine).run_at_width(figure2_graph, 4)
        # five unit ops on 4 PEs: kernel of ceil(5/4) = 2 units
        assert result.period == 2
        # compaction is impossible without a prologue
        assert result.max_retiming >= 1
        validate_periodic_schedule(result.schedule)

    def test_cache_capacity_limits_allocation(self, figure2_graph, machine):
        result = ParaConv(machine).run_at_width(figure2_graph, 4)
        assert result.allocation.slots_used <= 4

    def test_beats_naive_mapping(self, figure2_graph, machine):
        para = ParaConv(machine).run(figure2_graph)
        sparta = SpartaScheduler(machine).run(figure2_graph)
        assert para.total_time() <= sparta.total_time()


class TestUnrolledEquivalence:
    """The retimed schedule must realize exactly the unrolled dependencies."""

    @pytest.mark.parametrize("name", ["cat", "flower", "character-1"])
    def test_schedule_satisfies_every_unrolled_dependency(self, name):
        config = PimConfig(num_pes=16, iterations=100)
        graph = synthetic_benchmark(name)
        result = ParaConv(config).run(graph)
        schedule = result.schedule
        period = schedule.period
        r_max = schedule.max_retiming
        iterations = 6

        def absolute_start(op_id, iteration):
            round_index = iteration + r_max - schedule.retiming[op_id]
            return (round_index - 1) * period + schedule.kernel.start(op_id)

        def absolute_finish(op_id, iteration):
            op = graph.operation(op_id)
            return absolute_start(op_id, iteration) + op.execution_time

        _, edges = unroll(
            graph,
            iterations,
            relative_retiming={
                e.key: schedule.relative_retiming(e.producer, e.consumer)
                for e in graph.edges()
            },
        )
        # The unroll helper connects producer iteration l to consumer
        # iteration l + delta; in schedule terms both run in the same
        # round, delta*p apart. Every dependency must be met with the
        # edge's transfer latency.
        for producer, consumer in edges:
            key = (producer.op_id, consumer.op_id)
            transfer = schedule.transfer_times[key]
            assert (
                absolute_finish(producer.op_id, producer.iteration) + transfer
                <= absolute_start(consumer.op_id, consumer.iteration)
            ), f"dependency {producer} -> {consumer} violated"


class TestGoogLeNetPipeline:
    def test_partitioned_network_schedules(self):
        graph = partition_network(googlenet_prefix(2))
        config = PimConfig(num_pes=32, iterations=100)
        result = ParaConv(config).run(graph)
        validate_periodic_schedule(result.schedule)
        sparta = SpartaScheduler(config).run(graph)
        assert result.total_time() < sparta.total_time()

    def test_full_googlenet_beats_baseline_on_64_pes(self):
        from repro.cnn.workloads import load_workload

        graph = load_workload("googlenet")
        config = PimConfig(num_pes=64, iterations=100)
        para = ParaConv(config).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        assert para.total_time() < sparta.total_time()
        validate_periodic_schedule(para.schedule)


class TestExecutionOnMachine:
    def test_schedule_executes_exactly_as_predicted(self):
        config = PimConfig(num_pes=16, iterations=100)
        graph = synthetic_benchmark("character-2")
        result = ParaConv(config).run(graph)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=12
        )
        assert trace.slowdown == pytest.approx(1.0, abs=0.02)
        expected = graph.num_vertices * 12
        assert len(trace.records) == expected

    def test_offchip_traffic_matches_placement_census(self):
        config = PimConfig(num_pes=16, iterations=100)
        graph = synthetic_benchmark("cat")
        result = ParaConv(config).run(graph)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=10
        )
        # per-iteration eDRAM bytes from the trace must be at least the
        # analytic census (spills add, never subtract)
        analytic = result.offchip_bytes_per_iteration() * 10
        assert trace.stats.edram_bytes >= analytic


class TestSerializationRoundTripThroughPipeline:
    def test_saved_graph_produces_identical_schedule(self, tmp_path):
        from repro.graph.io import graph_from_json, graph_to_json

        config = PimConfig(num_pes=8, iterations=100)
        graph = synthetic_benchmark("car")
        path = tmp_path / "car.json"
        graph_to_json(graph, path)
        restored = graph_from_json(path)
        a = ParaConv(config).run(graph)
        b = ParaConv(config).run(restored)
        assert a.total_time() == b.total_time()
        assert a.max_retiming == b.max_retiming
        assert a.schedule.retiming == b.schedule.retiming
