"""Extension regression sweep: iterative and liveness modes on all benchmarks.

The full-set counterpart of the per-extension unit tests: every paper
benchmark, both extension modes, all invariants. Guards against an
extension regressing on workloads its unit tests do not sample.
"""

import pytest

from repro.core.paraconv import ParaConv
from repro.core.schedule import validate_periodic_schedule
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.pim.config import PimConfig

CONFIG = PimConfig(num_pes=32, iterations=200)


@pytest.fixture(scope="module")
def graphs():
    return {name: synthetic_benchmark(name) for name in BENCHMARK_SIZES}


class TestIterativeAllocatorSweep:
    @pytest.fixture(scope="class")
    def results(self, graphs):
        dp = {}
        iterative = {}
        for name, graph in graphs.items():
            dp[name] = ParaConv(CONFIG).run_at_width(graph, 32)
            iterative[name] = ParaConv(
                CONFIG, allocator_name="iterative"
            ).run_at_width(graph, 32)
        return dp, iterative

    def test_schedules_valid_everywhere(self, results):
        _, iterative = results
        for result in iterative.values():
            validate_periodic_schedule(result.schedule)

    def test_never_deeper_prologue_than_dp(self, results):
        dp, iterative = results
        for name in dp:
            assert iterative[name].max_retiming <= dp[name].max_retiming, name

    def test_strictly_better_somewhere(self, results):
        dp, iterative = results
        wins = sum(
            1 for name in dp
            if iterative[name].max_retiming < dp[name].max_retiming
        )
        assert wins >= 3  # the optimality gap is not an isolated case

    def test_capacity_respected_everywhere(self, results):
        _, iterative = results
        for result in iterative.values():
            assert result.allocation.slots_used <= CONFIG.total_cache_slots


class TestLivenessModeSweep:
    @pytest.fixture(scope="class")
    def results(self, graphs):
        plain = {}
        aware = {}
        for name, graph in graphs.items():
            plain[name] = ParaConv(CONFIG).run(graph)
            aware[name] = ParaConv(CONFIG, liveness_aware=True).run(graph)
        return plain, aware

    def test_schedules_valid_everywhere(self, results):
        _, aware = results
        for result in aware.values():
            validate_periodic_schedule(result.schedule)

    def test_total_time_never_much_worse(self, results):
        plain, aware = results
        for name in plain:
            assert aware[name].total_time() <= plain[name].total_time() * 1.10, name

    def test_weighted_occupancy_within_capacity(self, results):
        """The re-weighted allocation bounds realized peak occupancy.

        The two-pass scheme re-weights with the *first* pass's realized
        deltas; the second allocation can shift retimings slightly, so a
        small residual overshoot is tolerated (documented approximation in
        docs/architecture.md -- the simulator-level guarantee of zero
        spills is asserted in tests/core/test_liveness.py).
        """
        _, aware = results
        for name, result in aware.items():
            per_group = CONFIG.total_cache_slots // result.num_groups
            weighted = 0
            for key in result.allocation.cached:
                edge = result.graph.edge(*key)
                delta = result.schedule.relative_retiming(*key)
                weighted += CONFIG.slots_required(edge.size_bytes) * (delta + 1)
            assert weighted <= per_group * 1.10 + 2, name
