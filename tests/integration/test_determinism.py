"""Determinism: identical inputs must produce bit-identical results.

Every published number in EXPERIMENTS.md and the golden artifacts depends
on this; a hidden source of nondeterminism (set iteration, unseeded RNG,
hash randomization) would make the reproduction unreproducible.
"""

import pytest

from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.core.schedule_io import schedule_to_dict
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig


@pytest.mark.parametrize("name", ["cat", "character-2", "protein"])
class TestParaConvDeterminism:
    def test_identical_schedules_across_runs(self, name):
        config = PimConfig(num_pes=32, iterations=200)
        graph = synthetic_benchmark(name)
        a = ParaConv(config).run(graph)
        b = ParaConv(config).run(graph)
        assert schedule_to_dict(a.schedule) == schedule_to_dict(b.schedule)
        assert a.total_time() == b.total_time()
        assert a.group_width == b.group_width

    def test_graph_rebuild_does_not_matter(self, name):
        config = PimConfig(num_pes=32, iterations=200)
        a = ParaConv(config).run(synthetic_benchmark(name))
        b = ParaConv(config).run(synthetic_benchmark(name))
        assert a.schedule.retiming == b.schedule.retiming
        assert a.allocation.cached == b.allocation.cached


class TestSpartaDeterminism:
    @pytest.mark.parametrize("name", ["flower", "speech-1"])
    def test_identical_results_across_runs(self, name):
        config = PimConfig(num_pes=32, iterations=200)
        graph = synthetic_benchmark(name)
        a = SpartaScheduler(config).run(graph)
        b = SpartaScheduler(config).run(graph)
        assert a.total_time() == b.total_time()
        assert a.placements == b.placements
        assert a.kernel.placements == b.kernel.placements

    def test_noise_is_seeded(self):
        config = PimConfig(num_pes=16, iterations=200)
        graph = synthetic_benchmark("flower")
        a = SpartaScheduler(config, sensor_noise=0.3, seed=9).run(graph)
        b = SpartaScheduler(config, sensor_noise=0.3, seed=9).run(graph)
        assert a.total_time() == b.total_time()


class TestAmortization:
    def test_throughput_improves_with_horizon(self):
        """The prologue amortizes: longer runs approach 1/p per group."""
        config = PimConfig(num_pes=16, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("character-1"))
        short = result.throughput(10)
        long = result.throughput(10_000)
        assert long > short
        ideal = result.num_groups / result.period
        assert long == pytest.approx(ideal, rel=0.01)
