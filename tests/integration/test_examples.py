"""Smoke tests: every shipped example must run and produce sane output."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "cat", "8")
        assert "Para-CONV on 'cat'" in out
        assert "Reduction" in out
        assert "SPARTA" in out

    def test_googlenet_pim(self):
        out = run_example("googlenet_pim.py")
        assert "Partitioned task graph" in out
        assert "64" in out

    def test_synthetic_scaling(self):
        out = run_example("synthetic_scaling.py", "16")
        assert "1024" in out
        assert "R_max" in out

    def test_allocation_ablation(self):
        out = run_example("allocation_ablation.py", "shortest-path", "16")
        assert "iterative" in out
        assert "oracle" in out

    def test_custom_machine_simulation(self):
        out = run_example("custom_machine_simulation.py")
        assert "slowdown" in out
        assert "PE utilization" in out

    def test_liveness_study(self):
        out = run_example("liveness_study.py", "16")
        assert "liveness" in out
        assert "spills" in out

    def test_deploy_schedule(self):
        out = run_example("deploy_schedule.py", "cat", "8")
        assert "Serialized schedule" in out
        assert "Verified expansion" in out
        assert "slowdown" in out
