"""Full paper-sweep regression: all 12 benchmarks x 3 PE counts.

This is the repository's strongest regression net: it pins the qualitative
conclusions of every evaluation artifact on the complete workload set, so
any model change that flips a conclusion fails loudly.
"""

import math

import pytest

from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.core.schedule import validate_periodic_schedule
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.pim.config import PAPER_PE_SWEEP, PimConfig


@pytest.fixture(scope="module")
def sweep():
    """(benchmark, pes) -> (ParaConvResult, SpartaResult) for the full grid."""
    results = {}
    for name in BENCHMARK_SIZES:
        graph = synthetic_benchmark(name)
        for pes in PAPER_PE_SWEEP:
            config = PimConfig(num_pes=pes)
            results[(name, pes)] = (
                ParaConv(config).run(graph),
                SpartaScheduler(config).run(graph),
            )
    return results


class TestHeadlineClaims:
    def test_paraconv_wins_every_cell(self, sweep):
        for (name, pes), (para, sparta) in sweep.items():
            assert para.total_time() < sparta.total_time(), (name, pes)

    def test_average_reduction_in_paper_band(self, sweep):
        reductions = [
            (s.total_time() - p.total_time()) / s.total_time() * 100
            for p, s in sweep.values()
        ]
        average = sum(reductions) / len(reductions)
        # paper: 53.42% -- accept a +-10-point band
        assert 43.0 <= average <= 63.0

    def test_speedup_roughly_2x(self, sweep):
        speedups = [
            s.total_time() / p.total_time() for p, s in sweep.values()
        ]
        geo = math.prod(speedups) ** (1 / len(speedups))
        # paper: 1.87x throughput acceleration
        assert 1.5 <= geo <= 3.0


class TestScalingClaims:
    def test_both_schemes_accelerate_with_pes(self, sweep):
        for name in BENCHMARK_SIZES:
            para16, sparta16 = sweep[(name, 16)]
            para64, sparta64 = sweep[(name, 64)]
            assert para64.total_time() < para16.total_time()
            assert sparta64.total_time() < sparta16.total_time()

    def test_four_x_pes_buys_at_least_2x(self, sweep):
        for name in BENCHMARK_SIZES:
            para16, _ = sweep[(name, 16)]
            para64, _ = sweep[(name, 64)]
            assert para16.total_time() / para64.total_time() >= 2.0, name


class TestStructuralInvariants:
    def test_all_schedules_semantically_valid(self, sweep):
        for (name, pes), (para, _sparta) in sweep.items():
            validate_periodic_schedule(para.schedule)

    def test_prologue_negligible_everywhere(self, sweep):
        for (name, pes), (para, _) in sweep.items():
            share = para.prologue_time / para.total_time()
            assert share < 0.25, (name, pes, share)

    def test_cache_never_overcommitted(self, sweep):
        for (name, pes), (para, _) in sweep.items():
            config = para.config
            per_group = config.total_cache_slots // para.num_groups
            assert para.allocation.slots_used <= per_group

    def test_offchip_traffic_bounded_by_footprint(self, sweep):
        for (name, pes), (para, _) in sweep.items():
            total = para.graph.total_intermediate_bytes()
            assert 0 <= para.offchip_bytes_per_iteration() <= total
