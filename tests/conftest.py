"""Shared fixtures: small graphs, machine configs, and the paper's example."""

from __future__ import annotations

import pytest

from repro.graph.taskgraph import OperationKind, TaskGraph
from repro.pim.config import PimConfig


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """T0 -> {T1, T2} -> T3: the smallest branch-and-merge graph."""
    graph = TaskGraph(name="diamond")
    graph.add_op(0, execution_time=1)
    graph.add_op(1, execution_time=2)
    graph.add_op(2, execution_time=2)
    graph.add_op(3, execution_time=1)
    graph.connect(0, 1, size_bytes=1024)
    graph.connect(0, 2, size_bytes=1024)
    graph.connect(1, 3, size_bytes=2048)
    graph.connect(2, 3, size_bytes=2048)
    graph.validate()
    return graph


@pytest.fixture
def figure2_graph() -> TaskGraph:
    """The paper's Figure 2(b)/Figure 3 example: five operations.

    T1 feeds T2 and T3; T2 feeds T4 and T5; T3 feeds T4 and T5. Vertex
    ids are zero-based (T1 -> op 0, ...), unit execution times, and small
    intermediate results so they each fit one cache slot.
    """
    graph = TaskGraph(name="figure2")
    for op_id in range(5):
        graph.add_op(op_id, execution_time=1, kind=OperationKind.CONV)
    for producer, consumer in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4)]:
        graph.connect(producer, consumer, size_bytes=512)
    graph.validate()
    return graph


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 6-stage pipeline with mixed execution times."""
    from repro.graph.taskgraph import linear_chain

    return linear_chain([1, 2, 3, 1, 2, 1], name="chain6", size_bytes=1024)


@pytest.fixture
def small_config() -> PimConfig:
    """A 4-PE machine with a tiny cache (forces allocation pressure)."""
    return PimConfig(
        num_pes=4,
        cache_bytes_per_pe=1024,
        cache_slot_bytes=512,
        iterations=100,
    )


@pytest.fixture
def paper_config() -> PimConfig:
    """The default Neurocube-style machine at 32 PEs."""
    return PimConfig(num_pes=32)
