"""Live rewiring at the session and server tiers.

The contract under test: a graph swap is the failover recompile path
with a non-fault trigger — queued requests are served on the old plan
(``drain``) or atomically carried onto the new one (``reroute``),
nothing is dropped, repeat swaps are warm cache lookups, and an illegal
replacement graph leaves the old plan serving.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.graph.taskgraph import GraphValidationError, TaskGraph
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import REWIRE_CUT_POINTS, BatchingServer
from repro.runtime.session import InferenceSession

from .conftest import tiny_graph


def _cyclic_graph() -> TaskGraph:
    graph = TaskGraph(name="bad")
    graph.add_op(0)
    graph.add_op(1)
    graph.connect(0, 1)
    graph.connect(1, 0)
    return graph


class TestSessionSwapGraph:
    def test_swap_compiles_the_new_graph(self, config, graph, other_graph):
        session = InferenceSession(graph, config)
        session.run(4)
        plan = session.swap_graph(other_graph)
        assert session.graph is other_graph
        assert plan is session.plan
        assert plan.graph.fingerprint() == other_graph.fingerprint()

    def test_swap_counters(self, config, graph, other_graph):
        session = InferenceSession(graph, config)
        session.run(4)
        session.swap_graph(other_graph)
        assert session.graph_swaps == 1
        assert session.swap_recompiles == 1  # cold: a real compile

    def test_repeat_swap_is_warm(self, config, graph, other_graph):
        session = InferenceSession(graph, config, cache=PlanCache())
        session.run(4)
        session.swap_graph(other_graph)
        compilations = session.compilations
        # Bounce back and forth: both plans are now cached.
        session.swap_graph(graph)
        session.swap_graph(other_graph)
        assert session.graph_swaps == 3
        assert session.swap_recompiles == 1
        assert session.compilations == compilations

    def test_invalid_graph_leaves_old_plan_serving(self, config, graph):
        session = InferenceSession(graph, config)
        session.run(4)
        old_plan = session.plan
        with pytest.raises(GraphValidationError):
            session.swap_graph(_cyclic_graph())
        # Validation failed before teardown: still serving the old plan.
        assert session.graph is graph
        assert session.is_compiled
        assert session.plan is old_plan
        assert session.graph_swaps == 0
        session.run(2)  # and it still runs


class TestServerRewire:
    def test_bad_cut_point_rejected(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        with pytest.raises(ValueError, match="cut_point"):
            server.rewire("cat", tiny_graph(), cut_point="big-bang")
        assert REWIRE_CUT_POINTS == ("drain", "reroute")

    def test_drain_serves_queued_on_old_plan(self, config):
        server = BatchingServer(
            config, graph_loader=synthetic_benchmark, batch_window=4
        )
        server.submit("cat")
        server.drain()  # warm the old plan
        old_plan = server.sessions()["cat"].plan
        for _ in range(6):
            server.submit("cat")
        result = server.rewire("cat", tiny_graph("cat-v2"))
        assert result.cut_point == "drain"
        assert result.drained_requests == 6
        assert result.rerouted == 0
        assert result.old_period == old_plan.period
        # Drained batches ran on the old plan: batch_window=4 splits the
        # six requests 4+2, and each request's simulated latency is the
        # old plan's completion prefix at its position in the batch.
        assert [r.sim_latency for r in result.drained] == [
            old_plan.total_time(k) for k in (1, 2, 3, 4, 1, 2)
        ]
        assert server.queue_depth == 0

    def test_reroute_carries_queue_onto_new_plan(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        server.submit("cat")
        server.drain()
        for _ in range(5):
            server.submit("cat")
        result = server.rewire("cat", tiny_graph("cat-v2"), cut_point="reroute")
        assert result.drained_requests == 0
        assert result.rerouted == 5
        assert server.queue_depth == 5
        new_plan = server.sessions()["cat"].plan
        assert new_plan.period == result.new_period
        served = server.drain()
        assert len(served) == 5
        # Served on the new plan after the swap: simulated latencies are
        # the new plan's completion prefix (one batch of five).
        assert [r.sim_latency for r in served] == [
            new_plan.total_time(k) for k in (1, 2, 3, 4, 5)
        ]

    def test_other_workloads_undisturbed(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        server.submit("car")
        server.submit("cat")
        server.submit("car")
        result = server.rewire("cat", tiny_graph("cat-v2"))
        assert result.drained_requests == 1
        bystanders = server.queued_requests()
        assert [r.workload for r in bystanders] == ["car", "car"]
        # FIFO order among bystanders survived the targeted drain sweep.
        assert [r.request_id for r in bystanders] == sorted(
            r.request_id for r in bystanders
        )

    def test_repeat_rewire_is_warm(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        server.submit("cat")
        server.drain()
        v2 = tiny_graph("cat-v2")
        first = server.rewire("cat", v2)
        assert first.recompiled
        back = server.rewire("cat", synthetic_benchmark("cat"))
        again = server.rewire("cat", v2)
        assert not back.recompiled
        assert not again.recompiled

    def test_override_applies_to_future_sessions(self, config):
        cache = PlanCache()
        server = BatchingServer(
            config, cache=cache, graph_loader=synthetic_benchmark
        )
        server.submit("cat")
        server.drain()
        v2 = tiny_graph("cat-v2")
        server.rewire("cat", v2)
        # A "restarted" server sharing the cache and override map: its
        # first session for the name must compile (warm-hit) the new graph.
        restarted = BatchingServer(
            config, cache=cache, graph_loader=synthetic_benchmark
        )
        restarted.set_graph_override("cat", v2)
        restarted.submit("cat")
        restarted.drain()
        session = restarted.sessions()["cat"]
        assert session.plan.graph.fingerprint() == v2.fingerprint()
        assert session.compilations == 0  # warm from the shared cache

    def test_invalid_graph_never_installs_override(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        server.submit("cat")
        server.drain()
        with pytest.raises(GraphValidationError):
            server.rewire("cat", _cyclic_graph())
        with pytest.raises(GraphValidationError):
            server.set_graph_override("cat", _cyclic_graph())
        # Old plan still serving, loader state untouched.
        server.submit("cat")
        assert len(server.drain()) == 1

    def test_accounting_closes_across_rewire(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        for _ in range(7):
            server.submit("cat")
        server.submit("car")
        result = server.rewire("cat", tiny_graph("cat-v2"), cut_point="reroute")
        served = len(server.drain())
        snap = server.metrics.snapshot()["counters"]
        assert snap["requests_accepted"] == 8
        assert snap["requests_served"] == 8
        assert result.rerouted == 7
        assert server.queue_depth == 0


class TestRewireShedRace:
    """A deadline shed (``remove_queued``) racing a rewire on one queue.

    Whatever interleaving wins, the books must close exactly:
    accepted == served + shed + queued, and the rewire only sees the
    requests the shed left behind.
    """

    def test_shed_then_rewire_accounts_exactly(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        requests = [server.submit("cat") for _ in range(8)]
        shed_ids = {r.request_id for r in requests[:3]}
        shed = server.remove_queued(
            lambda request: request.request_id in shed_ids
        )
        assert len(shed) == 3
        result = server.rewire("cat", tiny_graph("cat-v2"), cut_point="reroute")
        assert result.rerouted == 5  # the shed requests are gone
        served = server.drain()
        assert len(served) == 5
        snap = server.metrics.snapshot()["counters"]
        assert snap["requests_accepted"] == len(served) + len(shed)
        assert {r.request.request_id for r in served}.isdisjoint(shed_ids)

    def test_rewire_drain_then_shed_finds_nothing(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        for _ in range(4):
            server.submit("cat")
        result = server.rewire("cat", tiny_graph("cat-v2"))  # drain
        shed = server.remove_queued(lambda request: request.workload == "cat")
        assert result.drained_requests == 4
        assert shed == []
        assert server.queue_depth == 0

    def test_shed_after_reroute_still_exact(self, config):
        server = BatchingServer(config, graph_loader=synthetic_benchmark)
        for _ in range(6):
            server.submit("cat")
        server.rewire("cat", tiny_graph("cat-v2"), cut_point="reroute")
        shed = server.remove_queued()  # shed everything still queued
        assert len(shed) == 6
        assert server.queue_depth == 0
        # Per-workload accounting went back to zero: a fresh submit and
        # drain serves exactly one request on the new plan.
        server.submit("cat")
        served = server.drain()
        assert len(served) == 1
