"""CLI surfaces: ``python -m repro.runtime`` and ``python -m repro`` validation."""

from __future__ import annotations

import json

import pytest

import repro.__main__ as top_cli
import repro.runtime.__main__ as runtime_cli


class TestRuntimeCli:
    def test_bench_prints_percentiles_and_throughput(self, capsys):
        rc = runtime_cli.main(
            ["bench", "cat", "--requests", "6", "--pes", "16", "--window", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "p50=" in out and "p95=" in out and "p99=" in out
        assert "throughput" in out
        assert "plan cache" in out

    def test_bench_json_report(self, capsys):
        rc = runtime_cli.main(
            ["bench", "cat", "--requests", "4", "--pes", "16", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 4
        assert {"p50", "p95", "p99"} <= set(payload["sim_latency_units"])
        assert payload["plan_cache"]["misses"] == 1

    def test_bench_overload_rejects_and_recovers(self, capsys):
        rc = runtime_cli.main(
            ["bench", "cat", "--requests", "9", "--pes", "16",
             "--queue", "2", "--window", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "served 9 requests" in out
        assert "transiently rejected" in out

    def test_bench_unknown_workload(self, capsys):
        rc = runtime_cli.main(["bench", "definitely-not-a-workload"])
        assert rc == 2
        assert "known" in capsys.readouterr().err

    def test_warmup_and_stats_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "plans")
        rc = runtime_cli.main(
            ["warmup", "--workloads", "cat", "car", "--pes", "16",
             "--disk", store, "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "warmed 2 workloads" in out
        rc = runtime_cli.main(["stats", "--disk", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 plans" in out
        assert "cat" in out and "car" in out

    def test_warmup_rejects_unknown_workload(self, capsys):
        rc = runtime_cli.main(["warmup", "--workloads", "nope"])
        assert rc == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_stats_missing_store(self, tmp_path, capsys):
        rc = runtime_cli.main(["stats", "--disk", str(tmp_path / "absent")])
        assert rc == 2

    def test_bench_uses_disk_store_warm_start(self, tmp_path, capsys):
        store = str(tmp_path / "plans")
        assert runtime_cli.main(
            ["warmup", "--workloads", "cat", "--pes", "16", "--disk", store]
        ) == 0
        capsys.readouterr()
        rc = runtime_cli.main(
            ["bench", "cat", "--requests", "2", "--pes", "16",
             "--disk", store, "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan_cache"]["disk_hits"] == 1  # no recompilation

    @pytest.mark.parametrize("flag", ["--pes", "--requests", "--queue", "--window"])
    def test_positive_int_validation(self, flag, capsys):
        with pytest.raises(SystemExit) as err:
            runtime_cli.main(["bench", "cat", flag, "0"])
        assert err.value.code == 2
        assert "must be > 0" in capsys.readouterr().err


class TestTopLevelCliValidation:
    @pytest.mark.parametrize("argv", [
        ["cat", "--pes", "0"],
        ["cat", "--pes", "-3"],
        ["cat", "--iterations", "0"],
        ["cat", "--pes", "notanint"],
    ])
    def test_nonpositive_machine_args_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as err:
            top_cli.main(argv)
        assert err.value.code == 2
        assert capsys.readouterr().err  # argparse error, not a traceback

    def test_unknown_allocator_lists_registry(self, capsys):
        from repro.core.allocation import ALLOCATORS

        with pytest.raises(SystemExit) as err:
            top_cli.main(["cat", "--allocator", "bogus"])
        assert err.value.code == 2
        message = capsys.readouterr().err
        for name in ALLOCATORS:
            assert name in message

    def test_valid_run_still_works(self, capsys):
        rc = top_cli.main(["cat", "--pes", "16", "--iterations", "10"])
        assert rc == 0
        assert "Para-CONV on 'cat'" in capsys.readouterr().out
