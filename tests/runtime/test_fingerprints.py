"""Canonical serialization + fingerprints for PimConfig and TaskGraph."""

from __future__ import annotations

import pytest

from repro.graph.taskgraph import TaskGraph, linear_chain
from repro.pim.config import ConfigurationError, PimConfig


class TestConfigFingerprint:
    def test_stable_across_instances(self):
        assert PimConfig().fingerprint() == PimConfig().fingerprint()

    def test_to_dict_has_stable_field_order_and_version(self):
        payload = PimConfig().to_dict()
        assert list(payload)[0] == "fingerprint_version"
        assert payload["fingerprint_version"] == 1
        assert set(payload) == {
            "fingerprint_version",
            "num_pes",
            "cache_bytes_per_pe",
            "cache_slot_bytes",
            "cache_bytes_per_unit",
            "edram_latency_factor",
            "edram_energy_factor",
            "iterations",
        }

    @pytest.mark.parametrize(
        "variant",
        [
            dict(num_pes=64),
            dict(cache_bytes_per_pe=8192),
            dict(cache_slot_bytes=256),
            dict(cache_bytes_per_unit=4096),
            dict(edram_latency_factor=8),
            dict(edram_energy_factor=3),
            dict(iterations=5),
        ],
    )
    def test_every_field_feeds_the_fingerprint(self, variant):
        assert PimConfig(**variant).fingerprint() != PimConfig().fingerprint()

    def test_round_trip(self):
        config = PimConfig(num_pes=64, iterations=7)
        assert PimConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_version(self):
        payload = PimConfig().to_dict()
        payload["fingerprint_version"] = 999
        with pytest.raises(ConfigurationError):
            PimConfig.from_dict(payload)


class TestGraphFingerprint:
    def test_copy_preserves_fingerprint(self):
        graph = linear_chain([1, 2, 3])
        assert graph.copy().fingerprint() == graph.fingerprint()

    def test_name_excluded(self):
        a = linear_chain([1, 2], name="a")
        b = linear_chain([1, 2], name="b")
        assert a.fingerprint() == b.fingerprint()

    def test_insertion_order_irrelevant(self):
        forward = TaskGraph()
        forward.add_op(0, execution_time=2)
        forward.add_op(1, execution_time=3)
        forward.connect(0, 1, size_bytes=64)
        backward = TaskGraph()
        backward.add_op(1, execution_time=3)
        backward.add_op(0, execution_time=2)
        backward.connect(0, 1, size_bytes=64)
        assert forward.fingerprint() == backward.fingerprint()

    def test_structure_changes_change_fingerprint(self):
        base = linear_chain([1, 2, 3], size_bytes=64)
        longer = linear_chain([1, 2, 3, 4], size_bytes=64)
        heavier = linear_chain([1, 2, 4], size_bytes=64)
        fatter = linear_chain([1, 2, 3], size_bytes=65)
        fingerprints = {
            base.fingerprint(),
            longer.fingerprint(),
            heavier.fingerprint(),
            fatter.fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_period_hint_included(self):
        plain = linear_chain([1, 2])
        hinted = linear_chain([1, 2])
        hinted.period_hint = 9
        assert plain.fingerprint() != hinted.fingerprint()

    def test_profits_included(self):
        a = TaskGraph()
        a.add_op(0)
        a.add_op(1)
        a.connect(0, 1, profit_cache=10, profit_edram=1)
        b = TaskGraph()
        b.add_op(0)
        b.add_op(1)
        b.connect(0, 1, profit_cache=11, profit_edram=1)
        assert a.fingerprint() != b.fingerprint()
