"""InferenceSession: compile-once semantics and direct-path equivalence."""

from __future__ import annotations

import pytest

from repro.core.paraconv import ParaConv
from repro.runtime.plan_cache import PlanCache
from repro.runtime.session import InferenceSession, direct_batch
from repro.sim.executor import ScheduleExecutor


class TestCompileOnce:
    def test_lazy_compile_and_idempotence(self, graph, config):
        session = InferenceSession(graph, config)
        assert not session.is_compiled
        plan = session.plan
        assert session.is_compiled
        assert session.compile() is plan  # no re-plan
        assert session.compilations == 1

    def test_force_recompile(self, graph, config):
        session = InferenceSession(graph, config)
        session.compile()
        session.compile(force=True)
        assert session.compilations == 2

    def test_cache_shared_across_sessions(self, graph, config):
        cache = PlanCache(capacity=4)
        first = InferenceSession(graph, config, cache=cache)
        second = InferenceSession(graph.copy(), config, cache=cache)
        plan_a = first.plan
        plan_b = second.plan
        assert plan_a is plan_b  # content-addressed hit
        assert first.compilations == 1
        assert second.compilations == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_run_does_not_replan(self, graph, config):
        session = InferenceSession(graph, config)
        session.run(3)
        session.run(5)
        session.run(2)
        assert session.compilations == 1


class TestEquivalence:
    """The serving path must be bit-identical to the one-shot pipeline."""

    @pytest.mark.parametrize("iterations", [1, 7, 20])
    def test_results_match_direct_path(self, graph, config, iterations):
        session = InferenceSession(graph, config, cache=PlanCache())
        batch = session.run(iterations)
        direct = direct_batch(graph, config, iterations)
        assert batch.iterations == direct.iterations
        assert batch.analytic_makespan == direct.analytic_makespan
        assert batch.realized_makespan == direct.realized_makespan
        assert batch.stats == direct.stats
        assert batch.energy == direct.energy
        assert batch.cache_spills == direct.cache_spills
        assert batch.max_lateness == direct.max_lateness

    def test_disk_loaded_plan_executes_identically(self, graph, config, tmp_path):
        # compile + persist
        cache = PlanCache(capacity=2, disk_dir=tmp_path)
        InferenceSession(graph, config, cache=cache).run(5)
        # new "process": hydrate the plan from disk only
        cold_cache = PlanCache(capacity=2, disk_dir=tmp_path)
        session = InferenceSession(graph, config, cache=cold_cache)
        batch = session.run(5)
        assert session.compilations == 0  # never ran the planner
        assert cold_cache.stats.disk_hits == 1
        direct = direct_batch(graph, config, 5)
        assert batch.realized_makespan == direct.realized_makespan
        assert batch.stats == direct.stats
        assert batch.energy == direct.energy

    def test_total_time_matches_plan(self, graph, config):
        session = InferenceSession(graph, config)
        reference = ParaConv(config, allocator_name="dp").run(graph)
        assert session.total_time(50) == reference.total_time(50)

    def test_repeat_batches_are_deterministic(self, graph, config):
        session = InferenceSession(graph, config)
        a = session.run(6)
        b = session.run(6)
        assert a.realized_makespan == b.realized_makespan
        assert a.stats == b.stats


class TestRunValidation:
    """Regression: run() must reject non-positive iteration counts."""

    @pytest.mark.parametrize("iterations", [0, -1, -50])
    def test_non_positive_iterations_raise(self, graph, config, iterations):
        session = InferenceSession(graph, config)
        with pytest.raises(ValueError):
            session.run(iterations)
        # The rejected call must not have compiled or executed anything.
        assert session.compilations == 0
        assert session.last_trace is None

    def test_session_still_usable_after_rejection(self, graph, config):
        session = InferenceSession(graph, config)
        with pytest.raises(ValueError):
            session.run(0)
        batch = session.run(2)
        assert batch.iterations == 2


class TestBatchResult:
    def test_throughputs(self, graph, config):
        session = InferenceSession(graph, config)
        batch = session.run(10)
        assert batch.sim_throughput == pytest.approx(
            10 / batch.realized_makespan
        )
        assert batch.wall_throughput > 0.0

    def test_summary_mentions_state(self, graph, config):
        cache = PlanCache()
        compiled = InferenceSession(graph, config, cache=cache)
        compiled.compile()
        assert "compiled" in compiled.summary()
        warm = InferenceSession(graph.copy(), config, cache=cache)
        warm.compile()
        assert "cached" in warm.summary()

    def test_executor_is_reused(self, graph, config):
        session = InferenceSession(graph, config)
        session.run(2)
        first = session._executor
        session.run(2)
        assert session._executor is first
        assert isinstance(first, ScheduleExecutor)


class TestAllocatorSpecIdentity:
    """Budgeted allocator specs key distinct plans in the cache."""

    def test_session_canonicalizes_budgeted_spec(self, graph, config):
        from repro.runtime.session import InferenceSession

        session = InferenceSession(graph, config, allocator="anneal")
        assert session.allocator == "anneal:2000"
        explicit = InferenceSession(graph, config, allocator="anneal:2000")
        assert explicit.allocator == session.allocator

    def test_dp_spec_is_untouched(self, graph, config):
        from repro.runtime.session import InferenceSession

        session = InferenceSession(graph, config, allocator="dp")
        assert session.allocator == "dp"

    def test_session_rejects_unknown_spec(self, graph, config):
        from repro.runtime.session import InferenceSession

        with pytest.raises(ValueError):
            InferenceSession(graph, config, allocator="annealed")

    def test_plan_key_includes_search_budget(self, graph, config):
        from repro.runtime.plan_cache import plan_key_for

        default = plan_key_for(graph, config, allocator="anneal:2000")
        bigger = plan_key_for(graph, config, allocator="anneal:5000")
        dp = plan_key_for(graph, config, allocator="dp")
        assert default.digest != bigger.digest
        assert default.digest != dp.digest

    def test_budget_partitions_the_shared_cache(self, graph, config):
        from repro.runtime.plan_cache import PlanCache
        from repro.runtime.session import InferenceSession

        cache = PlanCache()
        first = InferenceSession(
            graph, config, allocator="anneal", cache=cache
        )
        first.compile()
        # Same canonical spec: warm hit, no second compile.
        warm = InferenceSession(
            graph, config, allocator="anneal:2000", cache=cache
        )
        warm.compile()
        assert warm.compilations == 0
        # Different budget: its own entry, fresh compile.
        cold = InferenceSession(
            graph, config, allocator="anneal:150", cache=cache
        )
        cold.compile()
        assert cold.compilations == 1

    def test_session_serves_search_plans(self, graph, config):
        from repro.runtime.session import InferenceSession

        session = InferenceSession(graph, config, allocator="portfolio")
        result = session.run(iterations=5)
        assert result.iterations == 5
        assert session.plan.allocation.method == "portfolio"
