"""Plan-cache semantics: accounting, LRU order, disk tier, invalidation."""

from __future__ import annotations

import json

import pytest

from repro.core.paraconv import ParaConv
from repro.runtime.plan_cache import (
    PlanCache,
    PlanCacheError,
    PlanKey,
    plan_from_dict,
    plan_key_for,
    plan_to_dict,
)


def compile_plan(graph, config, allocator="dp"):
    return ParaConv(config, allocator_name=allocator).run(graph)


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
class TestPlanKey:
    def test_same_inputs_same_digest(self, graph, config):
        a = plan_key_for(graph, config)
        b = plan_key_for(graph.copy(), config)
        assert a == b
        assert a.digest == b.digest

    def test_every_component_changes_the_key(self, graph, other_graph, config):
        base = plan_key_for(graph, config)
        variants = [
            plan_key_for(other_graph, config),
            plan_key_for(graph, config.with_pes(64)),
            plan_key_for(graph, config, allocator="greedy"),
            plan_key_for(graph, config, kernel_order="lpt"),
            plan_key_for(graph, config, liveness_aware=True),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == len(variants) + 1, "fingerprint collision"

    def test_graph_mutation_invalidates(self, graph, config):
        before = plan_key_for(graph, config)
        mutated = graph.copy()
        edge = mutated.edges()[0]
        # change one intermediate-result size: different content hash
        mutated._edges[edge.key] = type(edge)(
            producer=edge.producer,
            consumer=edge.consumer,
            size_bytes=edge.size_bytes + 1,
            profit_cache=edge.profit_cache,
            profit_edram=edge.profit_edram,
        )
        assert plan_key_for(mutated, config).digest != before.digest

    def test_name_does_not_matter(self, graph, config):
        renamed = graph.copy(name="renamed")
        assert plan_key_for(renamed, config) == plan_key_for(graph, config)


# ----------------------------------------------------------------------
# hit/miss accounting + LRU
# ----------------------------------------------------------------------
class TestAccounting:
    def test_hit_miss_counters(self, graph, config):
        cache = PlanCache(capacity=4)
        key = plan_key_for(graph, config)
        assert cache.get(key) is None
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        plan = compile_plan(graph, config)
        cache.put(key, plan)
        assert cache.get(key) is plan
        assert cache.get(key) is plan
        assert (cache.stats.hits, cache.stats.misses) == (2, 1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_get_or_compile_compiles_once(self, graph, config):
        cache = PlanCache(capacity=4)
        key = plan_key_for(graph, config)
        calls = []

        def build():
            calls.append(1)
            return compile_plan(graph, config)

        first = cache.get_or_compile(key, build)
        second = cache.get_or_compile(key, build)
        assert first is second
        assert len(calls) == 1
        assert cache.stats.compile_seconds > 0.0

    def test_lru_eviction_order(self, graph, config):
        cache = PlanCache(capacity=2)
        plan = compile_plan(graph, config)
        k1 = PlanKey("g1", "c")
        k2 = PlanKey("g2", "c")
        k3 = PlanKey("g3", "c")
        cache.put(k1, plan)
        cache.put(k2, plan)
        assert cache.get(k1) is plan  # promote k1: k2 is now LRU
        cache.put(k3, plan)  # evicts k2
        assert cache.stats.evictions == 1
        assert k2 not in cache
        assert k1 in cache and k3 in cache
        assert cache.keys() == [k1.digest, k3.digest]

    def test_capacity_must_be_positive(self):
        with pytest.raises(PlanCacheError):
            PlanCache(capacity=0)


# ----------------------------------------------------------------------
# serialization + disk tier
# ----------------------------------------------------------------------
class TestDiskTier:
    def test_plan_round_trip_equals(self, graph, config):
        plan = compile_plan(graph, config)
        restored = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert restored.period == plan.period
        assert restored.max_retiming == plan.max_retiming
        assert restored.group_width == plan.group_width
        assert restored.num_groups == plan.num_groups
        assert restored.allocation == plan.allocation
        assert restored.case_histogram == plan.case_histogram
        assert restored.schedule.retiming == plan.schedule.retiming
        assert restored.schedule.placements == plan.schedule.placements
        assert restored.schedule.transfer_times == plan.schedule.transfer_times
        assert restored.config == plan.config
        assert restored.graph.fingerprint() == plan.graph.fingerprint()
        assert restored.total_time() == plan.total_time()

    def test_disk_round_trip_through_cache(self, graph, config, tmp_path):
        cache = PlanCache(capacity=4, disk_dir=tmp_path / "plans")
        key = plan_key_for(graph, config)
        plan = compile_plan(graph, config)
        cache.put(key, plan)
        assert cache.stats.disk_writes == 1
        assert cache.disk_digests() == [key.digest]

        # a fresh cache (new process) hydrates from disk
        fresh = PlanCache(capacity=4, disk_dir=tmp_path / "plans")
        restored = fresh.get(key)
        assert restored is not None
        assert fresh.stats.disk_hits == 1
        assert restored.total_time() == plan.total_time()
        assert restored.schedule.placements == plan.schedule.placements
        # hydrated plans are promoted to memory: second get is a pure hit
        assert fresh.get(key) is restored
        assert fresh.stats.disk_hits == 1

    def test_eviction_keeps_disk_copy(self, graph, config, tmp_path):
        cache = PlanCache(capacity=1, disk_dir=tmp_path)
        plan = compile_plan(graph, config)
        k1 = plan_key_for(graph, config)
        k2 = plan_key_for(graph, config.with_pes(64))
        cache.put(k1, plan)
        cache.put(k2, compile_plan(graph, config.with_pes(64)))  # evicts k1
        assert cache.stats.evictions == 1
        assert cache.get(k1) is not None  # served from disk, not recompiled
        assert cache.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, graph, config, tmp_path):
        cache = PlanCache(capacity=2, disk_dir=tmp_path)
        key = plan_key_for(graph, config)
        (tmp_path / f"{key.digest}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_clear_disk(self, graph, config, tmp_path):
        cache = PlanCache(capacity=2, disk_dir=tmp_path)
        cache.put(plan_key_for(graph, config), compile_plan(graph, config))
        cache.clear(memory_only=False)
        assert len(cache) == 0
        assert cache.disk_digests() == []

    def test_bad_version_rejected(self, graph, config):
        payload = plan_to_dict(compile_plan(graph, config))
        payload["format_version"] = 99
        with pytest.raises(PlanCacheError):
            plan_from_dict(payload)


# ----------------------------------------------------------------------
# invalidation: every fingerprint component routes to a distinct plan
# ----------------------------------------------------------------------
def test_cache_isolates_configurations(graph, config):
    cache = PlanCache(capacity=8)
    key16 = plan_key_for(graph, config)
    key64 = plan_key_for(graph, config.with_pes(64))
    plan16 = cache.get_or_compile(key16, lambda: compile_plan(graph, config))
    plan64 = cache.get_or_compile(
        key64, lambda: compile_plan(graph, config.with_pes(64))
    )
    assert plan16.config.num_pes == 16
    assert plan64.config.num_pes == 64
    assert cache.get(key16) is plan16
    assert cache.get(key64) is plan64


# ----------------------------------------------------------------------
# shared disk tier: many caches (processes) over one directory
# ----------------------------------------------------------------------
class TestSharedDiskDir:
    def test_second_cache_hits_disk_without_compiling(
        self, graph, config, tmp_path
    ):
        shared = tmp_path / "shared"
        cache_a = PlanCache(capacity=4, disk_dir=shared)
        cache_b = PlanCache(capacity=4, disk_dir=shared)
        compiles = 0

        def compile_fn():
            nonlocal compiles
            compiles += 1
            return compile_plan(graph, config)

        key = plan_key_for(graph, config)
        cache_a.get_or_compile(key, compile_fn)
        cache_b.get_or_compile(key, compile_fn)
        assert compiles == 1
        assert cache_b.stats.misses == 0
        assert cache_b.stats.disk_hits == 1

    def test_concurrent_writers_never_publish_torn_files(
        self, graph, config, tmp_path
    ):
        """Two caches hammering the same key through one disk dir must
        always leave a hydratable artifact (atomic unique-temp rename)."""
        import threading

        shared = tmp_path / "shared"
        caches = [PlanCache(capacity=2, disk_dir=shared) for _ in range(2)]
        key = plan_key_for(graph, config)
        plan = compile_plan(graph, config)
        errors = []

        def hammer(cache):
            try:
                for _ in range(15):
                    cache.put(key, plan)
                    loaded = PlanCache(capacity=2, disk_dir=shared).get(key)
                    assert loaded is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(cache,))
            for cache in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert (shared / f"{key.digest}.json").exists()
        restored = PlanCache(capacity=2, disk_dir=shared).get(key)
        assert plan_to_dict(restored) == plan_to_dict(plan)

    def test_no_temp_litter_after_concurrent_writes(
        self, graph, config, tmp_path
    ):
        shared = tmp_path / "shared"
        cache = PlanCache(capacity=2, disk_dir=shared)
        key = plan_key_for(graph, config)
        plan = compile_plan(graph, config)
        for _ in range(5):
            cache.put(key, plan)
        stray = [
            p.name for p in shared.iterdir()
            if not p.name.endswith(".json")
        ]
        assert stray == []
