"""Runtime failover: degrade, recompile-through-cache, replay.

The serving stack's recovery contract: a batch interrupted by a unit
failure is replayed in full on the degraded machine, the degraded plan is
cached under its own content-addressed key (repeat faults hit warm
plans), and exhausting the failover budget surfaces a typed error.
"""

from __future__ import annotations

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.generators import synthetic_benchmark
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT, FaultEvent, FaultModel
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import BatchingServer
from repro.runtime.session import FaultRetryExhausted, InferenceSession
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


def make_server(config, **kwargs):
    kwargs.setdefault("graph_loader", lambda name: synthetic_benchmark(name))
    kwargs.setdefault("cache", PlanCache(capacity=8))
    return BatchingServer(config, **kwargs)


class TestSessionFailover:
    def test_pe_fault_fails_over_and_matches_cold_degraded_compile(
        self, graph, config
    ):
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 3)
        session = InferenceSession(graph, config, fault_model=fault_model)
        result = session.run(20)
        assert result.failovers == 1 and result.degraded
        assert session.faults_observed == 1
        assert session.active_config.num_pes == config.num_pes - 1
        assert session.active_config.pe_mask == tuple(
            range(1, config.num_pes)
        )
        # The replay must equal a cold compile on the degraded machine.
        degraded = config.degraded(range(1, config.num_pes))
        cold_plan = ParaConv(degraded).run(graph)
        cold = ScheduleExecutor(
            degraded, num_vaults=32, mode=SimMode.FULL_UNROLL
        ).execute(cold_plan, iterations=20, sink=NullSink())
        assert session.last_trace is not None
        assert (
            session.last_trace.aggregate_signature()
            == cold.aggregate_signature()
        )

    def test_repeat_fault_hits_warm_degraded_plan(self, graph, config):
        cache = PlanCache(capacity=8)
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 3)
        first = InferenceSession(
            graph, config, cache=cache, fault_model=fault_model
        )
        first.run(10)
        assert first.failover_recompiles == 1
        second = InferenceSession(
            graph, config, cache=cache, fault_model=fault_model
        )
        second.run(10)
        assert second.faults_observed == 1  # the fault still strikes
        assert second.failovers == 1  # and is still failed over
        assert second.failover_recompiles == 0  # but the plan is warm

    def test_vault_fault_reduces_vault_count(self, graph, config):
        fault_model = FaultModel.single(FAULT_UNIT_VAULT, 0, 2)
        session = InferenceSession(graph, config, fault_model=fault_model)
        result = session.run(10)
        assert result.failovers == 1
        assert session.active_num_vaults == 31
        assert session.active_config.vault_mask == tuple(range(1, 32))
        assert session.active_config.num_pes == config.num_pes

    def test_static_mask_degrades_before_first_compile(self, graph, config):
        """All PEs but one dead from the start: the session compiles
        directly on the surviving sub-machine, no failover needed."""
        fault_model = FaultModel.static(
            failed_pes=range(1, config.num_pes)
        )
        session = InferenceSession(graph, config, fault_model=fault_model)
        result = session.run(5)
        assert session.active_config.num_pes == 1
        assert session.faults_observed == 0  # proactive, not reactive
        assert result.failovers == 0 and result.degraded
        assert session.compilations == 1  # never compiled the healthy plan

    def test_second_strike_hits_replay(self, graph, config):
        """Two timed faults: the compacted trace must carry the second
        event into the replay, costing two failovers."""
        fault_model = FaultModel(
            events=(
                FaultEvent(2, FAULT_UNIT_PE, 0),
                FaultEvent(4, FAULT_UNIT_PE, 1),
            )
        )
        session = InferenceSession(graph, config, fault_model=fault_model)
        result = session.run(10)
        assert result.failovers == 2
        assert session.faults_observed == 2
        assert session.active_config.num_pes == config.num_pes - 2

    def test_retry_exhaustion_raises_typed_error(self, graph, config):
        fault_model = FaultModel(
            events=tuple(
                FaultEvent(1, FAULT_UNIT_PE, pe) for pe in range(3)
            )
        )
        session = InferenceSession(
            graph, config, fault_model=fault_model, max_retries=2
        )
        with pytest.raises(FaultRetryExhausted) as excinfo:
            session.run(10)
        error = excinfo.value
        assert error.attempts == 3
        assert error.max_retries == 2
        assert error.workload == graph.name
        assert error.last_fault.unit == FAULT_UNIT_PE

    def test_backoff_uses_injected_sleep(self, graph, config):
        slept = []
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 2)
        session = InferenceSession(
            graph,
            config,
            fault_model=fault_model,
            retry_backoff_seconds=0.5,
            sleep=slept.append,
        )
        session.run(10)
        assert slept == [0.5]  # linear backoff: base * attempt

    def test_metrics_counters_and_gauge(self, graph, config):
        metrics = MetricsRegistry()
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 2)
        session = InferenceSession(
            graph, config, metrics=metrics, fault_model=fault_model
        )
        session.run(10)
        snap = metrics.snapshot()
        assert snap["counters"]["faults_observed"] == 1
        assert snap["counters"]["failover_recompiles"] == 1
        assert snap["gauges"]["degraded_mode"] == 1.0

    def test_healthy_session_reports_no_degradation(self, graph, config):
        session = InferenceSession(graph, config)
        result = session.run(5)
        assert not result.degraded and result.failovers == 0
        assert not session.degraded_mode
        assert session.summary().count("degraded") == 0

    def test_invalid_retry_knobs(self, graph, config):
        with pytest.raises(ValueError):
            InferenceSession(graph, config, max_retries=-1)
        with pytest.raises(ValueError):
            InferenceSession(graph, config, retry_backoff_seconds=-0.1)


class TestServerFailover:
    def test_faulted_batch_is_served_degraded(self, config):
        fault_model = FaultModel.single(FAULT_UNIT_PE, 0, 2)
        server = make_server(
            config, fault_model=fault_model, batch_window=4
        )
        for _ in range(3):
            server.submit("cat", iterations=2)
        results = server.drain()
        assert len(results) == 3
        assert all(r.batch.failovers == 1 for r in results)
        snap = server.metrics.snapshot()
        assert snap["counters"]["faults_observed"] == 1
        assert snap["counters"]["batches_failed_over"] == 1
        assert snap["gauges"]["degraded_mode"] == 1.0
        assert "fault tolerance" in server.stats_report()

    def test_retry_exhaustion_counts_failed_requests(self, config):
        fault_model = FaultModel(
            events=tuple(
                FaultEvent(1, FAULT_UNIT_PE, pe) for pe in range(4)
            )
        )
        server = make_server(
            config, fault_model=fault_model, max_retries=1
        )
        server.submit("cat")
        server.submit("cat")
        with pytest.raises(FaultRetryExhausted):
            server.drain()
        snap = server.metrics.snapshot()
        assert snap["counters"]["requests_failed"] == 2
        assert snap["counters"]["batches_failed"] == 1

    def test_healthy_server_unaffected_by_fault_plumbing(self, config):
        server = make_server(config)
        server.submit("cat", iterations=2)
        results = server.drain()
        assert len(results) == 1
        snap = server.metrics.snapshot()
        assert "faults_observed" not in snap["counters"]
        assert snap["gauges"]["degraded_mode"] == 0.0
