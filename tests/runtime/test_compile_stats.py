"""compile_stats threading through the serving stack: sessions, the plan
cache and the metrics registry."""

import pytest

from repro.pim.config import PimConfig
from repro.runtime.metrics import MetricsRegistry, record_compile_stats
from repro.runtime.plan_cache import PlanCache, plan_key_for
from repro.runtime.session import InferenceSession


@pytest.fixture
def machine():
    return PimConfig(num_pes=4, iterations=100)


class TestSessionStats:
    def test_compile_exposes_stats(self, figure2_graph, machine):
        session = InferenceSession(figure2_graph, machine)
        session.compile()
        stats = session.last_compile_stats
        assert stats is not None
        assert stats.best_width == session.plan.group_width
        assert "dp-allocate" in stats.pass_seconds
        assert session.plan.compile_stats is stats

    def test_cache_hit_leaves_no_stats(self, figure2_graph, machine):
        cache = PlanCache()
        first = InferenceSession(figure2_graph, machine, cache=cache)
        first.compile()
        assert first.last_compile_stats is not None
        second = InferenceSession(figure2_graph, machine, cache=cache)
        second.compile()
        assert second.compilations == 0
        assert second.last_compile_stats is None
        assert "served from cache" in second.explain_compile()

    def test_explain_compile_renders_passes(self, figure2_graph, machine):
        session = InferenceSession(figure2_graph, machine)
        session.compile()
        text = session.explain_compile()
        assert "dp-allocate" in text
        assert "widths explored" in text


class TestMetricsRecording:
    def test_session_records_into_registry(self, figure2_graph, machine):
        registry = MetricsRegistry()
        session = InferenceSession(figure2_graph, machine, metrics=registry)
        session.compile()
        snap = registry.snapshot()
        assert snap["counters"]["compile.widths_explored"] >= 1
        assert "compile.widths_pruned" in snap["counters"]
        assert any(
            name.startswith("compile.pass.dp-allocate")
            for name in snap["histograms"]
        )
        assert snap["histograms"]["compile.total.seconds"]["count"] == 1

    def test_none_stats_are_a_noop(self):
        registry = MetricsRegistry()
        record_compile_stats(registry, None)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_cache_hit_records_nothing(self, figure2_graph, machine):
        cache = PlanCache()
        InferenceSession(figure2_graph, machine, cache=cache).compile()
        registry = MetricsRegistry()
        hit = InferenceSession(
            figure2_graph, machine, cache=cache, metrics=registry
        )
        hit.compile()
        assert registry.snapshot()["counters"] == {}


class TestCacheStatsAccumulation:
    def test_pass_seconds_accumulate_per_compile(self, figure2_graph, machine):
        cache = PlanCache()
        InferenceSession(figure2_graph, machine, cache=cache).compile()
        breakdown = cache.stats.pass_seconds
        assert "dp-allocate" in breakdown
        assert all(seconds >= 0.0 for seconds in breakdown.values())
        # A cache hit adds nothing.
        before = dict(breakdown)
        InferenceSession(figure2_graph, machine, cache=cache).compile()
        assert cache.stats.pass_seconds == before

    def test_as_dict_has_sorted_pass_keys(self, figure2_graph, machine):
        cache = PlanCache()
        InferenceSession(figure2_graph, machine, cache=cache).compile()
        payload = cache.stats.as_dict()
        assert list(payload["pass_seconds"]) == sorted(payload["pass_seconds"])

    def test_disk_hydrated_plans_contribute_nothing(
        self, figure2_graph, machine, tmp_path
    ):
        warm = PlanCache(disk_dir=tmp_path)
        InferenceSession(figure2_graph, machine, cache=warm).compile()
        cold = PlanCache(disk_dir=tmp_path)
        key = plan_key_for(figure2_graph, machine)
        plan = cold.get(key)
        assert plan is not None
        assert plan.compile_stats is None  # not serialized, by design
        assert cold.stats.pass_seconds == {}
