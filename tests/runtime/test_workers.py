"""Parallel warmup: cache population, determinism, reporting."""

from __future__ import annotations

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.runtime.plan_cache import PlanCache, plan_key_for
from repro.runtime.workers import warm_cache

NAMES = ["cat", "car", "flower"]


def loader(name):
    return synthetic_benchmark(name)


class TestWarmCache:
    def test_populates_every_workload(self, config):
        cache = PlanCache(capacity=8)
        report = warm_cache(NAMES, config, cache, graph_loader=loader)
        assert len(report.entries) == 3
        assert report.compiled == 3 and report.from_cache == 0
        for name in NAMES:
            key = plan_key_for(loader(name), config)
            assert key in cache

    def test_second_warmup_is_all_cache_hits(self, config):
        cache = PlanCache(capacity=8)
        warm_cache(NAMES, config, cache, graph_loader=loader)
        report = warm_cache(NAMES, config, cache, graph_loader=loader)
        assert report.compiled == 0
        assert report.from_cache == 3

    def test_parallel_equals_serial_plans(self, config):
        serial = PlanCache(capacity=8)
        parallel = PlanCache(capacity=8)
        warm_cache(NAMES, config, serial, max_workers=1, graph_loader=loader)
        warm_cache(NAMES, config, parallel, max_workers=4, graph_loader=loader)
        for name in NAMES:
            key = plan_key_for(loader(name), config)
            a = serial.get(key)
            b = parallel.get(key)
            assert a is not None and b is not None
            assert a.total_time() == b.total_time()
            assert a.schedule.placements == b.schedule.placements
            assert a.schedule.retiming == b.schedule.retiming

    def test_order_preserved_and_facts_reported(self, config):
        cache = PlanCache(capacity=8)
        report = warm_cache(NAMES, config, cache, graph_loader=loader)
        assert [e.workload for e in report.entries] == NAMES
        for entry in report.entries:
            assert entry.seconds >= 0.0
            assert entry.period > 0
            assert entry.num_groups * entry.group_width <= config.num_pes
            assert len(entry.digest) == 64

    def test_unknown_workload_raises(self, config):
        cache = PlanCache(capacity=8)
        with pytest.raises(Exception):
            warm_cache(["no-such-workload"], config, cache)

    def test_warmup_persists_to_disk(self, config, tmp_path):
        cache = PlanCache(capacity=8, disk_dir=tmp_path)
        warm_cache(NAMES, config, cache, graph_loader=loader)
        assert len(cache.disk_digests()) == 3

    def test_render_smoke(self, config):
        cache = PlanCache(capacity=8)
        report = warm_cache(NAMES, config, cache, graph_loader=loader)
        text = report.render()
        for name in NAMES:
            assert name in text
        assert "warmed 3 workloads" in text
