"""Metrics primitives: percentile math, reservoir behavior, registry."""

from __future__ import annotations

import pytest

from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_exact_small_sample(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0

    def test_linear_interpolation(self):
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        values = [float(v) for v in [9, 1, 7, 3, 5, 2, 8]]
        for q in (10, 50, 90, 95, 99):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q))
            )

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([42.0], 99) == 42.0


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_add(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("lat")
        for v in [5, 1, 3, 2, 4]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1.0 and summary["max"] == 5.0
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["p50"] == pytest.approx(3.0)

    def test_empty_summary(self):
        assert Histogram("lat").summary() == {"count": 0}

    def test_reservoir_bounds_memory_but_tracks_extremes(self):
        hist = Histogram("lat", reservoir_size=64)
        for v in range(10_000):
            hist.observe(float(v))
        assert hist.count == 10_000
        assert len(hist._samples) == 64
        assert hist.min == 0.0 and hist.max == 9999.0
        # percentiles stay order-of-magnitude faithful under sampling
        assert 3000 < hist.p50 < 7000

    def test_reservoir_is_seeded_deterministic(self):
        def fill():
            hist = Histogram("lat", reservoir_size=16)
            for v in range(1000):
                hist.observe(float(v))
            return list(hist._samples)

        assert fill() == fill()


class TestRegistry:
    def test_idempotent_creation(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(1.5)
        registry.histogram("empty")
        snap = registry.snapshot()
        assert snap["counters"]["served"] == 3
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]["lat"]["count"] == 1
        text = registry.render()
        assert "served" in text and "depth" in text
        assert "count=0" in text  # empty histogram renders safely

    def test_empty_render(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"


class TestThreadSafety:
    """Regression: instrument mutation used to race (registry lock only
    guarded dict creation), silently dropping increments under the
    multi-threaded warmup/failover paths."""

    def test_concurrent_hammer_is_exact(self):
        import threading

        registry = MetricsRegistry()
        threads = 8
        per_thread = 2_000
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            counter = registry.counter("served")
            gauge = registry.gauge("accumulator")
            hist = registry.histogram("lat", reservoir_size=64)
            barrier.wait()
            for i in range(per_thread):
                counter.inc()
                gauge.add(1.0)
                hist.observe(float(worker * per_thread + i))

        workers = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        total = threads * per_thread
        snap = registry.snapshot()
        assert snap["counters"]["served"] == total
        assert snap["gauges"]["accumulator"] == float(total)
        assert snap["histograms"]["lat"]["count"] == total

    def test_summary_consistent_under_concurrent_observe(self):
        import threading

        registry = MetricsRegistry()
        hist = registry.histogram("lat", reservoir_size=32)
        stop = threading.Event()

        def writer() -> None:
            value = 0.0
            while not stop.is_set():
                value += 1.0
                hist.observe(value)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                summary = hist.summary()
                if summary["count"]:
                    assert summary["min"] <= summary["p50"] <= summary["max"]
        finally:
            stop.set()
            thread.join()

    def test_instrument_locks_do_not_break_equality(self):
        assert Counter("a", 3) == Counter("a", 3)
        assert Gauge("g", 1.0) == Gauge("g", 1.0)


class TestHistogramMerge:
    def test_merge_preserves_exact_aggregates(self):
        a = Histogram("lat")
        b = Histogram("lat")
        for v in (1.0, 5.0, 3.0):
            a.observe(v)
        for v in (10.0, 0.5):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(19.5)
        assert a.min == 0.5
        assert a.max == 10.0
        # Small streams keep every sample: percentiles stay exact.
        assert a.p50 == 3.0

    def test_merge_empty_is_noop(self):
        a = Histogram("lat")
        a.observe(2.0)
        a.merge(Histogram("lat"))
        assert a.count == 1
        empty = Histogram("lat")
        empty.merge(Histogram("lat"))
        assert empty.count == 0
        assert empty.min is None

    def test_merge_into_empty(self):
        a = Histogram("lat")
        b = Histogram("lat")
        b.observe(7.0)
        a.merge(b)
        assert a.count == 1
        assert a.min == a.max == 7.0

    def test_merge_bounds_reservoir(self):
        a = Histogram("lat", reservoir_size=8)
        b = Histogram("lat", reservoir_size=8)
        for v in range(16):
            a.observe(float(v))
            b.observe(float(100 + v))
        a.merge(b)
        assert len(a._samples) == 8
        assert a.count == 32
        assert a.max == 115.0  # exact even when sampled out

    def test_merge_is_deterministic(self):
        def build():
            a = Histogram("lat", reservoir_size=8)
            b = Histogram("lat", reservoir_size=8)
            for v in range(30):
                a.observe(float(v))
                b.observe(float(v) * 2)
            a.merge(b)
            return a._samples

        assert build() == build()


class TestRegistryMerge:
    def test_counters_add_gauges_sum_histograms_fold(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("served").inc(3)
        b.counter("served").inc(4)
        b.counter("only_b").inc(1)
        a.gauge("queue_depth").set(5)
        b.gauge("queue_depth").set(7)
        a.histogram("lat").observe(1.0)
        b.histogram("lat").observe(3.0)

        merged = MetricsRegistry().merge(a).merge(b)
        snap = merged.snapshot()
        assert snap["counters"]["served"] == 7
        assert snap["counters"]["only_b"] == 1
        # Fleet queue depth is the *sum* of shard depths.
        assert snap["gauges"]["queue_depth"] == 12.0
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["histograms"]["lat"]["mean"] == pytest.approx(2.0)

    def test_merge_returns_self_for_chaining(self):
        a = MetricsRegistry()
        assert a.merge(MetricsRegistry()) is a

    def test_merge_leaves_source_untouched(self):
        source = MetricsRegistry()
        source.counter("n").inc(2)
        source.histogram("lat").observe(1.5)
        MetricsRegistry().merge(source)
        snap = source.snapshot()
        assert snap["counters"]["n"] == 2
        assert snap["histograms"]["lat"]["count"] == 1

    def test_concurrent_merge_while_recording(self):
        """Aggregating a live registry must not deadlock or corrupt."""
        import threading as _threading

        live = MetricsRegistry()
        stop = _threading.Event()

        def record():
            while not stop.is_set():
                live.counter("n").inc()
                live.histogram("lat").observe(1.0)

        workers = [_threading.Thread(target=record) for _ in range(4)]
        for w in workers:
            w.start()
        try:
            for _ in range(50):
                view = MetricsRegistry().merge(live)
                snap = view.snapshot()
                assert snap["counters"].get("n", 0) >= 0
        finally:
            stop.set()
            for w in workers:
                w.join()
        final = MetricsRegistry().merge(live).snapshot()
        assert final["counters"]["n"] == live.counter("n").value
