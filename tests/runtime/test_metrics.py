"""Metrics primitives: percentile math, reservoir behavior, registry."""

from __future__ import annotations

import pytest

from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_exact_small_sample(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0

    def test_linear_interpolation(self):
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        values = [float(v) for v in [9, 1, 7, 3, 5, 2, 8]]
        for q in (10, 50, 90, 95, 99):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q))
            )

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([42.0], 99) == 42.0


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_add(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("lat")
        for v in [5, 1, 3, 2, 4]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1.0 and summary["max"] == 5.0
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["p50"] == pytest.approx(3.0)

    def test_empty_summary(self):
        assert Histogram("lat").summary() == {"count": 0}

    def test_reservoir_bounds_memory_but_tracks_extremes(self):
        hist = Histogram("lat", reservoir_size=64)
        for v in range(10_000):
            hist.observe(float(v))
        assert hist.count == 10_000
        assert len(hist._samples) == 64
        assert hist.min == 0.0 and hist.max == 9999.0
        # percentiles stay order-of-magnitude faithful under sampling
        assert 3000 < hist.p50 < 7000

    def test_reservoir_is_seeded_deterministic(self):
        def fill():
            hist = Histogram("lat", reservoir_size=16)
            for v in range(1000):
                hist.observe(float(v))
            return list(hist._samples)

        assert fill() == fill()


class TestRegistry:
    def test_idempotent_creation(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(1.5)
        registry.histogram("empty")
        snap = registry.snapshot()
        assert snap["counters"]["served"] == 3
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]["lat"]["count"] == 1
        text = registry.render()
        assert "served" in text and "depth" in text
        assert "count=0" in text  # empty histogram renders safely

    def test_empty_render(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"
