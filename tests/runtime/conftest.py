"""Shared fixtures for the serving-runtime tests.

Small synthetic graphs keep each test milliseconds-fast while exercising
the full plan pipeline (retiming + DP allocation + width search).
"""

from __future__ import annotations

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig


@pytest.fixture()
def config() -> PimConfig:
    return PimConfig(num_pes=16, iterations=100)


@pytest.fixture()
def graph() -> TaskGraph:
    return synthetic_benchmark("cat")


@pytest.fixture()
def other_graph() -> TaskGraph:
    return synthetic_benchmark("car")


def tiny_graph(name: str = "tiny", stages: int = 4) -> TaskGraph:
    """A deterministic little pipeline for scheduler-focused tests."""
    graph = TaskGraph(name=name)
    for idx in range(stages):
        graph.add_op(idx, execution_time=1 + idx % 2)
    for idx in range(stages - 1):
        graph.connect(idx, idx + 1, size_bytes=256)
    graph.validate()
    return graph
