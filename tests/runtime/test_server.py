"""Batching server: admission, coalescing, backpressure, timing."""

from __future__ import annotations

import pytest

from repro.graph.generators import synthetic_benchmark
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import BatchingServer, QueueFullError

from tests.runtime.conftest import tiny_graph


class FakeClock:
    """Deterministic monotonic clock for timing assertions."""

    def __init__(self):
        self.now = 0.0

    def tick(self, seconds: float = 1.0) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def make_server(config, **kwargs):
    kwargs.setdefault("graph_loader", lambda name: synthetic_benchmark(name))
    kwargs.setdefault("cache", PlanCache(capacity=8))
    return BatchingServer(config, **kwargs)


class TestAdmission:
    def test_submit_assigns_increasing_ids(self, config):
        server = make_server(config, max_queue=4)
        r1 = server.submit("cat")
        r2 = server.submit("cat")
        assert (r1.request_id, r2.request_id) == (1, 2)
        assert server.queue_depth == 2

    def test_bounded_queue_rejects_not_deadlocks(self, config):
        server = make_server(config, max_queue=3)
        for _ in range(3):
            server.submit("cat")
        with pytest.raises(QueueFullError) as err:
            server.submit("cat")
        assert err.value.capacity == 3
        assert err.value.workload == "cat"
        assert server.metrics.snapshot()["counters"]["requests_rejected"] == 1
        # the queue is still fully servable after the rejection
        assert len(server.drain()) == 3
        # and accepts again afterwards
        server.submit("cat")
        assert server.queue_depth == 1

    def test_invalid_parameters(self, config):
        with pytest.raises(ValueError):
            make_server(config, max_queue=0)
        with pytest.raises(ValueError):
            make_server(config, batch_window=0)
        server = make_server(config)
        with pytest.raises(ValueError):
            server.submit("cat", iterations=0)


class TestCoalescing:
    def test_same_workload_requests_share_one_batch(self, config):
        server = make_server(config, batch_window=8)
        for _ in range(5):
            server.submit("cat")
        results = server.step()
        assert len(results) == 5
        assert {r.batch_id for r in results} == {1}
        assert all(r.batch_size == 5 for r in results)
        counters = server.metrics.snapshot()["counters"]
        assert counters["batches_executed"] == 1
        assert counters["inferences_served"] == 5

    def test_window_bounds_batch_size(self, config):
        server = make_server(config, batch_window=2)
        for _ in range(5):
            server.submit("cat")
        results = server.drain()
        batches = {r.batch_id for r in results}
        assert len(results) == 5
        assert len(batches) == 3  # 2 + 2 + 1

    def test_mixed_workloads_preserve_fifo_between_plans(self, config):
        server = make_server(config, batch_window=8)
        server.submit("cat")
        server.submit("car")
        server.submit("cat")  # coalesces with the head batch
        first = server.step()
        assert [r.request.workload for r in first] == ["cat", "cat"]
        second = server.step()
        assert [r.request.workload for r in second] == ["car"]
        assert server.queue_depth == 0

    def test_one_plan_compile_for_many_requests(self, config):
        cache = PlanCache(capacity=8)
        server = make_server(config, cache=cache, batch_window=4)
        for _ in range(8):
            server.submit("cat")
        server.drain()
        assert cache.stats.misses == 1  # compiled exactly once
        assert cache.stats.compile_seconds > 0.0

    def test_step_on_empty_queue_is_noop(self, config):
        server = make_server(config)
        assert server.step() == []
        assert server.drain() == []


class TestTiming:
    def test_wall_latency_uses_injected_clock(self, config):
        clock = FakeClock()
        server = make_server(config, clock=clock)
        server.submit("cat")
        clock.tick(2.0)
        server.submit("cat")
        clock.tick(3.0)
        results = server.step()
        by_id = {r.request.request_id: r for r in results}
        assert by_id[1].wall_latency == pytest.approx(5.0)
        assert by_id[2].wall_latency == pytest.approx(3.0)

    def test_sim_latency_is_monotone_within_batch(self, config):
        server = make_server(config, batch_window=8)
        for _ in range(6):
            server.submit("cat", iterations=4)
        results = server.step()
        latencies = [r.sim_latency for r in results]
        assert latencies == sorted(latencies)
        # the last request's completion equals the whole batch's time
        plan = server._sessions["cat"].session.plan
        assert latencies[-1] == plan.total_time(6 * 4)

    def test_prologue_amortized_across_batch(self, config):
        """A coalesced batch pays R_max*p once, not once per request."""
        server = make_server(config, batch_window=8)
        for _ in range(4):
            server.submit("cat")
        results = server.step()
        plan = server._sessions["cat"].session.plan
        solo_cost = plan.total_time(1)
        batch_total = results[-1].sim_latency
        assert batch_total < 4 * solo_cost

    def test_metrics_percentiles_exposed(self, config):
        server = make_server(config)
        for _ in range(4):
            server.submit("cat")
        server.drain()
        hist = server.metrics.histogram("sim_latency_units")
        assert hist.count == 4
        assert hist.p50 <= hist.p95 <= hist.p99
        summary = server.throughput_summary()
        assert summary["inferences"] == 4
        assert summary["sim_throughput"] > 0
        assert "plan cache" in server.stats_report()


class TestResultsRetention:
    """The retained result history is bounded; aggregates stay exact."""

    def test_results_deque_is_bounded(self, config):
        server = make_server(config, results_retention=3, batch_window=2)
        for _ in range(7):
            server.submit("cat")
        served = server.drain()
        assert len(served) == 7  # callers still see every result
        retained = server.results
        assert len(retained) == 3  # but the history is capped
        # Newest results survive, oldest are evicted.
        kept_ids = [r.request.request_id for r in retained]
        assert kept_ids == [5, 6, 7]
        counters = server.metrics.snapshot()["counters"]
        assert counters["results_evicted"] == 4
        assert counters["requests_served"] == 7

    def test_throughput_exact_despite_eviction(self, config):
        server = make_server(config, results_retention=2, batch_window=2)
        for _ in range(6):
            server.submit("cat", iterations=2)
        served = server.drain()
        assert len(server.results) == 2  # history truncated...
        summary = server.throughput_summary()
        assert summary["inferences"] == 12.0  # ...aggregates are not
        # wall aggregates are accumulated outside the bounded history,
        # so eviction never skews the wall-throughput figure: the sum
        # covers all six served requests, not just the two retained.
        assert server._wall_seconds_served == pytest.approx(
            sum(r.batch.wall_seconds for r in served)
        )
        assert server._wall_seconds_served > sum(
            r.batch.wall_seconds for r in server.results
        )

    def test_no_eviction_below_cap(self, config):
        server = make_server(config, results_retention=100)
        for _ in range(4):
            server.submit("cat")
        server.drain()
        assert len(server.results) == 4
        assert "results_evicted" not in server.metrics.snapshot()["counters"]

    def test_invalid_retention(self, config):
        with pytest.raises(ValueError):
            make_server(config, results_retention=0)


class TestSubmitValidation:
    """Malformed requests raise ValueError and never consume queue slots."""

    @pytest.mark.parametrize("iterations", [0, -1, -100])
    def test_non_positive_iterations_rejected(self, config, iterations):
        server = make_server(config)
        with pytest.raises(ValueError):
            server.submit("cat", iterations=iterations)
        assert server.queue_depth == 0
        counters = server.metrics.snapshot()["counters"]
        assert "requests_accepted" not in counters
        assert "requests_rejected" not in counters

    def test_validation_precedes_queue_full(self, config):
        """A bad request on a full queue is a ValueError, not
        backpressure — and it must not bump requests_rejected."""
        server = make_server(config, max_queue=1)
        server.submit("cat")
        with pytest.raises(ValueError):
            server.submit("cat", iterations=0)
        counters = server.metrics.snapshot()["counters"]
        assert "requests_rejected" not in counters
        # the queue-full path still works for well-formed requests
        with pytest.raises(QueueFullError):
            server.submit("cat")


class TestCustomGraphs:
    def test_loader_injection(self, config):
        served = []

        def loader(name):
            served.append(name)
            return tiny_graph(name)

        server = BatchingServer(config, graph_loader=loader, cache=PlanCache())
        server.submit("alpha")
        server.submit("alpha")
        server.drain()
        assert served == ["alpha"]  # one session per workload
