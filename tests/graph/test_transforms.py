"""Tests for graph transformations."""

import pytest

from repro.graph.taskgraph import GraphValidationError, TaskGraph, linear_chain
from repro.graph.transforms import (
    coarsen_chains,
    prune_transitive_edges,
    scale_execution_times,
    with_uniform_sizes,
)


class TestScaleExecutionTimes:
    def test_doubling(self, diamond_graph):
        scaled = scale_execution_times(diamond_graph, 2.0)
        assert scaled.total_work() == 2 * diamond_graph.total_work()

    def test_floor_at_one(self, diamond_graph):
        scaled = scale_execution_times(diamond_graph, 0.01)
        for op in scaled.operations():
            assert op.execution_time == 1

    def test_edges_preserved(self, diamond_graph):
        scaled = scale_execution_times(diamond_graph, 3.0)
        assert [e.key for e in scaled.edges()] == [
            e.key for e in diamond_graph.edges()
        ]

    def test_non_positive_factor_rejected(self, diamond_graph):
        with pytest.raises(GraphValidationError):
            scale_execution_times(diamond_graph, 0)


class TestUniformSizes:
    def test_all_sizes_rewritten(self, diamond_graph):
        uniform = with_uniform_sizes(diamond_graph, 777)
        assert all(e.size_bytes == 777 for e in uniform.edges())
        assert uniform.num_edges == diamond_graph.num_edges

    def test_invalid_size_rejected(self, diamond_graph):
        with pytest.raises(GraphValidationError):
            with_uniform_sizes(diamond_graph, 0)


class TestTransitiveReduction:
    def test_shortcut_edge_removed(self):
        graph = TaskGraph()
        for i in range(3):
            graph.add_op(i)
        graph.connect(0, 1)
        graph.connect(1, 2)
        graph.connect(0, 2)  # shortcut implied by 0->1->2
        reduced = prune_transitive_edges(graph)
        assert reduced.num_edges == 2
        assert not reduced.has_edge(0, 2)

    def test_diamond_untouched(self, diamond_graph):
        reduced = prune_transitive_edges(diamond_graph)
        assert reduced.num_edges == diamond_graph.num_edges

    def test_reachability_preserved(self):
        from repro.graph.generators import SyntheticGraphGenerator

        graph = SyntheticGraphGenerator().generate(25, 60, seed=3)
        reduced = prune_transitive_edges(graph)
        assert reduced.num_edges <= graph.num_edges
        # every removed dependency must still be implied by a path
        def reach(g, src):
            seen, stack = set(), [src]
            while stack:
                node = stack.pop()
                for succ in g.successors(node):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            return seen

        for edge in graph.edges():
            assert edge.consumer in reach(reduced, edge.producer)


class TestCoarsenChains:
    def test_pure_chain_collapses(self):
        chain = linear_chain([1, 2, 3, 4])
        coarse = coarsen_chains(chain)
        assert coarse.num_vertices == 1
        assert coarse.total_work() == 10
        assert coarse.num_edges == 0

    def test_diamond_not_collapsed(self, diamond_graph):
        coarse = coarsen_chains(diamond_graph)
        # branch/merge vertices all have degree constraints that block fusion
        assert coarse.num_vertices == 4

    def test_work_preserved(self):
        graph = TaskGraph()
        for i, c in enumerate([1, 2, 3, 1, 1]):
            graph.add_op(i, execution_time=c)
        # chain 0->1->2 then branch 2->3, 2->4
        graph.connect(0, 1)
        graph.connect(1, 2)
        graph.connect(2, 3)
        graph.connect(2, 4)
        coarse = coarsen_chains(graph)
        assert coarse.total_work() == graph.total_work()
        assert coarse.num_vertices == 3  # fused chain head + two leaves
