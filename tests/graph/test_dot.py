"""Tests for the Graphviz DOT exporter."""

from repro.core.paraconv import ParaConv
from repro.graph.dot import graph_to_dot, result_to_dot, write_dot
from repro.pim.memory import Placement


class TestGraphToDot:
    def test_contains_all_nodes_and_edges(self, diamond_graph):
        dot = graph_to_dot(diamond_graph)
        for op in diamond_graph.operations():
            assert f"n{op.op_id} [" in dot
        for edge in diamond_graph.edges():
            assert f"n{edge.producer} -> n{edge.consumer}" in dot
        assert dot.startswith('digraph "diamond"')
        assert dot.rstrip().endswith("}")

    def test_retiming_annotations(self, diamond_graph):
        dot = graph_to_dot(diamond_graph, retiming={0: 2, 1: 1, 2: 1, 3: 0})
        assert "R=2" in dot
        assert "R=0" in dot

    def test_placement_styles(self, diamond_graph):
        placements = {
            (0, 1): Placement.CACHE,
            (0, 2): Placement.EDRAM,
            (1, 3): Placement.CACHE,
            (2, 3): Placement.EDRAM,
        }
        dot = graph_to_dot(diamond_graph, placements=placements)
        assert dot.count("style=bold") == 2
        assert dot.count("style=dashed") == 2

    def test_quote_escaping(self):
        from repro.graph.taskgraph import TaskGraph

        graph = TaskGraph(name='weird"name')
        graph.add_op(0, name='op"zero')
        graph.add_op(1)
        graph.connect(0, 1)
        dot = graph_to_dot(graph)
        assert '\\"' in dot

    def test_write_dot(self, diamond_graph, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(diamond_graph, path)
        assert path.read_text().startswith("digraph")

    def test_result_to_dot(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        dot = result_to_dot(result)
        assert "R=" in dot
        assert "->" in dot
