"""Tests for the randomly-wired ER/WS/BA graph generators.

The generators' contract: every emitted graph is a legal workload (any
validator violation is a bug by definition) and a *pure function* of its
spec — byte-identical fingerprints across calls, processes and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.paraconv import ParaConv
from repro.graph.randwired import (
    RANDWIRED_KINDS,
    RANDWIRED_SPECS,
    RandwiredSpec,
    all_randwired_benchmarks,
    barabasi_albert_dag,
    erdos_renyi_dag,
    randwired_benchmark,
    randwired_graph,
    reseeded,
    watts_strogatz_dag,
)
from repro.graph.taskgraph import GraphValidationError
from repro.pim.config import PimConfig
from repro.verify.validator import ScheduleValidator


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphValidationError, match="unknown randwired"):
            RandwiredSpec(kind="smallworld", num_vertices=8)

    def test_tiny_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            RandwiredSpec(kind="er", num_vertices=1)

    def test_probability_bounds(self):
        with pytest.raises(GraphValidationError):
            RandwiredSpec(kind="er", num_vertices=8, p=1.5)

    def test_ws_k_must_be_even(self):
        with pytest.raises(GraphValidationError, match="even"):
            RandwiredSpec(kind="ws", num_vertices=8, k=3)

    def test_ws_k_must_fit(self):
        with pytest.raises(GraphValidationError):
            RandwiredSpec(kind="ws", num_vertices=4, k=4)

    def test_ba_m_bounds(self):
        with pytest.raises(GraphValidationError):
            RandwiredSpec(kind="ba", num_vertices=4, m=4)


class TestStructure:
    @pytest.mark.parametrize("kind", RANDWIRED_KINDS)
    def test_single_source_single_sink(self, kind):
        graph = randwired_graph(RandwiredSpec(kind=kind, num_vertices=12))
        sources = [
            op.op_id for op in graph.operations()
            if graph.in_degree(op.op_id) == 0
        ]
        sinks = [
            op.op_id for op in graph.operations()
            if graph.out_degree(op.op_id) == 0
        ]
        assert sources == [12]  # the stem
        assert sinks == [13]  # the head

    @pytest.mark.parametrize("kind", RANDWIRED_KINDS)
    def test_is_a_dag(self, kind):
        graph = randwired_graph(RandwiredSpec(kind=kind, num_vertices=12))
        order = graph.topological_order()
        assert len(order) == graph.num_vertices

    def test_ba_hubs_stress_fan_in(self):
        graph = barabasi_albert_dag(32, m=3, seed=2)
        max_fan_in = max(
            graph.in_degree(op.op_id) for op in graph.operations()
        )
        # Preferential attachment plus head stitching must exceed any
        # layered benchmark's bounded fan-in.
        assert max_fan_in >= 6

    def test_empty_er_still_connected(self):
        # p=0 draws no core edges: every core vertex is stem->v->head.
        graph = erdos_renyi_dag(6, p=0.0, seed=1)
        assert graph.num_vertices == 8
        assert all(
            graph.in_degree(op.op_id) >= 1
            for op in graph.operations()
            if op.op_id != 6  # the stem
        )


class TestDeterminism:
    @pytest.mark.parametrize("kind", RANDWIRED_KINDS)
    def test_same_spec_same_fingerprint(self, kind):
        spec = RandwiredSpec(kind=kind, num_vertices=16, seed=7)
        assert (
            randwired_graph(spec).fingerprint()
            == randwired_graph(spec).fingerprint()
        )

    @pytest.mark.parametrize("kind", RANDWIRED_KINDS)
    def test_different_seed_different_graph(self, kind):
        spec = RandwiredSpec(kind=kind, num_vertices=16, seed=0)
        assert (
            randwired_graph(spec).fingerprint()
            != randwired_graph(reseeded(spec, 1)).fingerprint()
        )

    def test_cross_process_hashseed_independence(self):
        """Fingerprints match across processes with differing PYTHONHASHSEED."""
        script = (
            "from repro.graph.randwired import randwired_benchmark\n"
            "print('|'.join(randwired_benchmark(n).fingerprint()"
            " for n in ('randwired-er', 'randwired-ws', 'randwired-ba')))\n"
        )
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        digests = set()
        for hashseed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src, env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestRegistry:
    def test_named_benchmarks_build(self):
        graphs = all_randwired_benchmarks()
        assert [g.name for g in graphs] == list(RANDWIRED_SPECS)

    def test_unknown_name_enumerates_registry(self):
        with pytest.raises(GraphValidationError, match="randwired-er"):
            randwired_benchmark("randwired-nope")

    def test_workload_registry_integration(self):
        from repro.cnn.workloads import WORKLOADS, load_workload

        for name in RANDWIRED_SPECS:
            assert name in WORKLOADS
            assert load_workload(name).name == name

    def test_convenience_wrappers(self):
        assert watts_strogatz_dag(8, k=2, seed=3).num_vertices == 10
        assert erdos_renyi_dag(8, p=0.5, seed=3).num_vertices == 10
        assert barabasi_albert_dag(8, m=2, seed=3).num_vertices == 10


class TestPropertyBattery:
    """Seed x size x density sweep through the full validator.

    Every generated graph must compile and pass all ten checks with
    zero errors — the generators only emit legal workloads.
    """

    SWEEP = [
        RandwiredSpec(kind="er", num_vertices=n, p=p, seed=seed)
        for n in (8, 14) for p in (0.15, 0.5) for seed in (0, 3)
    ] + [
        RandwiredSpec(kind="ws", num_vertices=n, k=4, p=p, seed=seed)
        for n in (10, 14) for p in (0.1, 0.6) for seed in (0, 3)
    ] + [
        RandwiredSpec(kind="ba", num_vertices=n, m=m, seed=seed)
        for n in (10, 14) for m in (2, 4) for seed in (0, 3)
    ]

    @pytest.mark.parametrize(
        "spec", SWEEP,
        ids=lambda s: f"{s.kind}-n{s.num_vertices}-s{s.seed}",
    )
    def test_validator_clean(self, spec):
        config = PimConfig(num_pes=8, iterations=50)
        plan = ParaConv(config, validate=False).run(randwired_graph(spec))
        report = ScheduleValidator().validate(plan)
        assert report.errors() == []
