"""fuse_stages: explicit-run fusion, validity gates, conservation laws."""

import random

import pytest

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.taskgraph import GraphValidationError, TaskGraph
from repro.graph.transforms import fuse_stages


def chain(n=4, **edge_kwargs):
    graph = TaskGraph(name="chain")
    for i in range(n):
        graph.add_op(i, execution_time=i + 1, name=f"op{i}", work=10 * (i + 1))
    for i in range(n - 1):
        graph.connect(i, i + 1, **edge_kwargs)
    return graph


class TestBasicFusion:
    def test_pair_fuses_into_one_vertex(self):
        fused = fuse_stages(chain(4), [[1, 2]])
        assert fused.num_vertices == 3
        op = fused.operation(1)
        assert op.name == "op1+op2"
        assert op.execution_time == 2 + 3
        assert op.work == 20 + 30
        assert op.fused_count == 2

    def test_internal_edge_dropped_boundaries_retargeted(self):
        fused = fuse_stages(chain(4), [[1, 2]])
        assert [e.key for e in fused.edges()] == [(0, 1), (1, 3)]

    def test_whole_chain_fuses_to_point(self):
        fused = fuse_stages(chain(4), [[0, 1, 2, 3]])
        assert fused.num_vertices == 1
        assert fused.operation(0).fused_count == 4
        assert fused.num_edges == 0

    def test_multiple_disjoint_runs(self):
        fused = fuse_stages(chain(6), [[0, 1], [3, 4]])
        assert fused.num_vertices == 4
        assert fused.operation(0).fused_count == 2
        assert fused.operation(3).fused_count == 2

    def test_fusion_is_non_destructive(self):
        graph = chain(4)
        before = graph.fingerprint()
        fuse_stages(graph, [[1, 2]])
        assert graph.fingerprint() == before

    def test_fused_counts_compose_across_passes(self):
        once = fuse_stages(chain(4), [[0, 1]])
        twice = fuse_stages(once, [[0, 2]])
        assert twice.operation(0).fused_count == 3

    def test_parallel_boundary_edges_merge_by_summing(self):
        graph = TaskGraph()
        for i in range(3):
            graph.add_op(i, execution_time=1)
        # One external producer feeds both run members; after fusion the
        # two edges collapse onto (0, fused) and must sum, not collide.
        graph.connect(0, 1, size_bytes=100, profit_cache=7, profit_edram=2)
        graph.connect(0, 2, size_bytes=50, profit_cache=5, profit_edram=1)
        graph.connect(1, 2, size_bytes=10)
        fused = fuse_stages(graph, [[1, 2]])
        (edge,) = fused.edges()
        assert edge.key == (0, 1)
        assert edge.size_bytes == 150
        assert edge.profit_cache == 12
        assert edge.profit_edram == 3


class TestValidityGates:
    def test_short_run_rejected(self):
        with pytest.raises(GraphValidationError, match=">= 2 members"):
            fuse_stages(chain(3), [[1]])

    def test_repeated_member_rejected(self):
        with pytest.raises(GraphValidationError, match="repeats"):
            fuse_stages(chain(3), [[1, 1]])

    def test_unknown_member_rejected(self):
        with pytest.raises(GraphValidationError):
            fuse_stages(chain(3), [[1, 99]])

    def test_overlapping_runs_rejected(self):
        with pytest.raises(GraphValidationError):
            fuse_stages(chain(5), [[0, 1], [1, 2]])

    def test_non_adjacent_run_rejected(self):
        with pytest.raises(GraphValidationError):
            fuse_stages(chain(4), [[0, 2]])

    def test_escaping_internal_result_rejected(self):
        graph = chain(4)
        graph.connect(1, 3)  # op1's IR now escapes a [1, 2] run
        with pytest.raises(GraphValidationError, match="escape"):
            fuse_stages(graph, [[1, 2]])


class TestConservationProperties:
    """Seeded random fusion over the whole paper registry."""

    def random_runs(self, graph, rng, max_runs=3):
        """Valid runs: producer with exactly one consumer, that consumer
        having that sole producer as its only in-run hazard is checked by
        fuse_stages itself — here we only propose, and keep proposals
        that fuse_stages accepts one at a time."""
        runs, used = [], set()
        candidates = [
            (e.producer, e.consumer)
            for e in graph.edges()
            if len(graph.successors(e.producer)) == 1
        ]
        rng.shuffle(candidates)
        for producer, consumer in candidates:
            if len(runs) == max_runs:
                break
            if producer in used or consumer in used:
                continue
            try:
                fuse_stages(graph, [(producer, consumer)])
            except GraphValidationError:
                continue
            runs.append((producer, consumer))
            used.update((producer, consumer))
        return runs

    @pytest.mark.parametrize("workload_name", PAPER_BENCHMARKS)
    def test_totals_conserved_across_registry(self, workload_name):
        graph = load_workload(workload_name)
        rng = random.Random(hash(workload_name) & 0xFFFF)
        runs = self.random_runs(graph, rng)
        if not runs:
            pytest.skip(f"{workload_name}: no fusible pair")
        fused = fuse_stages(graph, runs)
        assert fused.total_work() == graph.total_work()
        assert sum(op.work for op in fused.operations()) == sum(
            op.work for op in graph.operations()
        )
        # Every original op is accounted for by exactly one fused vertex.
        assert sum(op.fused_count for op in fused.operations()) == (
            graph.num_vertices
        )
        assert fused.num_vertices == graph.num_vertices - len(runs)
        fused.validate()

    @pytest.mark.parametrize("workload_name", PAPER_BENCHMARKS[:4])
    def test_fusion_changes_fingerprint(self, workload_name):
        graph = load_workload(workload_name)
        runs = self.random_runs(graph, random.Random(7), max_runs=1)
        if not runs:
            pytest.skip(f"{workload_name}: no fusible pair")
        assert fuse_stages(graph, runs).fingerprint() != graph.fingerprint()


class TestSerialization:
    def test_fused_count_round_trips(self):
        fused = fuse_stages(chain(4), [[1, 2]])
        restored = graph_from_dict(graph_to_dict(fused))
        assert restored.operation(1).fused_count == 2
        assert restored.fingerprint() == fused.fingerprint()

    def test_unfused_serialization_unchanged(self):
        """fused_count == 1 must not appear in the wire format, so every
        pre-fusion golden file and fingerprint stays valid."""
        payload = graph_to_dict(chain(3))
        assert all("fused_count" not in op for op in payload["operations"])
