"""Tests for the series-parallel generator and its scheduling behavior."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.core.schedule import validate_periodic_schedule
from repro.graph.analysis import max_parallelism, parallelism_profile
from repro.graph.generators import generate_series_parallel
from repro.graph.taskgraph import GraphValidationError
from repro.pim.config import PimConfig


class TestStructure:
    def test_vertex_and_edge_counts(self):
        # per stage: 2*branches branch ops + 1 join; plus the source
        graph = generate_series_parallel(depth=3, branches=4)
        assert graph.num_vertices == 1 + 3 * (2 * 4 + 1)
        # per stage: branches fork edges + branches chain edges + branches join edges
        assert graph.num_edges == 3 * (3 * 4)

    def test_single_source_single_sink(self):
        graph = generate_series_parallel(2, 3)
        assert len(graph.sources()) == 1
        assert len(graph.sinks()) == 1

    def test_parallelism_matches_branches(self):
        graph = generate_series_parallel(2, 5)
        assert max_parallelism(graph) == 5

    def test_depth_scales(self):
        shallow = generate_series_parallel(1, 3)
        deep = generate_series_parallel(5, 3)
        assert len(parallelism_profile(deep)) > len(parallelism_profile(shallow))

    def test_invalid_params(self):
        with pytest.raises(GraphValidationError):
            generate_series_parallel(0, 3)
        with pytest.raises(GraphValidationError):
            generate_series_parallel(3, 0)

    def test_deterministic_per_seed(self):
        a = generate_series_parallel(2, 3, seed=7)
        b = generate_series_parallel(2, 3, seed=7)
        assert [op.execution_time for op in a.operations()] == [
            op.execution_time for op in b.operations()
        ]


class TestConclusionsHoldOnThisFamily:
    """The paper's conclusions are not artifacts of the random generator."""

    @given(
        depth=st.integers(min_value=1, max_value=4),
        branches=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_paraconv_wins_on_series_parallel_graphs(self, depth, branches, seed):
        graph = generate_series_parallel(depth, branches, seed=seed)
        config = PimConfig(num_pes=16, iterations=200)
        para = ParaConv(config).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        validate_periodic_schedule(para.schedule)
        assert para.total_time() <= sparta.total_time()
