"""Serialization round-trip tests."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import SyntheticGraphGenerator
from repro.graph.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.graph.taskgraph import GraphValidationError


def graphs_equal(a, b) -> bool:
    if (a.name, a.num_vertices, a.num_edges) != (b.name, b.num_vertices, b.num_edges):
        return False
    for left, right in zip(a.operations(), b.operations()):
        if left != right:
            return False
    for left, right in zip(a.edges(), b.edges()):
        if left != right:
            return False
    return True


class TestRoundTrip:
    def test_dict_round_trip(self, diamond_graph):
        restored = graph_from_dict(graph_to_dict(diamond_graph))
        assert graphs_equal(diamond_graph, restored)

    def test_json_file_round_trip(self, figure2_graph, tmp_path):
        path = tmp_path / "graph.json"
        graph_to_json(figure2_graph, path)
        restored = graph_from_json(path)
        assert graphs_equal(figure2_graph, restored)

    def test_json_is_pretty_and_versioned(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.json"
        graph_to_json(diamond_graph, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["name"] == "diamond"
        assert len(payload["operations"]) == 4

    def test_period_hint_preserved(self, diamond_graph):
        diamond_graph.period_hint = 12
        restored = graph_from_dict(graph_to_dict(diamond_graph))
        assert restored.period_hint == 12

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_random_graphs(self, n, seed):
        generator = SyntheticGraphGenerator()
        capacity = generator._capacity(n, generator._window(n))
        graph = generator.generate(n, min(n - 1 + n // 2, capacity), seed=seed)
        restored = graph_from_dict(graph_to_dict(graph))
        assert graphs_equal(graph, restored)


class TestErrors:
    def test_bad_version_rejected(self, diamond_graph):
        payload = graph_to_dict(diamond_graph)
        payload["format_version"] = 99
        with pytest.raises(GraphValidationError, match="version"):
            graph_from_dict(payload)

    def test_invalid_structure_rejected(self):
        payload = {
            "format_version": 1,
            "name": "bad",
            "operations": [{"op_id": 0}, {"op_id": 1}],
            "edges": [
                {"producer": 0, "consumer": 1},
                {"producer": 1, "consumer": 0},
            ],
        }
        with pytest.raises(GraphValidationError, match="cycle"):
            graph_from_dict(payload)

    def test_empty_payload_rejected(self):
        with pytest.raises(GraphValidationError):
            graph_from_dict({"format_version": 1, "name": "empty"})
