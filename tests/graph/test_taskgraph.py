"""Unit tests for the core task-graph data structures."""

import pytest

from repro.graph.taskgraph import (
    GraphValidationError,
    IntermediateResult,
    Operation,
    OperationKind,
    TaskGraph,
    linear_chain,
)


class TestOperation:
    def test_defaults(self):
        op = Operation(op_id=3)
        assert op.name == "T3"
        assert op.kind is OperationKind.CONV
        assert op.execution_time == 1

    def test_negative_id_rejected(self):
        with pytest.raises(GraphValidationError):
            Operation(op_id=-1)

    def test_zero_execution_time_rejected(self):
        with pytest.raises(GraphValidationError):
            Operation(op_id=0, execution_time=0)

    def test_negative_work_rejected(self):
        with pytest.raises(GraphValidationError):
            Operation(op_id=0, work=-5)

    def test_with_execution_time(self):
        op = Operation(op_id=0, execution_time=2, name="conv1")
        changed = op.with_execution_time(7)
        assert changed.execution_time == 7
        assert changed.name == "conv1"
        assert op.execution_time == 2  # original untouched

    def test_kind_is_compute(self):
        assert OperationKind.CONV.is_compute
        assert OperationKind.POOL.is_compute
        assert not OperationKind.INPUT.is_compute
        assert not OperationKind.OUTPUT.is_compute


class TestIntermediateResult:
    def test_key(self):
        edge = IntermediateResult(producer=1, consumer=2)
        assert edge.key == (1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphValidationError):
            IntermediateResult(producer=1, consumer=1)

    def test_non_positive_size_rejected(self):
        with pytest.raises(GraphValidationError):
            IntermediateResult(producer=0, consumer=1, size_bytes=0)

    def test_profit_ordering_enforced(self):
        # P_alpha (cache) must dominate P_beta (eDRAM)
        with pytest.raises(GraphValidationError):
            IntermediateResult(
                producer=0, consumer=1, profit_cache=1, profit_edram=5
            )

    def test_negative_profit_rejected(self):
        with pytest.raises(GraphValidationError):
            IntermediateResult(
                producer=0, consumer=1, profit_cache=-1, profit_edram=-2
            )


class TestTaskGraphConstruction:
    def test_duplicate_op_id_rejected(self):
        graph = TaskGraph()
        graph.add_op(0)
        with pytest.raises(GraphValidationError):
            graph.add_op(0)

    def test_edge_requires_existing_endpoints(self):
        graph = TaskGraph()
        graph.add_op(0)
        with pytest.raises(GraphValidationError):
            graph.connect(0, 1)
        with pytest.raises(GraphValidationError):
            graph.connect(2, 0)

    def test_duplicate_edge_rejected(self):
        graph = TaskGraph()
        graph.add_op(0)
        graph.add_op(1)
        graph.connect(0, 1)
        with pytest.raises(GraphValidationError):
            graph.connect(0, 1)

    def test_counts(self, diamond_graph):
        assert diamond_graph.num_vertices == 4
        assert diamond_graph.num_edges == 4
        assert len(diamond_graph) == 4

    def test_contains_and_iter(self, diamond_graph):
        assert 0 in diamond_graph
        assert 99 not in diamond_graph
        assert [op.op_id for op in diamond_graph] == [0, 1, 2, 3]

    def test_unknown_lookup_raises(self, diamond_graph):
        with pytest.raises(GraphValidationError):
            diamond_graph.operation(42)
        with pytest.raises(GraphValidationError):
            diamond_graph.edge(0, 3)


class TestTaskGraphTopology:
    def test_sources_and_sinks(self, diamond_graph):
        assert diamond_graph.sources() == [0]
        assert diamond_graph.sinks() == [3]

    def test_degrees(self, diamond_graph):
        assert diamond_graph.out_degree(0) == 2
        assert diamond_graph.in_degree(3) == 2
        assert diamond_graph.predecessors(3) == [1, 2]
        assert diamond_graph.successors(0) == [1, 2]

    def test_in_out_edges(self, diamond_graph):
        keys = {e.key for e in diamond_graph.out_edges(0)}
        assert keys == {(0, 1), (0, 2)}
        keys = {e.key for e in diamond_graph.in_edges(3)}
        assert keys == {(1, 3), (2, 3)}

    def test_topological_order_valid(self, diamond_graph):
        order = diamond_graph.topological_order()
        position = {op: idx for idx, op in enumerate(order)}
        for edge in diamond_graph.edges():
            assert position[edge.producer] < position[edge.consumer]

    def test_topological_order_deterministic(self, figure2_graph):
        assert (
            figure2_graph.topological_order()
            == figure2_graph.topological_order()
        )

    def test_cycle_detected(self):
        graph = TaskGraph()
        graph.add_op(0)
        graph.add_op(1)
        graph.connect(0, 1)
        graph.connect(1, 0)
        assert not graph.is_acyclic()
        with pytest.raises(GraphValidationError, match="cycle"):
            graph.validate()

    def test_empty_graph_invalid(self):
        with pytest.raises(GraphValidationError, match="empty"):
            TaskGraph().validate()

    def test_work_accounting(self, diamond_graph):
        assert diamond_graph.total_work() == 6
        assert diamond_graph.max_execution_time() == 2
        assert diamond_graph.total_intermediate_bytes() == 2 * 1024 + 2 * 2048


class TestTaskGraphDerivation:
    def test_copy_is_independent(self, diamond_graph):
        clone = diamond_graph.copy()
        clone.add_op(10)
        assert 10 not in diamond_graph
        assert clone.num_edges == diamond_graph.num_edges

    def test_subgraph_induced(self, figure2_graph):
        sub = figure2_graph.subgraph([0, 1, 3])
        assert sub.num_vertices == 3
        assert {e.key for e in sub.edges()} == {(0, 1), (1, 3)}

    def test_subgraph_unknown_id_raises(self, figure2_graph):
        with pytest.raises(GraphValidationError):
            figure2_graph.subgraph([0, 77])

    def test_relabelled_compacts_ids(self):
        graph = TaskGraph()
        graph.add_op(10, execution_time=2)
        graph.add_op(20, execution_time=3)
        graph.connect(10, 20, size_bytes=64)
        flat = graph.relabelled()
        assert [op.op_id for op in flat.operations()] == [0, 1]
        assert flat.edge(0, 1).size_bytes == 64
        assert flat.total_work() == graph.total_work()

    def test_linear_chain(self):
        chain = linear_chain([1, 2, 3])
        assert chain.num_vertices == 3
        assert chain.num_edges == 2
        assert chain.sources() == [0]
        assert chain.sinks() == [2]
        assert chain.total_work() == 6

    def test_repr(self, diamond_graph):
        text = repr(diamond_graph)
        assert "diamond" in text
        assert "vertices=4" in text
