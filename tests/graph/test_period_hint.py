"""Regression tests pinning ``period_hint`` semantics across rewrites.

The hint is a statement about a graph's *execution times*: it must scale
with them (``scale_execution_times``), survive rewrites that leave them
untouched (``with_uniform_sizes``, ``prune_transitive_edges``), and be
dropped by fusing rewrites that change scheduling granularity
(``fuse_stages``, ``coarsen_chains`` when anything actually fused).
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.graph.transforms import (
    coarsen_chains,
    fuse_stages,
    prune_transitive_edges,
    scale_execution_times,
    with_uniform_sizes,
)


def hinted_chain(stages: int = 4, hint: int = 10) -> TaskGraph:
    graph = TaskGraph(name="hinted", period_hint=hint)
    for idx in range(stages):
        graph.add_op(idx, execution_time=3)
    for idx in range(stages - 1):
        graph.connect(idx, idx + 1, size_bytes=128)
    graph.validate()
    return graph


def branchy_graph(hint: int = 10) -> TaskGraph:
    """Diamond: no linear chain for coarsen_chains to fuse."""
    graph = TaskGraph(name="branchy", period_hint=hint)
    for idx in range(4):
        graph.add_op(idx, execution_time=2)
    graph.connect(0, 1)
    graph.connect(0, 2)
    graph.connect(1, 3)
    graph.connect(2, 3)
    graph.validate()
    return graph


class TestScaleExecutionTimes:
    def test_hint_scales_up_with_times(self):
        scaled = scale_execution_times(hinted_chain(hint=10), 2.0)
        assert scaled.period_hint == 20

    def test_hint_scales_down_with_times(self):
        scaled = scale_execution_times(hinted_chain(hint=10), 0.5)
        assert scaled.period_hint == 5

    def test_hint_floors_at_one(self):
        scaled = scale_execution_times(hinted_chain(hint=10), 0.01)
        assert scaled.period_hint == 1

    def test_hint_rounding_matches_time_rounding(self):
        scaled = scale_execution_times(hinted_chain(hint=3), 0.5)
        assert scaled.period_hint == round(3 * 0.5)

    def test_no_hint_stays_none(self):
        graph = hinted_chain()
        bare = TaskGraph(name="bare")
        for op in graph.operations():
            bare.add_operation(op)
        for edge in graph.edges():
            bare.add_edge(edge)
        assert scale_execution_times(bare, 2.0).period_hint is None

    def test_scaled_hint_stays_feasible(self):
        """The old bug: a verbatim hint is infeasibly small after 10x."""
        graph = hinted_chain(hint=4)  # p >= max c_i = 3: feasible
        scaled = scale_execution_times(graph, 10.0)
        max_time = max(op.execution_time for op in scaled.operations())
        assert scaled.period_hint >= max_time


class TestSizeOnlyRewrites:
    def test_uniform_sizes_keeps_hint(self):
        assert with_uniform_sizes(hinted_chain(hint=7), 64).period_hint == 7

    def test_transitive_reduction_keeps_hint(self):
        graph = branchy_graph(hint=9)
        assert prune_transitive_edges(graph).period_hint == 9


class TestFusingRewrites:
    def test_fuse_stages_drops_hint(self):
        fused = fuse_stages(hinted_chain(hint=10), [(0, 1)])
        assert fused.period_hint is None

    def test_fuse_stages_noop_keeps_hint(self):
        fused = fuse_stages(hinted_chain(hint=10), [])
        assert fused.period_hint == 10

    def test_coarsen_chains_drops_hint_when_fusing(self):
        coarse = coarsen_chains(hinted_chain(hint=10))
        assert coarse.num_vertices == 1  # the chain fused
        assert coarse.period_hint is None

    def test_coarsen_chains_noop_keeps_hint(self):
        coarse = coarsen_chains(branchy_graph(hint=10))
        assert coarse.num_vertices == 4  # nothing fused
        assert coarse.period_hint == 10


class TestRandwiredLowering:
    def test_randwired_graphs_carry_no_stale_hint(self):
        from repro.graph.randwired import randwired_benchmark

        assert randwired_benchmark("randwired-er").period_hint is None
