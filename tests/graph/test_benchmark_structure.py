"""Structural snapshots of the twelve regenerated paper benchmarks.

The graphs are seeded, so their structure is part of the reproduction's
published record (the golden Table 1/2 artifacts depend on it). These
tests pin the structural statistics so an accidental generator change is
caught before it silently shifts every measured number.
"""

import pytest

from repro.graph.analysis import graph_statistics
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark

#: name -> (total_work, critical_path_length, depth) of the seeded graphs.
EXPECTED_STRUCTURE = {
    "cat": (17, 15, 8),
    "car": (27, 15, 8),
    "flower": (45, 24, 12),
    "character-1": (81, 38, 21),
    "character-2": (91, 34, 20),
    "image-compress": (139, 52, 24),
    "stock-predict": (175, 52, 22),
    "string-matching": (203, 54, 25),
    "shortest-path": (374, 46, 24),
    "speech-1": (515, 68, 29),
    "speech-2": (759, 75, 32),
    "protein": (1109, 75, 34),
}


class TestBenchmarkStructure:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_SIZES))
    def test_structural_snapshot(self, name):
        stats = graph_statistics(synthetic_benchmark(name))
        work, cp, depth = EXPECTED_STRUCTURE[name]
        assert stats.total_work == work, f"{name}: work drifted"
        assert stats.critical_path_length == cp, f"{name}: cp drifted"
        assert stats.depth == depth, f"{name}: depth drifted"

    def test_work_grows_with_scale(self):
        works = [EXPECTED_STRUCTURE[name][0] for name in BENCHMARK_SIZES]
        assert works == sorted(works)

    def test_depth_well_below_size(self):
        # layered CNN-like graphs, not chains: depth << |V| for large ones
        for name, (_, _, depth) in EXPECTED_STRUCTURE.items():
            num_vertices = BENCHMARK_SIZES[name][0]
            if num_vertices > 100:
                assert depth < num_vertices / 3
