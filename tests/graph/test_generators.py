"""Tests for the synthetic graph generators, including hypothesis checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import (
    BENCHMARK_SIZES,
    GeneratorParams,
    SyntheticGraphGenerator,
    all_synthetic_benchmarks,
    synthetic_benchmark,
)
from repro.graph.taskgraph import GraphValidationError


class TestGeneratorParams:
    def test_defaults_valid(self):
        GeneratorParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"locality": 0.0},
            {"locality": 1.5},
            {"min_exec": 0},
            {"max_exec": 0},
            {"min_size": 0},
            {"max_size": 100, "min_size": 200},
            {"pool_fraction": 1.0},
            {"pool_fraction": -0.1},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(GraphValidationError):
            GeneratorParams(**kwargs)


class TestExactCounts:
    @pytest.mark.parametrize("name,size", sorted(BENCHMARK_SIZES.items()))
    def test_published_sizes_exact(self, name, size):
        graph = synthetic_benchmark(name)
        assert (graph.num_vertices, graph.num_edges) == size

    def test_all_benchmarks_ordered(self):
        graphs = all_synthetic_benchmarks()
        assert len(graphs) == 12
        sizes = [g.num_vertices for g in graphs]
        assert sizes == sorted(sizes)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(GraphValidationError, match="unknown benchmark"):
            synthetic_benchmark("no-such-benchmark")


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = synthetic_benchmark("flower")
        b = synthetic_benchmark("flower")
        assert [op.execution_time for op in a.operations()] == [
            op.execution_time for op in b.operations()
        ]
        assert [e.key for e in a.edges()] == [e.key for e in b.edges()]
        assert [e.size_bytes for e in a.edges()] == [
            e.size_bytes for e in b.edges()
        ]

    def test_different_seed_different_graph(self):
        a = synthetic_benchmark("flower", seed=1)
        b = synthetic_benchmark("flower", seed=2)
        assert [e.key for e in a.edges()] != [e.key for e in b.edges()]


class TestStructure:
    def test_acyclic_and_connected_backbone(self):
        graph = SyntheticGraphGenerator().generate(40, 100, seed=5)
        graph.validate()
        # every non-source vertex has at least one predecessor
        for op in graph.operations():
            if op.op_id != 0:
                assert graph.in_degree(op.op_id) >= 1 or op.op_id in graph.sources()
        assert len(graph.sources()) >= 1

    def test_execution_times_within_params(self):
        params = GeneratorParams(min_exec=2, max_exec=5)
        graph = SyntheticGraphGenerator(params).generate(30, 70, seed=1)
        for op in graph.operations():
            assert 2 <= op.execution_time <= 5

    def test_sizes_within_params(self):
        params = GeneratorParams(min_size=100, max_size=200)
        graph = SyntheticGraphGenerator(params).generate(30, 70, seed=1)
        for edge in graph.edges():
            assert 100 <= edge.size_bytes <= 200

    def test_too_few_edges_rejected(self):
        with pytest.raises(GraphValidationError, match="connected"):
            SyntheticGraphGenerator().generate(10, 5)

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphValidationError, match="exceed"):
            SyntheticGraphGenerator().generate(10, 1000)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(GraphValidationError):
            SyntheticGraphGenerator().generate(1, 0)


class TestPropertyBased:
    @given(
        n=st.integers(min_value=2, max_value=60),
        extra=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_graphs_are_valid_dags(self, n, extra, seed):
        generator = SyntheticGraphGenerator()
        capacity = generator._capacity(n, generator._window(n))
        edges = min(n - 1 + extra, capacity)
        graph = generator.generate(n, edges, seed=seed)
        graph.validate()  # raises on any structural problem
        assert graph.num_vertices == n
        assert graph.num_edges == edges
        order = graph.topological_order()
        assert len(order) == n
