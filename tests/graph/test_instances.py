"""Tests for periodic instances and graph unrolling."""

import pytest

from repro.graph.instances import (
    IntermediateInstance,
    OperationInstance,
    instance_dependencies,
    unroll,
)
from repro.graph.taskgraph import GraphValidationError


class TestInstanceArithmetic:
    def test_start_time_formula(self):
        # s_i^l = s_i + (l - 1) * p
        inst = OperationInstance(op_id=2, iteration=4)
        assert inst.start_time(base_start=3, period=10) == 33

    def test_deadline_formula(self):
        inst = OperationInstance(op_id=2, iteration=1)
        assert inst.deadline(base_deadline=7, period=10) == 7

    def test_iterations_one_based(self):
        with pytest.raises(GraphValidationError):
            OperationInstance(op_id=0, iteration=0)
        with pytest.raises(GraphValidationError):
            IntermediateInstance(producer=0, consumer=1, iteration=0)

    def test_str_forms(self):
        assert str(OperationInstance(3, 2)) == "V3^2"
        assert str(IntermediateInstance(1, 2, 5)) == "I(1,2)^5"


class TestUnroll:
    def test_instance_count(self, diamond_graph):
        instances, _ = unroll(diamond_graph, iterations=3)
        assert len(instances) == 4 * 3

    def test_zero_retiming_keeps_intra_iteration_edges(self, diamond_graph):
        _, edges = unroll(diamond_graph, iterations=2)
        for producer, consumer in edges:
            assert producer.iteration == consumer.iteration
        assert len(edges) == 4 * 2

    def test_retimed_edges_cross_iterations(self, diamond_graph):
        deltas = {(0, 1): 1, (0, 2): 2, (1, 3): 0, (2, 3): 0}
        _, edges = unroll(diamond_graph, 4, relative_retiming=deltas)
        for producer, consumer in edges:
            key = (producer.op_id, consumer.op_id)
            assert consumer.iteration - producer.iteration == deltas[key]

    def test_prologue_dependencies_fall_off(self, diamond_graph):
        # delta = 2 means consumers in iterations 1-2 are fed by the
        # prologue: those edges must not appear in the unrolled window.
        deltas = {(0, 1): 0, (0, 2): 2, (1, 3): 0, (2, 3): 0}
        _, edges = unroll(diamond_graph, 3, relative_retiming=deltas)
        crossing = [
            (p, c) for p, c in edges if (p.op_id, c.op_id) == (0, 2)
        ]
        assert len(crossing) == 1  # only iteration 3's consumer is in-window
        assert crossing[0][1].iteration == 3

    def test_unknown_edge_in_retiming_rejected(self, diamond_graph):
        with pytest.raises(GraphValidationError):
            unroll(diamond_graph, 2, relative_retiming={(7, 8): 1})

    def test_negative_retiming_rejected(self, diamond_graph):
        with pytest.raises(GraphValidationError):
            unroll(diamond_graph, 2, relative_retiming={(0, 1): -1})

    def test_zero_iterations_rejected(self, diamond_graph):
        with pytest.raises(GraphValidationError):
            unroll(diamond_graph, 0)

    def test_dependency_map(self, diamond_graph):
        deps = instance_dependencies(diamond_graph, 2)
        sink = OperationInstance(3, 1)
        producers = {p.op_id for p in deps[sink]}
        assert producers == {1, 2}
        # the source has no dependencies, so it never appears as a key
        assert OperationInstance(0, 1) not in deps
