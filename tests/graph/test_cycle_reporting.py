"""Cycle diagnostics: the error must name a concrete cycle.

A bare "contains a cycle" forces the user to bisect the graph by hand;
:meth:`TaskGraph.topological_order` now walks the leftover subgraph and
reports an actual cycle (bounded, deterministic member list).
"""

from __future__ import annotations

import pytest

from repro.graph.taskgraph import (
    CYCLE_REPORT_LIMIT,
    GraphValidationError,
    TaskGraph,
)


def _cycle_graph(members):
    graph = TaskGraph(name="cyclic")
    for op_id in members:
        graph.add_op(op_id)
    for a, b in zip(members, members[1:] + members[:1]):
        graph.connect(a, b)
    return graph


class TestCycleReporting:
    def test_two_cycle_named(self):
        graph = _cycle_graph([0, 1])
        with pytest.raises(GraphValidationError, match=r"0 -> 1 -> 0"):
            graph.topological_order()

    def test_three_cycle_named_in_order(self):
        graph = _cycle_graph([1, 2, 3])
        with pytest.raises(GraphValidationError) as excinfo:
            graph.topological_order()
        message = str(excinfo.value)
        assert "contains a cycle" in message  # backward-compatible prefix
        assert "1 -> 2 -> 3 -> 1" in message

    def test_cycle_behind_acyclic_prefix(self):
        # Vertices 0..2 are a legal chain feeding the cycle 3<->4; the
        # report must name the cycle, not the reachable prefix.
        graph = TaskGraph(name="prefixed")
        for op_id in range(5):
            graph.add_op(op_id)
        graph.connect(0, 1)
        graph.connect(1, 2)
        graph.connect(2, 3)
        graph.connect(3, 4)
        graph.connect(4, 3)
        with pytest.raises(GraphValidationError, match=r"3 -> 4 -> 3"):
            graph.topological_order()

    def test_long_cycle_truncated(self):
        members = list(range(CYCLE_REPORT_LIMIT + 8))
        graph = _cycle_graph(members)
        with pytest.raises(GraphValidationError) as excinfo:
            graph.topological_order()
        message = str(excinfo.value)
        assert "8 more" in message
        # Bounded output: at most CYCLE_REPORT_LIMIT members are listed.
        assert message.count("->") <= CYCLE_REPORT_LIMIT + 2

    def test_validate_carries_the_cycle(self):
        graph = _cycle_graph([5, 9])
        with pytest.raises(GraphValidationError, match="5 -> 9 -> 5"):
            graph.validate()
