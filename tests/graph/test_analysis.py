"""Tests for graph analysis helpers."""

import pytest

from repro.graph.analysis import (
    asap_levels,
    critical_path,
    critical_path_length,
    degree_histogram,
    graph_statistics,
    max_parallelism,
    parallelism_profile,
)
from repro.graph.taskgraph import TaskGraph


class TestCriticalPath:
    def test_chain_length_is_total_work(self, chain_graph):
        assert critical_path_length(chain_graph) == chain_graph.total_work()

    def test_diamond_takes_longer_branch(self, diamond_graph):
        # 1 + max(2, 2) + 1
        assert critical_path_length(diamond_graph) == 4

    def test_edge_latency_included(self, diamond_graph):
        length = critical_path_length(diamond_graph, edge_latency=lambda e: 3)
        assert length == 4 + 2 * 3  # two edges on the longest path

    def test_path_is_dependency_ordered(self, figure2_graph):
        path = critical_path(figure2_graph)
        assert len(path) == 3  # depth of the figure-2 graph
        for left, right in zip(path, path[1:]):
            assert figure2_graph.has_edge(left, right)

    def test_path_length_matches(self, figure2_graph):
        path = critical_path(figure2_graph)
        total = sum(
            figure2_graph.operation(op_id).execution_time for op_id in path
        )
        assert total == critical_path_length(figure2_graph)

    def test_empty_graph(self):
        assert critical_path(TaskGraph()) == []
        assert critical_path_length(TaskGraph()) == 0


class TestParallelism:
    def test_asap_levels(self, diamond_graph):
        levels = asap_levels(diamond_graph)
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_profile(self, diamond_graph):
        assert parallelism_profile(diamond_graph) == [1, 2, 1]

    def test_max_parallelism(self, figure2_graph):
        assert max_parallelism(figure2_graph) == 2

    def test_chain_has_no_parallelism(self, chain_graph):
        assert max_parallelism(chain_graph) == 1

    def test_empty(self):
        assert parallelism_profile(TaskGraph()) == []
        assert max_parallelism(TaskGraph()) == 0


class TestHistogramsAndStats:
    def test_degree_histogram(self, diamond_graph):
        hist = degree_histogram(diamond_graph)
        assert hist["out"] == {2: 1, 1: 2, 0: 1}
        assert hist["in"] == {0: 1, 1: 2, 2: 1}

    def test_graph_statistics(self, figure2_graph):
        stats = graph_statistics(figure2_graph)
        assert stats.name == "figure2"
        assert stats.num_vertices == 5
        assert stats.num_edges == 6
        assert stats.total_work == 5
        assert stats.critical_path_length == 3
        assert stats.max_parallelism == 2
        assert stats.depth == 3
        assert stats.avg_out_degree == pytest.approx(6 / 5)

    def test_as_row_shape(self, figure2_graph):
        row = graph_statistics(figure2_graph).as_row()
        assert row[0] == "figure2"
        assert len(row) == 8
