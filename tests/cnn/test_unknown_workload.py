"""Typed unknown-workload rejection across the registry and the CLI."""

from __future__ import annotations

import pytest

from repro.cnn.workloads import (
    RANDWIRED_BENCHMARKS,
    WORKLOADS,
    UnknownWorkloadError,
    load_workload,
)
from repro.graph.taskgraph import GraphValidationError


class TestUnknownWorkloadError:
    def test_typed_error_raised(self):
        with pytest.raises(UnknownWorkloadError):
            load_workload("catz")

    def test_is_a_graph_validation_error(self):
        # Backward compatibility: callers catching the old type keep working.
        with pytest.raises(GraphValidationError, match="unknown workload"):
            load_workload("catz")

    def test_message_enumerates_registry(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            load_workload("catz")
        message = str(excinfo.value)
        for name in ("cat", "protein", "randwired-er"):
            assert name in message

    def test_carries_structured_fields(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            load_workload("catz")
        assert excinfo.value.name == "catz"
        assert excinfo.value.choices == sorted(WORKLOADS)

    def test_randwired_names_are_loadable(self):
        for name in RANDWIRED_BENCHMARKS:
            assert load_workload(name).num_vertices > 2


class TestMainCli:
    def test_unknown_workload_exits_nonzero(self, capsys):
        from repro.__main__ import main

        exit_code = main(["catz"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "cat" in err  # the registry is enumerated for the user

    def test_randwired_workload_accepted(self, capsys):
        from repro.__main__ import main

        assert main(["randwired-er", "--pes", "8"]) == 0
        assert "randwired-er" in capsys.readouterr().out
