"""Tests for the classic CNN builders (LeNet-5, AlexNet, VGG-16)."""

import pytest

from repro.cnn.layers import TensorShape
from repro.cnn.models import (
    MODEL_BUILDERS,
    build_alexnet,
    build_lenet5,
    build_vgg16,
)
from repro.cnn.partition import partition_network


class TestLeNet5:
    @pytest.fixture(scope="class")
    def net(self):
        return build_lenet5()

    def test_classic_geometry(self, net):
        info = net.infer_shapes()
        assert info["c1"].output_shape == TensorShape(6, 28, 28)
        assert info["s2"].output_shape == TensorShape(6, 14, 14)
        assert info["c3"].output_shape == TensorShape(16, 10, 10)
        assert info["c5"].output_shape == TensorShape(120, 1, 1)
        assert info["output"].output_shape == TensorShape(10, 1, 1)

    def test_mac_count_published_band(self, net):
        # LeNet-5 is roughly 0.3-0.5 MMACs per inference
        assert 2e5 < net.total_macs() < 8e5


class TestAlexNet:
    @pytest.fixture(scope="class")
    def net(self):
        return build_alexnet()

    def test_feature_geometry(self, net):
        info = net.infer_shapes()
        assert info["conv1"].output_shape == TensorShape(96, 55, 55)
        assert info["pool2"].output_shape == TensorShape(256, 13, 13)
        assert info["pool5"].output_shape == TensorShape(256, 6, 6)
        assert info["fc8"].output_shape == TensorShape(1000, 1, 1)

    def test_mac_count_published_band(self, net):
        # AlexNet inference is ~0.7-1.2 GMACs depending on accounting
        assert 0.6e9 < net.total_macs() < 1.5e9

    def test_custom_class_count(self):
        net = build_alexnet(num_classes=17)
        assert net.infer_shapes()["fc8"].output_shape.channels == 17


class TestVgg16:
    @pytest.fixture(scope="class")
    def net(self):
        return build_vgg16()

    def test_thirteen_convolutions(self, net):
        convs = [n for n in net.layer_names() if n.startswith("conv")]
        assert len(convs) == 13

    def test_feature_geometry(self, net):
        info = net.infer_shapes()
        assert info["pool5"].output_shape == TensorShape(512, 7, 7)
        assert info["fc8"].output_shape == TensorShape(1000, 1, 1)

    def test_mac_count_published_band(self, net):
        # VGG-16 inference is ~15.5 GMACs
        assert 14e9 < net.total_macs() < 17e9

    def test_convolutions_dominate(self, net):
        assert net.conv_mac_fraction() > 0.95


class TestModelWorkloads:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_models_partition_and_schedule(self, name):
        from repro import ParaConv, PimConfig

        graph = partition_network(MODEL_BUILDERS[name]())
        graph.validate()
        result = ParaConv(PimConfig(num_pes=16, iterations=100)).run(graph)
        assert result.total_time() > 0

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_registered_as_workloads(self, name):
        from repro.cnn.workloads import WORKLOADS

        assert name in WORKLOADS
