"""Property tests: random layer stacks always partition to valid graphs."""

from hypothesis import given, settings, strategies as st

from repro.cnn.layers import (
    Concat,
    Conv2D,
    InputLayer,
    MaxPool2D,
    TensorShape,
)
from repro.cnn.network import Network
from repro.cnn.partition import PartitionConfig, partition_network
from repro.core.paraconv import ParaConv
from repro.core.schedule import validate_periodic_schedule
from repro.pim.config import PimConfig


@st.composite
def random_networks(draw):
    """A random branchy CNN: stem, optional two-branch blocks, pools."""
    size = draw(st.sampled_from([16, 32]))
    net = Network(name="random-net")
    tip = net.add("input", InputLayer(TensorShape(3, size, size)))
    index = 0
    for _block in range(draw(st.integers(min_value=1, max_value=4))):
        index += 1
        kind = draw(st.sampled_from(["conv", "pool", "branch"]))
        if kind == "conv":
            channels = draw(st.sampled_from([4, 8, 16]))
            tip = net.add(f"conv{index}", Conv2D(channels, 3, padding=1), [tip])
        elif kind == "pool":
            # avoid collapsing below 2x2
            shape = net.infer_shapes()[tip].output_shape
            if shape.height >= 4:
                tip = net.add(f"pool{index}", MaxPool2D(2), [tip])
        else:
            left = net.add(f"bl{index}", Conv2D(8, 1), [tip])
            right = net.add(f"br{index}", Conv2D(8, 3, padding=1), [tip])
            tip = net.add(f"cat{index}", Concat(), [left, right])
    # guarantee at least one compute layer exists
    net.add("head", Conv2D(4, 1), [tip])
    return net


class TestPartitionProperties:
    @given(network=random_networks())
    @settings(max_examples=25, deadline=None)
    def test_partitions_are_valid_dags(self, network):
        graph = partition_network(network, PartitionConfig())
        graph.validate()
        assert graph.num_vertices >= 1
        for edge in graph.edges():
            assert 256 <= edge.size_bytes <= 4096  # clamp respected
        for op in graph.operations():
            assert 1 <= op.execution_time <= 4

    @given(network=random_networks(), splits=st.sampled_from([1, 2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_partitions_schedule_end_to_end(self, network, splits):
        config = PartitionConfig(macs_per_task=50_000, max_splits=splits)
        graph = partition_network(network, config)
        if graph.num_vertices < 2:
            return  # single-task networks have nothing to schedule
        result = ParaConv(PimConfig(num_pes=8, iterations=100)).run(graph)
        validate_periodic_schedule(result.schedule)
