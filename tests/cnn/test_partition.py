"""Tests for the network-to-task-graph partitioner."""

import pytest

from repro.cnn.googlenet import googlenet_prefix
from repro.cnn.layers import (
    Concat,
    Conv2D,
    InputLayer,
    MaxPool2D,
    TensorShape,
)
from repro.cnn.network import Network, NetworkError
from repro.cnn.partition import PartitionConfig, partition_network
from repro.graph.taskgraph import OperationKind


def branchy_net() -> Network:
    net = Network(name="branchy")
    x = net.add("input", InputLayer(TensorShape(8, 16, 16)))
    a = net.add("conv_a", Conv2D(8, 3, padding=1), [x])
    b = net.add("conv_b", Conv2D(8, 1), [x])
    m = net.add("merge", Concat(), [a, b])
    net.add("pool", MaxPool2D(2), [m])
    net.add("conv_c", Conv2D(4, 1), ["pool"])
    return net


class TestPartitionConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"macs_per_task": 0},
            {"macs_per_time_unit": 0},
            {"max_splits": 0},
            {"max_execution_time": 0},
            {"min_ir_bytes": 0},
            {"min_ir_bytes": 100, "max_ir_bytes": 50},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(NetworkError):
            PartitionConfig(**kwargs)


class TestPartitionStructure:
    def test_compute_layers_become_tasks(self):
        graph = partition_network(branchy_net())
        names = {op.name for op in graph.operations()}
        assert {"conv_a", "conv_b", "pool", "conv_c"} <= names
        # input/concat are pass-through, not tasks
        assert "input" not in names
        assert "merge" not in names

    def test_kinds_assigned(self):
        graph = partition_network(branchy_net())
        kinds = {op.name: op.kind for op in graph.operations()}
        assert kinds["conv_a"] is OperationKind.CONV
        assert kinds["pool"] is OperationKind.POOL

    def test_concat_routes_edges_through(self):
        graph = partition_network(branchy_net())
        by_name = {op.name: op.op_id for op in graph.operations()}
        # pool must read from both branches directly
        preds = set(graph.predecessors(by_name["pool"]))
        assert preds == {by_name["conv_a"], by_name["conv_b"]}

    def test_graph_validates(self):
        graph = partition_network(branchy_net())
        graph.validate()
        assert graph.sources()  # at least one source task

    def test_ir_sizes_clamped(self):
        config = PartitionConfig(min_ir_bytes=512, max_ir_bytes=1024)
        graph = partition_network(branchy_net(), config)
        for edge in graph.edges():
            assert 512 <= edge.size_bytes <= 1024

    def test_execution_times_clamped(self):
        config = PartitionConfig(max_execution_time=2)
        graph = partition_network(branchy_net(), config)
        for op in graph.operations():
            assert 1 <= op.execution_time <= 2


class TestSplitting:
    def test_large_layers_split(self):
        # Tiny budget forces every conv above it to split into channel groups
        config = PartitionConfig(macs_per_task=1000, max_splits=4)
        graph = partition_network(branchy_net(), config)
        split_names = [op.name for op in graph.operations() if "#" in op.name]
        assert split_names  # something split
        # splits are capped
        from collections import Counter

        bases = Counter(name.split("#")[0] for name in split_names)
        assert all(count <= 4 for count in bases.values())

    def test_conv_consumers_fan_in_to_all_producer_slices(self):
        config = PartitionConfig(macs_per_task=1000, max_splits=2)
        graph = partition_network(branchy_net(), config)
        by_name = {op.name: op.op_id for op in graph.operations()}
        # conv_c reduces over all input channels: it must see every pool task
        pool_ids = [i for n, i in by_name.items() if n.startswith("pool")]
        conv_c_ids = [i for n, i in by_name.items() if n.startswith("conv_c")]
        for consumer in conv_c_ids:
            assert set(graph.predecessors(consumer)) == set(pool_ids)


class TestGoogLeNetPartition:
    def test_prefix_partition_is_schedulable(self):
        graph = partition_network(googlenet_prefix(2))
        graph.validate()
        assert graph.num_vertices > 15
        assert graph.num_edges >= graph.num_vertices - 1

    def test_full_googlenet_partition_scales(self):
        from repro.cnn.googlenet import build_googlenet

        graph = partition_network(build_googlenet())
        graph.validate()
        # 59 compute layers, many split: expect a substantial graph
        assert graph.num_vertices > 59
        assert graph.num_edges > graph.num_vertices
