"""Tests for the CNN layer algebra (shape inference and work accounting)."""

import pytest

from repro.cnn.layers import (
    AvgPool2D,
    Concat,
    Conv2D,
    Flatten,
    FullyConnected,
    InputLayer,
    LayerError,
    LocalResponseNorm,
    MaxPool2D,
    TensorShape,
)


class TestTensorShape:
    def test_elements_and_bytes(self):
        shape = TensorShape(3, 4, 5)
        assert shape.elements == 60
        assert shape.bytes() == 120  # 16-bit default
        assert shape.bytes(element_bytes=4) == 240

    def test_non_positive_rejected(self):
        with pytest.raises(LayerError):
            TensorShape(0, 4, 4)

    def test_str(self):
        assert str(TensorShape(64, 56, 56)) == "64x56x56"


class TestConv2D:
    def test_output_shape_same_padding(self):
        conv = Conv2D(out_channels=16, kernel=3, padding=1)
        out = conv.output_shape([TensorShape(3, 32, 32)])
        assert out == TensorShape(16, 32, 32)

    def test_output_shape_stride(self):
        # GoogLeNet conv1: 7x7/2 pad 3 on 224 -> 112
        conv = Conv2D(64, 7, stride=2, padding=3)
        out = conv.output_shape([TensorShape(3, 224, 224)])
        assert out == TensorShape(64, 112, 112)

    def test_macs_formula(self):
        conv = Conv2D(8, 3)
        src = TensorShape(4, 10, 10)
        out = conv.output_shape([src])
        expected = out.elements * 4 * 3 * 3
        assert conv.macs([src]) == expected

    def test_weight_bytes(self):
        conv = Conv2D(8, 3)
        assert conv.weight_bytes([TensorShape(4, 10, 10)]) == 8 * 4 * 9 * 2

    def test_kernel_too_big_rejected(self):
        conv = Conv2D(8, 9)
        with pytest.raises(LayerError, match="collapses"):
            conv.output_shape([TensorShape(3, 4, 4)])

    def test_bad_params_rejected(self):
        with pytest.raises(LayerError):
            Conv2D(0, 3)
        with pytest.raises(LayerError):
            Conv2D(8, 3, stride=0)
        with pytest.raises(LayerError):
            Conv2D(8, 3, padding=-1)

    def test_arity_enforced(self):
        conv = Conv2D(8, 3)
        with pytest.raises(LayerError, match="expects 1"):
            conv.output_shape([TensorShape(3, 8, 8), TensorShape(3, 8, 8)])


class TestPooling:
    def test_maxpool_default_stride_is_kernel(self):
        pool = MaxPool2D(2)
        out = pool.output_shape([TensorShape(16, 8, 8)])
        assert out == TensorShape(16, 4, 4)

    def test_overlapping_pool(self):
        # GoogLeNet pool: 3x3/2 pad 1 on 112 -> 56
        pool = MaxPool2D(3, stride=2, padding=1)
        out = pool.output_shape([TensorShape(64, 112, 112)])
        assert out == TensorShape(64, 56, 56)

    def test_channels_preserved(self):
        pool = AvgPool2D(7)
        out = pool.output_shape([TensorShape(1024, 7, 7)])
        assert out == TensorShape(1024, 1, 1)

    def test_pool_macs_light(self):
        pool = MaxPool2D(2)
        src = TensorShape(16, 8, 8)
        conv = Conv2D(16, 3, padding=1)
        assert pool.macs([src]) < conv.macs([src])


class TestOtherLayers:
    def test_lrn_preserves_shape(self):
        lrn = LocalResponseNorm()
        shape = TensorShape(64, 56, 56)
        assert lrn.output_shape([shape]) == shape
        assert lrn.macs([shape]) == shape.elements * 5

    def test_concat_sums_channels(self):
        concat = Concat()
        shapes = [TensorShape(64, 28, 28), TensorShape(128, 28, 28),
                  TensorShape(32, 28, 28)]
        assert concat.output_shape(shapes) == TensorShape(224, 28, 28)
        assert concat.macs(shapes) == 0
        assert not concat.is_compute

    def test_concat_spatial_mismatch_rejected(self):
        concat = Concat()
        with pytest.raises(LayerError, match="mismatch"):
            concat.output_shape(
                [TensorShape(64, 28, 28), TensorShape(64, 14, 14)]
            )

    def test_concat_needs_input(self):
        with pytest.raises(LayerError):
            Concat().output_shape([])

    def test_flatten(self):
        flat = Flatten()
        out = flat.output_shape([TensorShape(1024, 7, 7)])
        assert out == TensorShape(1024 * 49, 1, 1)
        assert not flat.is_compute

    def test_fully_connected(self):
        fc = FullyConnected(1000)
        src = TensorShape(1024, 1, 1)
        assert fc.output_shape([src]) == TensorShape(1000, 1, 1)
        assert fc.macs([src]) == 1024 * 1000
        assert fc.weight_bytes([src]) == 1024 * 1000 * 2

    def test_input_layer(self):
        layer = InputLayer(TensorShape(3, 224, 224))
        assert layer.output_shape([]) == TensorShape(3, 224, 224)
        assert layer.macs([]) == 0
        assert not layer.is_compute
