"""Tests for the workload registry."""

import pytest

from repro.cnn.workloads import PAPER_BENCHMARKS, WORKLOADS, load_workload
from repro.graph.generators import BENCHMARK_SIZES
from repro.graph.taskgraph import GraphValidationError


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        for name in BENCHMARK_SIZES:
            assert name in WORKLOADS
        assert PAPER_BENCHMARKS == list(BENCHMARK_SIZES)

    def test_googlenet_workloads_registered(self):
        assert "googlenet" in WORKLOADS
        assert "googlenet-small" in WORKLOADS

    def test_load_paper_benchmark(self):
        graph = load_workload("cat")
        assert (graph.num_vertices, graph.num_edges) == (9, 21)

    def test_load_googlenet_small(self):
        graph = load_workload("googlenet-small")
        graph.validate()
        assert graph.num_vertices > 20

    def test_load_is_deterministic(self):
        a = load_workload("car")
        b = load_workload("car")
        assert [e.key for e in a.edges()] == [e.key for e in b.edges()]

    def test_unknown_workload_rejected(self):
        with pytest.raises(GraphValidationError, match="unknown workload"):
            load_workload("imagenet-22k")
