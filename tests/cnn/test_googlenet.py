"""Tests for the GoogLeNet builder against published structure."""

import pytest

from repro.cnn.googlenet import (
    INCEPTION_PARAMS,
    build_googlenet,
    googlenet_prefix,
    inception_module,
)
from repro.cnn.layers import Conv2D, TensorShape
from repro.cnn.network import Network
from repro.cnn.layers import InputLayer


class TestFullNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return build_googlenet()

    def test_classifier_shape(self, net):
        info = net.infer_shapes()
        assert info["loss3/classifier"].output_shape == TensorShape(1000, 1, 1)

    def test_nine_inception_modules(self, net):
        concats = [n for n in net.layer_names() if n.endswith("/concat")]
        assert len(concats) == 9

    def test_inception_output_channels(self, net):
        # Szegedy et al. Table 1: 3a outputs 256 channels at 28x28.
        info = net.infer_shapes()
        assert info["inc3a/concat"].output_shape == TensorShape(256, 28, 28)
        # 4e outputs 832 at 14x14; 5b outputs 1024 at 7x7.
        assert info["inc4e/concat"].output_shape == TensorShape(832, 14, 14)
        assert info["inc5b/concat"].output_shape == TensorShape(1024, 7, 7)

    def test_global_pool_shape(self, net):
        info = net.infer_shapes()
        assert info["pool5/7x7_s1"].output_shape == TensorShape(1024, 1, 1)

    def test_total_macs_in_published_band(self, net):
        # GoogLeNet inference is ~1.5 GMAC (published 1.43-1.6 depending
        # on accounting); allow a generous band.
        total = net.total_macs()
        assert 1.0e9 < total < 2.5e9

    def test_convolutions_dominate_compute(self, net):
        # Paper Section 1: convolutions take about 90% of CNN operations.
        assert net.conv_mac_fraction() > 0.85

    def test_weight_footprint_megabytes(self, net):
        # ~7M params, 2 bytes each -> ~13-14 MB
        weights = net.total_weight_bytes()
        assert 8e6 < weights < 30e6


class TestInceptionModule:
    def test_branch_structure(self):
        net = Network()
        x = net.add("input", InputLayer(TensorShape(192, 28, 28)))
        out = inception_module(net, "t", x, INCEPTION_PARAMS["3a"])
        assert out == "inct/concat"
        info = net.infer_shapes()
        assert info[out].output_shape.channels == 64 + 128 + 32 + 32
        # 6 convolutions per module
        convs = [
            n for n in net.layer_names()
            if isinstance(net.layer(n), Conv2D)
        ]
        assert len(convs) == 6


class TestPrefix:
    def test_zero_modules(self):
        net = googlenet_prefix(0)
        assert not [n for n in net.layer_names() if "inc" in n]
        net.infer_shapes()

    def test_three_modules(self):
        net = googlenet_prefix(3)
        concats = [n for n in net.layer_names() if n.endswith("/concat")]
        assert len(concats) == 3
        net.infer_shapes()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            googlenet_prefix(10)
