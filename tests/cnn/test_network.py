"""Tests for the Network container."""

import pytest

from repro.cnn.layers import (
    Concat,
    Conv2D,
    InputLayer,
    MaxPool2D,
    TensorShape,
)
from repro.cnn.network import Network, NetworkError


def tiny_net() -> Network:
    net = Network(name="tiny")
    x = net.add("input", InputLayer(TensorShape(3, 16, 16)))
    a = net.add("conv_a", Conv2D(8, 3, padding=1), [x])
    b = net.add("conv_b", Conv2D(8, 1), [x])
    m = net.add("merge", Concat(), [a, b])
    net.add("pool", MaxPool2D(2), [m])
    return net


class TestConstruction:
    def test_duplicate_name_rejected(self):
        net = Network()
        net.add("input", InputLayer(TensorShape(3, 8, 8)))
        with pytest.raises(NetworkError, match="duplicate"):
            net.add("input", InputLayer(TensorShape(3, 8, 8)))

    def test_unknown_input_rejected(self):
        net = Network()
        with pytest.raises(NetworkError, match="unknown input"):
            net.add("conv", Conv2D(8, 3), ["nope"])

    def test_input_layer_takes_no_inputs(self):
        net = Network()
        net.add("a", InputLayer(TensorShape(3, 8, 8)))
        with pytest.raises(NetworkError, match="takes no inputs"):
            net.add("b", InputLayer(TensorShape(3, 8, 8)), ["a"])

    def test_non_input_needs_inputs(self):
        net = Network()
        with pytest.raises(NetworkError, match="needs inputs"):
            net.add("conv", Conv2D(8, 3))

    def test_topology_queries(self):
        net = tiny_net()
        assert net.inputs_of("merge") == ("conv_a", "conv_b")
        assert net.consumers_of("input") == ["conv_a", "conv_b"]
        assert net.sinks() == ["pool"]
        assert len(net) == 5


class TestInference:
    def test_shapes_propagate(self):
        info = tiny_net().infer_shapes()
        assert info["conv_a"].output_shape == TensorShape(8, 16, 16)
        assert info["merge"].output_shape == TensorShape(16, 16, 16)
        assert info["pool"].output_shape == TensorShape(16, 8, 8)

    def test_memoization(self):
        net = tiny_net()
        assert net.infer_shapes() is net.infer_shapes()

    def test_adding_layer_invalidates_cache(self):
        net = tiny_net()
        first = net.infer_shapes()
        net.add("pool2", MaxPool2D(2), ["pool"])
        second = net.infer_shapes()
        assert first is not second
        assert "pool2" in second

    def test_empty_network_rejected(self):
        with pytest.raises(NetworkError, match="empty"):
            Network().infer_shapes()

    def test_shape_error_names_layer(self):
        net = Network()
        x = net.add("input", InputLayer(TensorShape(3, 4, 4)))
        net.add("bigconv", Conv2D(8, 9), [x])
        with pytest.raises(NetworkError, match="bigconv"):
            net.infer_shapes()

    def test_totals(self):
        net = tiny_net()
        info = net.infer_shapes()
        assert net.total_macs() == sum(i.macs for i in info.values())
        assert net.total_weight_bytes() > 0

    def test_conv_mac_fraction_dominates(self):
        # convs do nearly all the work in this net
        assert tiny_net().conv_mac_fraction() > 0.9

    def test_describe_contains_layers(self):
        text = tiny_net().describe()
        assert "conv_a" in text
        assert "MaxPool2D" in text
