"""Fused-layer lowering through partition_network."""

import pytest

from repro.cnn.models import MODEL_BUILDERS
from repro.cnn.network import NetworkError
from repro.cnn.partition import FusionSpec, partition_network


@pytest.fixture(scope="module")
def lenet5():
    return MODEL_BUILDERS["lenet5"]()


@pytest.fixture(scope="module")
def vgg16():
    return MODEL_BUILDERS["vgg16"]()


def run_work(graph):
    """Summed task work per fused run label ('a+b#k' -> 'a+b')."""
    totals = {}
    for op in graph.operations():
        if op.fused_count > 1:
            label = op.name.split("#")[0]
            totals[label] = totals.get(label, 0) + op.work
    return totals


class TestNoOpSpec:
    def test_empty_spec_is_bit_identical(self, lenet5):
        plain = partition_network(lenet5)
        empty = partition_network(lenet5, fusion=FusionSpec())
        assert empty.fingerprint() == plain.fingerprint()

    def test_auto_without_conv_chains_is_noop(self, lenet5):
        # LeNet-5 alternates conv/pool, so Conv2D-chain auto-fusion
        # finds nothing and the lowering must be untouched.
        auto = partition_network(lenet5, fusion="auto")
        assert auto.fingerprint() == partition_network(lenet5).fingerprint()


class TestExplicitRuns:
    def test_conv_pool_run_fuses(self, lenet5):
        fused = partition_network(lenet5, fusion=FusionSpec.of(["c1", "s2"]))
        labels = {
            op.name.split("#")[0]
            for op in fused.operations()
            if op.fused_count > 1
        }
        assert labels == {"c1+s2"}

    def test_run_conserves_member_macs(self, lenet5):
        info = lenet5.infer_shapes()
        fused = partition_network(lenet5, fusion=FusionSpec.of(["c1", "s2"]))
        assert run_work(fused) == {
            "c1+s2": info["c1"].macs + info["s2"].macs
        }

    def test_singletons_lower_identically(self, lenet5):
        plain = {op.name: op for op in partition_network(lenet5).operations()}
        fused = partition_network(lenet5, fusion=FusionSpec.of(["c1", "s2"]))
        for op in fused.operations():
            if op.fused_count == 1:
                ref = plain[op.name]
                assert (op.work, op.execution_time, op.kind) == (
                    ref.work, ref.execution_time, ref.kind
                )

    def test_fusion_as_iterable_of_runs(self, lenet5):
        via_spec = partition_network(lenet5, fusion=FusionSpec.of(["c1", "s2"]))
        via_list = partition_network(lenet5, fusion=[["c1", "s2"]])
        assert via_list.fingerprint() == via_spec.fingerprint()


class TestAutoChains:
    def test_vgg16_auto_fuses_conv_runs(self, vgg16):
        info = vgg16.infer_shapes()
        plain = partition_network(vgg16)
        fused = partition_network(vgg16, fusion="auto")
        assert fused.num_vertices < plain.num_vertices
        totals = run_work(fused)
        assert totals  # auto found real runs
        for label, total in totals.items():
            assert total == sum(info[m].macs for m in label.split("+"))

    def test_max_run_bounds_chain_length(self, vgg16):
        fused = partition_network(
            vgg16, fusion=FusionSpec.auto_chains(max_run=3)
        )
        assert max(op.fused_count for op in fused.operations()) <= 3

    def test_fused_graph_validates(self, vgg16):
        partition_network(vgg16, fusion="auto").validate()


class TestErrors:
    def test_unknown_layer_rejected(self, lenet5):
        with pytest.raises(NetworkError, match="unknown"):
            partition_network(lenet5, fusion=[["c1", "ghost"]])

    def test_non_adjacent_run_rejected(self, lenet5):
        with pytest.raises(NetworkError):
            partition_network(lenet5, fusion=[["c1", "c3"]])

    def test_overlapping_runs_rejected(self, lenet5):
        with pytest.raises(NetworkError):
            partition_network(
                lenet5, fusion=[["c1", "s2"], ["s2", "c3"]]
            )

    def test_short_run_rejected(self, lenet5):
        with pytest.raises(NetworkError):
            partition_network(lenet5, fusion=[["c1"]])

    def test_unknown_fusion_string_rejected(self, lenet5):
        with pytest.raises(NetworkError, match="auto"):
            partition_network(lenet5, fusion="bogus")

    def test_max_run_must_allow_a_pair(self):
        with pytest.raises(NetworkError):
            FusionSpec.auto_chains(max_run=1)


class TestCompilability:
    def test_fused_plan_compiles_and_validates(self):
        from repro.core.paraconv import ParaConv
        from repro.pim.config import PimConfig

        network = MODEL_BUILDERS["alexnet"]()
        fused = partition_network(network, fusion="auto")
        plan = ParaConv(PimConfig(num_pes=16)).run(fused)
        assert plan.total_time() > 0
