"""Metamorphic negative tests: the validators must catch corrupted schedules.

A validator that accepts everything proves nothing. These tests take
pipeline-produced (valid) schedules, apply targeted corruptions, and
assert each one is rejected -- so the green correctness tests elsewhere
actually certify something.
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.paraconv import ParaConv
from repro.core.schedule import (
    PlacedOp,
    ScheduleError,
    validate_kernel,
    validate_periodic_schedule,
)
from repro.graph.generators import SyntheticGraphGenerator
from repro.pim.config import PimConfig


def fresh_result(seed=3, pes=8):
    graph = SyntheticGraphGenerator().generate(18, 30, seed=seed)
    return ParaConv(PimConfig(num_pes=pes, iterations=100)).run(graph)


def clone_schedule(result):
    schedule = copy.copy(result.schedule)
    schedule.retiming = dict(result.schedule.retiming)
    schedule.edge_retiming = dict(result.schedule.edge_retiming)
    schedule.placements = dict(result.schedule.placements)
    schedule.transfer_times = dict(result.schedule.transfer_times)
    schedule.kernel = copy.copy(result.schedule.kernel)
    schedule.kernel.placements = dict(result.schedule.kernel.placements)
    return schedule


class TestPeriodicValidatorCatchesCorruption:
    def test_baseline_is_valid(self):
        validate_periodic_schedule(fresh_result().schedule)

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_dropping_retiming_on_a_loaded_edge_is_caught(self, seed):
        result = fresh_result(seed=seed)
        schedule = clone_schedule(result)
        # find an edge that genuinely *requires* crossing iterations
        kernel = schedule.kernel
        loaded = [
            e.key for e in result.graph.edges()
            if kernel.finish(e.producer) + schedule.transfer_times[e.key]
            > kernel.start(e.consumer)
        ]
        if not loaded:
            return  # nothing to corrupt in this instance
        producer, consumer = loaded[0]
        # flatten the producer's retiming to the consumer's level: the
        # data now arrives too late unless the edge was trivially slack
        schedule.retiming[producer] = schedule.retiming[consumer]
        with pytest.raises(ScheduleError):
            validate_periodic_schedule(schedule)

    def test_inflating_transfer_time_is_caught(self):
        result = fresh_result()
        schedule = clone_schedule(result)
        key = next(iter(schedule.transfer_times))
        schedule.transfer_times[key] = schedule.period + 1
        with pytest.raises(ScheduleError, match="exceeds period"):
            validate_periodic_schedule(schedule)

    def test_reversing_an_edge_retiming_is_caught(self):
        result = fresh_result()
        schedule = clone_schedule(result)
        edge = result.graph.edges()[0]
        schedule.retiming[edge.producer] = 0
        schedule.retiming[edge.consumer] = 5
        with pytest.raises(ScheduleError):
            validate_periodic_schedule(schedule)

    def test_corrupting_edge_retiming_band_is_caught(self):
        result = fresh_result()
        schedule = clone_schedule(result)
        key = next(iter(schedule.edge_retiming))
        schedule.edge_retiming[key] = 10_000
        with pytest.raises(ScheduleError, match="illegal retiming"):
            validate_periodic_schedule(schedule)


class TestKernelValidatorCatchesCorruption:
    def test_shifting_an_op_onto_a_colleague_is_caught(self):
        result = fresh_result()
        kernel = copy.copy(result.schedule.kernel)
        kernel.placements = dict(kernel.placements)
        # find two ops on the same PE and make them collide
        by_pe = {}
        for placement in kernel.placements.values():
            by_pe.setdefault(placement.pe, []).append(placement)
        pe, ops = next((pe, v) for pe, v in by_pe.items() if len(v) >= 2)
        ops.sort(key=lambda p: p.start)
        first, second = ops[0], ops[1]
        kernel.placements[second.op_id] = PlacedOp(
            second.op_id, pe, first.start, first.start + second.duration
        )
        with pytest.raises(ScheduleError, match="overlap"):
            validate_kernel(result.graph, kernel, result.group_width)

    def test_stretching_an_op_is_caught(self):
        result = fresh_result()
        kernel = copy.copy(result.schedule.kernel)
        kernel.placements = dict(kernel.placements)
        placement = next(iter(kernel.placements.values()))
        kernel.placements[placement.op_id] = PlacedOp(
            placement.op_id, placement.pe, placement.start,
            placement.finish + 1,
        )
        with pytest.raises(ScheduleError):
            validate_kernel(result.graph, kernel, result.group_width)

    def test_dropping_an_op_is_caught(self):
        result = fresh_result()
        kernel = copy.copy(result.schedule.kernel)
        kernel.placements = dict(kernel.placements)
        kernel.placements.popitem()
        with pytest.raises(ScheduleError, match="mismatch"):
            validate_kernel(result.graph, kernel, result.group_width)


class TestExpansionVerifierCatchesCorruption:
    def test_verifier_accepts_then_rejects(self):
        from repro.core.expansion import expand, verify_expansion

        result = fresh_result()
        expanded = expand(result.schedule, iterations=4)
        verify_expansion(expanded)  # sanity: the real expansion passes
        # corrupt: pull one consumer instance earlier than its data
        loaded = [
            e for e in result.graph.edges()
            if result.schedule.transfer_times[e.key] > 0
            or result.schedule.relative_retiming(*e.key) > 0
        ]
        edge = loaded[0] if loaded else result.graph.edges()[0]
        victim = expanded.instance(edge.consumer, 2)
        producer = expanded.instance(edge.producer, 2)
        import dataclasses

        hacked = dataclasses.replace(
            victim,
            start=producer.start - 1,
            finish=producer.start - 1 + (victim.finish - victim.start),
        )
        expanded.instances[expanded.instances.index(victim)] = hacked
        with pytest.raises(ScheduleError):
            verify_expansion(expanded)
