"""Cross-cutting property-based invariants over random instances.

These are the strongest guarantees in the suite: for arbitrary generated
workloads and machines, the Para-CONV pipeline must produce semantically
valid, capacity-respecting, Theorem-3.1-conformant schedules, and the DP
must dominate the simpler allocators.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    AllocationProblem,
    dp_allocate,
    greedy_allocate,
    random_allocate,
)
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges
from repro.core.schedule import validate_periodic_schedule
from repro.core.scheduler import compact_kernel_schedule, load_balance_bound
from repro.graph.generators import GeneratorParams, SyntheticGraphGenerator
from repro.pim.config import PimConfig

machine_strategy = st.builds(
    PimConfig,
    num_pes=st.sampled_from([2, 4, 8, 16, 32]),
    cache_bytes_per_pe=st.sampled_from([0, 512, 2048, 8192]),
    edram_latency_factor=st.integers(min_value=2, max_value=10),
    iterations=st.just(100),
)


def _build_graph(n, extra, seed):
    generator = SyntheticGraphGenerator(GeneratorParams())
    capacity = generator._capacity(n, generator._window(n))
    edges = min(n - 1 + extra, capacity)
    return generator.generate(n, edges, seed=seed)


def graph_strategy():
    return st.builds(
        _build_graph,
        n=st.integers(min_value=4, max_value=60),
        extra=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )


class TestPipelineInvariants:
    @given(graph=graph_strategy(), config=machine_strategy)
    @settings(max_examples=40, deadline=None)
    def test_schedule_semantics_always_hold(self, graph, config):
        result = ParaConv(config, validate=False).run(graph)
        # run the full validator explicitly (pipeline had it disabled)
        validate_periodic_schedule(result.schedule)

    @given(graph=graph_strategy(), config=machine_strategy)
    @settings(max_examples=40, deadline=None)
    def test_theorem_31_per_edge(self, graph, config):
        result = ParaConv(config, validate=False).run(graph)
        kernel = result.schedule.kernel
        period = result.period
        for edge in graph.edges():
            transfer = result.schedule.transfer_times[edge.key]
            assert transfer <= period
            gap = kernel.finish(edge.producer) + transfer - kernel.start(
                edge.consumer
            )
            required = max(0, math.ceil(gap / period))
            assert required <= 2

    @given(graph=graph_strategy(), config=machine_strategy)
    @settings(max_examples=40, deadline=None)
    def test_capacity_and_bounds(self, graph, config):
        result = ParaConv(config, validate=False).run(graph)
        per_group = config.total_cache_slots // result.num_groups
        assert result.allocation.slots_used <= per_group
        assert result.period >= load_balance_bound(graph, result.group_width)
        assert result.group_width * result.num_groups <= config.num_pes
        assert result.prologue_time == result.max_retiming * result.period

    @given(graph=graph_strategy())
    @settings(max_examples=30, deadline=None)
    def test_dp_dominates_heuristics(self, graph):
        config = PimConfig(num_pes=8, cache_bytes_per_pe=1024, iterations=100)
        kernel = compact_kernel_schedule(graph, 8)
        timings = analyze_edges(graph, kernel, config)
        problem = AllocationProblem.from_timings(
            timings, config.total_cache_slots
        )
        dp = dp_allocate(problem).total_delta_r
        assert dp >= greedy_allocate(problem).total_delta_r
        assert dp >= random_allocate(problem, seed=5).total_delta_r

    @given(
        graph=graph_strategy(),
        pes=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=25, deadline=None)
    def test_more_pes_never_slower(self, graph, pes):
        slow = ParaConv(PimConfig(num_pes=pes, iterations=100), validate=False)
        fast = ParaConv(
            PimConfig(num_pes=pes * 2, iterations=100), validate=False
        )
        assert fast.run(graph).total_time() <= slow.run(graph).total_time() * 1.2


class TestBaselineInvariants:
    @given(graph=graph_strategy(), config=machine_strategy)
    @settings(max_examples=25, deadline=None)
    def test_sparta_never_faster_than_paraconv(self, graph, config):
        from repro.core.baseline import SpartaScheduler

        para = ParaConv(config, validate=False).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        # SPARTA pays demand-fetch stalls that retiming removes; on any
        # machine with a real eDRAM penalty its *steady state* cannot win.
        # The comparison excludes Para-CONV's one-off prologue R_max * p:
        # on tiny graphs with few iterations the prologue is not yet
        # amortized, and the paper's speedup claim is about the steady
        # state (the prologue cost vanishes as N grows).
        para_steady = para.total_time() - para.prologue_time
        assert para_steady <= sparta.total_time()
