"""Pipeline configuration, registry, CompileStats determinism and the
width-search lower bound."""

import json

import pytest

from repro.compiler import (
    ARTIFACTS,
    PASS_REGISTRY,
    CompileStats,
    PipelineConfig,
    PipelineConfigError,
    build_pass,
    transfer_critical_path,
    width_lower_bound,
)
from repro.core.allocation import dp_allocate
from repro.core.paraconv import ParaConv
from repro.core.scheduler import candidate_group_widths
from repro.pim.config import PimConfig

STANDARD_ORDER = [
    "validate-graph",
    "compact-kernel",
    "analyze-edges",
    "zero-dr-prepass",
    "dp-allocate",
    "solve-retiming",
    "emit-schedule",
    "validate-schedule",
]


class TestPipelineConfig:
    def test_standard_pipeline_order(self):
        config = PipelineConfig(allocator=dp_allocate)
        names = [p.name for p in config.build_passes()]
        assert names == STANDARD_ORDER

    def test_liveness_inserts_reweight_pass(self):
        config = PipelineConfig(allocator=dp_allocate, liveness_aware=True)
        names = [p.name for p in config.build_passes()]
        assert "liveness-reweight" in names
        assert names.index("liveness-reweight") == names.index("dp-allocate") + 1
        assert names.index("liveness-reweight") < names.index("solve-retiming")

    def test_validate_false_drops_schedule_validation(self):
        config = PipelineConfig(allocator=dp_allocate, validate=False)
        names = [p.name for p in config.build_passes()]
        assert "validate-schedule" not in names

    def test_registry_covers_standard_passes(self):
        for name in STANDARD_ORDER + ["liveness-reweight"]:
            assert name in PASS_REGISTRY

    def test_every_artifact_has_a_canonical_name(self):
        manager = PipelineConfig(allocator=dp_allocate).build_manager()
        produced = {
            artifact for p in manager.passes for artifact in p.produces
        }
        assert produced == set(ARTIFACTS)

    def test_build_pass_unknown_name_is_typed(self):
        with pytest.raises(PipelineConfigError):
            build_pass("lower-to-llvm")

    def test_build_pass_constructs_registered(self):
        p = build_pass("compact-kernel", order="lpt", validate=False)
        assert p.name == "compact-kernel"
        assert p.order == "lpt"


class TestCompileStatsDeterminism:
    def test_as_dict_keys_deterministic(self, figure2_graph, small_config):
        dicts = [
            ParaConv(small_config).run(figure2_graph).compile_stats.as_dict()
            for _ in range(2)
        ]
        # Same key structure, in the same (sorted) order, every compile.
        assert list(dicts[0]) == list(dicts[1])
        for a, b in zip(dicts[0]["pass_seconds"], dicts[1]["pass_seconds"]):
            assert a == b
        assert list(dicts[0]["pass_seconds"]) == sorted(dicts[0]["pass_seconds"])
        assert list(dicts[0]["pass_runs"]) == sorted(dicts[0]["pass_runs"])
        # And the non-timing facts are bit-identical run to run.
        for d in dicts:
            for volatile in ("pass_seconds", "per_width_seconds",
                             "total_seconds"):
                d.pop(volatile)
        assert dicts[0] == dicts[1]

    def test_as_dict_is_json_compatible(self, figure2_graph, small_config):
        stats = ParaConv(small_config).run(figure2_graph).compile_stats
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["best_width"] == stats.best_width

    def test_stats_cover_every_executed_pass(self, figure2_graph, small_config):
        stats = ParaConv(small_config).run(figure2_graph).compile_stats
        assert set(stats.pass_runs) == set(STANDARD_ORDER)
        # validate-graph is hoisted: exactly once regardless of widths.
        assert stats.pass_runs["validate-graph"] == 1
        per_width = set(STANDARD_ORDER) - {"validate-graph"}
        for name in per_width:
            assert stats.pass_runs[name] == stats.num_explored

    def test_explain_mentions_passes_and_search(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        text = result.explain()
        for name in STANDARD_ORDER:
            assert name in text
        assert "widths explored" in text
        assert "best width" in text
        assert str(result.group_width) in text

    def test_explain_without_stats_is_graceful(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        result.compile_stats = None
        assert "no compile stats" in result.explain()


class TestWidthLowerBound:
    def test_bound_never_exceeds_actual(self, figure2_graph):
        config = PimConfig(num_pes=8, iterations=100)
        for width in candidate_group_widths(config.num_pes):
            result = ParaConv(config).run_at_width(figure2_graph, width)
            bound = width_lower_bound(
                figure2_graph, width, result.num_groups, config.iterations
            )
            assert bound <= result.total_time()

    def test_precomputed_inputs_match_recomputed(self, figure2_graph):
        lazy = width_lower_bound(figure2_graph, 2, 2, 100)
        eager = width_lower_bound(
            figure2_graph, 2, 2, 100,
            total_work=figure2_graph.total_work(),
            max_execution_time=figure2_graph.max_execution_time(),
        )
        assert lazy == eager

    def test_degenerate_arguments_rejected(self, figure2_graph):
        for bad in [(0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            with pytest.raises(PipelineConfigError):
                width_lower_bound(figure2_graph, *bad)

    def test_transfer_term_sharpens_without_breaking_soundness(
        self, figure2_graph
    ):
        """The two-term bound is >= the load-balance-only bound and still
        never exceeds the realized total (N = 1 is the stressing regime:
        the prologue dominates and only the critical-path term sees it)."""
        config = PimConfig(num_pes=8, iterations=1)
        for width in candidate_group_widths(config.num_pes):
            result = ParaConv(config).run_at_width(figure2_graph, width)
            lbb_only = width_lower_bound(
                figure2_graph, width, result.num_groups, 1
            )
            sharpened = width_lower_bound(
                figure2_graph, width, result.num_groups, 1, config=config
            )
            assert lbb_only <= sharpened <= result.total_time()

    def test_transfer_critical_path_on_a_chain(self):
        """Hand-computable case: a 3-stage chain with one expensive edge.

        Node weights 2, 3, 1; both edges carry 16384 bytes = 2 cache
        units. With ``period_floor=5`` neither edge is clamped:
        ``cp = 2 + 2 + 3 + 2 + 1 = 10``. With ``period_floor=1`` both
        clamp to 1: ``cp = 2 + 1 + 3 + 1 + 1 = 8``.
        """
        from repro.graph.taskgraph import linear_chain

        graph = linear_chain([2, 3, 1], size_bytes=16384)
        config = PimConfig(num_pes=4)
        assert config.cache_transfer_units(16384) == 2
        assert transfer_critical_path(graph, config, 5) == 10
        assert transfer_critical_path(graph, config, 1) == 8

    def test_precomputed_cp_matches_recomputed(self, figure2_graph):
        config = PimConfig(num_pes=8, iterations=50)
        import math

        width, groups = 2, 4
        floor = max(
            math.ceil(figure2_graph.total_work() / width),
            figure2_graph.max_execution_time(),
        )
        eager = width_lower_bound(
            figure2_graph,
            width,
            groups,
            50,
            cp_transfer=transfer_critical_path(figure2_graph, config, floor),
        )
        lazy = width_lower_bound(
            figure2_graph, width, groups, 50, config=config
        )
        assert eager == lazy

    def test_record_helpers(self):
        stats = CompileStats()
        stats.record_width(4, 0.5)
        stats.record_pruned(2)
        stats.record_pass("dp-allocate", 0.25)
        stats.record_pass("dp-allocate", 0.25)
        assert stats.num_explored == 1
        assert stats.num_pruned == 1
        assert stats.pass_runs["dp-allocate"] == 2
        assert stats.pass_seconds_total == pytest.approx(0.5)
