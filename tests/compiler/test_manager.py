"""PassManager contracts: static pipeline validation, artifact immutability,
runtime contract enforcement and invariant hooks."""

import pytest

from repro.compiler import (
    ArtifactError,
    CompileContext,
    CompilerPass,
    CompileStats,
    DuplicatePassError,
    MissingPassError,
    PassContractError,
    PassInvariantError,
    PassManager,
    PassOrderError,
)
from repro.pim.config import PimConfig


def make_pass(name, requires=(), produces=(), replaces=(), body=None):
    """Tiny concrete pass for pipeline-shape tests."""

    class _Pass(CompilerPass):
        pass

    _Pass.__name__ = f"Test_{name.replace('-', '_')}"
    p = _Pass()
    p.name = name
    p.requires = tuple(requires)
    p.produces = tuple(produces)
    p.replaces = tuple(replaces)
    if body is None:
        def body(ctx):
            for artifact in p.produces:
                ctx.put(artifact, name)
    p.run = body
    return p


@pytest.fixture
def ctx(figure2_graph):
    return CompileContext(
        graph=figure2_graph, config=PimConfig(num_pes=4), width=2
    )


class TestStaticValidation:
    def test_duplicate_pass_name_rejected(self):
        with pytest.raises(DuplicatePassError):
            PassManager([
                make_pass("a", produces=("x",)),
                make_pass("a", produces=("y",)),
            ])

    def test_duplicate_producer_rejected(self):
        with pytest.raises(DuplicatePassError):
            PassManager([
                make_pass("a", produces=("x",)),
                make_pass("b", produces=("x",)),
            ])

    def test_producing_an_initial_artifact_rejected(self):
        with pytest.raises(DuplicatePassError):
            PassManager(
                [make_pass("a", produces=("x",))],
                initial_artifacts=("x",),
            )

    def test_missing_requirement_is_typed(self):
        with pytest.raises(MissingPassError) as info:
            PassManager([make_pass("a", requires=("never-made",))])
        assert "never-made" in str(info.value)
        assert "a" in str(info.value)

    def test_misordered_pipeline_names_producer(self):
        consumer = make_pass("use-x", requires=("x",))
        producer = make_pass("make-x", produces=("x",))
        with pytest.raises(PassOrderError) as info:
            PassManager([consumer, producer])
        message = str(info.value)
        assert "use-x" in message and "make-x" in message
        # The same passes in the right order validate cleanly.
        manager = PassManager([producer, consumer])
        assert manager.pass_names == ["make-x", "use-x"]

    def test_replacing_unavailable_artifact_rejected(self):
        with pytest.raises(PassOrderError):
            PassManager([make_pass("a", replaces=("x",))])

    def test_initial_artifacts_satisfy_requirements(self):
        manager = PassManager(
            [make_pass("a", requires=("x",), produces=("y",))],
            initial_artifacts=("x",),
        )
        assert manager.pass_names == ["a"]


class TestRuntimeContracts:
    def test_missing_initial_artifact_at_run_time(self, ctx):
        manager = PassManager(
            [make_pass("a", requires=("x",))], initial_artifacts=("x",)
        )
        with pytest.raises(PassContractError):
            manager.run(ctx)

    def test_undeclared_production_rejected(self, ctx):
        rogue = make_pass(
            "rogue", produces=("x",),
            body=lambda c: (c.put("x", 1), c.put("sneaky", 2)),
        )
        with pytest.raises(PassContractError) as info:
            PassManager([rogue]).run(ctx)
        assert "sneaky" in str(info.value)

    def test_unfulfilled_production_rejected(self, ctx):
        lazy = make_pass("lazy", produces=("x",), body=lambda c: None)
        with pytest.raises(PassContractError) as info:
            PassManager([lazy]).run(ctx)
        assert "x" in str(info.value)

    def test_undeclared_replacement_rejected(self, ctx):
        maker = make_pass("maker", produces=("x",))
        clobber = make_pass(
            "clobber", requires=("x",), body=lambda c: c.replace("x", 99)
        )
        with pytest.raises(PassContractError) as info:
            PassManager([maker, clobber]).run(ctx)
        assert "clobber" in str(info.value)

    def test_declared_replacement_allowed(self, ctx):
        maker = make_pass("maker", produces=("x",))
        swap = make_pass(
            "swap", requires=("x",), replaces=("x",),
            body=lambda c: c.replace("x", 99),
        )
        PassManager([maker, swap]).run(ctx)
        assert ctx.get("x") == 99

    def test_stats_record_every_pass(self, ctx):
        stats = CompileStats()
        manager = PassManager([
            make_pass("a", produces=("x",)),
            make_pass("b", requires=("x",), produces=("y",)),
        ])
        manager.run(ctx, stats)
        assert stats.pass_runs == {"a": 1, "b": 1}
        assert set(stats.pass_seconds) == {"a", "b"}


class TestInvariantHooks:
    def test_failing_hook_names_the_pass(self, ctx):
        def angry_hook(_ctx):
            raise ValueError("kernel overlaps on PE 0")

        manager = PassManager(
            [make_pass("compact", produces=("x",))],
            hooks={"compact": [angry_hook]},
        )
        with pytest.raises(PassInvariantError) as info:
            manager.run(ctx)
        assert info.value.pass_name == "compact"
        assert "kernel overlaps" in str(info.value)

    def test_hooks_only_fire_for_their_pass(self, ctx):
        fired = []
        manager = PassManager(
            [
                make_pass("a", produces=("x",)),
                make_pass("b", requires=("x",), produces=("y",)),
            ],
            hooks={"b": [lambda c: fired.append(sorted(c.artifact_names()))]},
        )
        manager.run(ctx)
        assert fired == [["x", "y"]]


class TestContextImmutability:
    def test_put_is_write_once(self, ctx):
        ctx.put("x", 1)
        with pytest.raises(ArtifactError):
            ctx.put("x", 2)
        assert ctx.get("x") == 1

    def test_get_before_produce_is_typed(self, ctx):
        with pytest.raises(ArtifactError):
            ctx.get("nothing")

    def test_replace_requires_existence(self, ctx):
        with pytest.raises(ArtifactError):
            ctx.replace("nothing", 1)

    def test_fork_isolates_artifacts_but_shares_precomputation(self, ctx):
        ctx.put("x", 1)
        ctx.shared_total_work()
        child = ctx.fork_for_width(4)
        child.put("y", 2)
        assert not ctx.has("y")
        assert child.get("x") == 1
        assert child.shared is ctx.shared

    def test_base_context_has_no_width_facts(self, figure2_graph):
        base = CompileContext(graph=figure2_graph, config=PimConfig(num_pes=4))
        with pytest.raises(ArtifactError):
            base.num_groups
        with pytest.raises(ArtifactError):
            base.fork()
