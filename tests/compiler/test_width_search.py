"""Width-search behaviour: explicit tie-break, pruning soundness, and the
differential check against the golden (pre-refactor) plans."""

import pytest

from repro.core.paraconv import ParaConv
from repro.core.scheduler import candidate_group_widths
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from tests.golden.regen import load_golden, plan_digest


@pytest.fixture
def tied_graph() -> TaskGraph:
    """One 3-unit op on a 4-PE array with N=1: a constructed exact tie.

    Width 4 (one group) and width 2 (two groups) both finish in 3 units:
    the single op bounds the period at 3 either way, the prologue is 0,
    and ``ceil(1/J) = 1`` for both ``J``. The explicit ``(total_time,
    -width)`` key must pick the *wider* group.
    """
    graph = TaskGraph(name="tied")
    graph.add_op(0, execution_time=3)
    graph.validate()
    return graph


class TestTieBreak:
    def test_constructed_tie_prefers_wider(self, tied_graph):
        config = PimConfig(num_pes=4, iterations=1)
        # Confirm the tie actually exists, then that the search resolves
        # it toward the wider group.
        times = {
            width: ParaConv(config).run_at_width(tied_graph, width).total_time()
            for width in candidate_group_widths(4)
        }
        assert len(set(times.values())) == 1, f"tie broken upstream: {times}"
        result = ParaConv(config, prune_widths=False).run(tied_graph)
        assert result.group_width == max(times)

    def test_tie_break_independent_of_enumeration_order(
        self, tied_graph, monkeypatch
    ):
        """Reversing candidate enumeration must not change the winner.

        The legacy strict-``<`` comparison was only correct because
        candidates arrived widest-first; the explicit key must survive any
        order.
        """
        import repro.core.paraconv as paraconv_module

        config = PimConfig(num_pes=4, iterations=1)
        forward = ParaConv(config, prune_widths=False).run(tied_graph)

        original = candidate_group_widths
        monkeypatch.setattr(
            paraconv_module,
            "candidate_group_widths",
            lambda num_pes: list(reversed(original(num_pes))),
        )
        backward = ParaConv(config, prune_widths=False).run(tied_graph)
        assert backward.group_width == forward.group_width
        assert backward.total_time() == forward.total_time()

    def test_pruning_respects_the_tie_break(self, tied_graph):
        """Pruned search must land on the same winner as exhaustive."""
        config = PimConfig(num_pes=4, iterations=1)
        pruned = ParaConv(config).run(tied_graph)
        exhaustive = ParaConv(config, prune_widths=False).run(tied_graph)
        assert pruned.group_width == exhaustive.group_width
        assert pruned.total_time() == exhaustive.total_time()
        # The tie loser is skippable: its bound equals the incumbent.
        assert pruned.compile_stats.num_pruned >= 1


class TestPruningDifferential:
    """Pruned and exhaustive searches must compile bit-identical plans,
    and both must match the golden fixtures compiled before the refactor
    (PR 2), for every paper benchmark."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden()

    @pytest.mark.parametrize("name", sorted(BENCHMARK_SIZES))
    def test_bit_identical_to_golden(self, name, golden):
        config = PimConfig.from_dict(golden["config"])
        graph = synthetic_benchmark(name)
        pruned = ParaConv(config).run(graph)
        exhaustive = ParaConv(config, prune_widths=False).run(graph)
        expected = golden["benchmarks"][name]["plan_sha256"]
        assert plan_digest(pruned) == expected
        assert plan_digest(exhaustive) == expected
        # Pruning may only ever *skip* work, never add or reorder it.
        assert (
            pruned.compile_stats.num_explored
            <= exhaustive.compile_stats.num_explored
        )
        explored = pruned.compile_stats.widths_explored
        assert explored == [
            width
            for width in exhaustive.compile_stats.widths_explored
            if width in explored
        ]


class TestCompileStatsThreading:
    def test_run_attaches_stats(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        stats = result.compile_stats
        assert stats is not None
        assert stats.best_width == result.group_width
        assert stats.num_explored >= 1
        assert stats.total_seconds > 0.0
        explored_plus_pruned = stats.num_explored + stats.num_pruned
        assert explored_plus_pruned == len(
            candidate_group_widths(small_config.num_pes)
        )

    def test_run_at_width_attaches_stats(self, figure2_graph, small_config):
        result = ParaConv(small_config).run_at_width(figure2_graph, 2)
        stats = result.compile_stats
        assert stats.widths_explored == [2]
        assert stats.best_width == 2
        assert stats.pruning_enabled is False

    def test_stats_never_enter_the_plan_payload(
        self, figure2_graph, small_config
    ):
        from repro.runtime.plan_cache import plan_to_dict

        result = ParaConv(small_config).run(figure2_graph)
        payload = plan_to_dict(result)
        assert "compile_stats" not in payload
