"""Tests for the SPARTA baseline reimplementation."""

import pytest

from repro.core.baseline import SpartaScheduler, TaskSensor
from repro.core.schedule import ScheduleError
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.pim.memory import Placement


class TestTaskSensor:
    def test_first_sample_taken_verbatim(self):
        sensor = TaskSensor()
        sensor.update(4.0, 100.0)
        assert sensor.observed_exec == 4.0
        assert sensor.observed_comm == 100.0

    def test_ema_smoothing(self):
        sensor = TaskSensor(alpha=0.5)
        sensor.update(4.0, 100.0)
        sensor.update(8.0, 200.0)
        assert sensor.observed_exec == pytest.approx(6.0)
        assert sensor.observed_comm == pytest.approx(150.0)
        assert sensor.samples == 2


class TestSpartaScheduler:
    def test_kernel_is_resource_feasible(self, paper_config):
        graph = synthetic_benchmark("flower")
        result = SpartaScheduler(paper_config).run(graph)
        # kernel is over the *stalled* view; check resources only
        per_pe = {}
        for placement in result.kernel.placements.values():
            per_pe.setdefault(placement.pe, []).append(placement)
            assert placement.pe < result.group_width
        for placements in per_pe.values():
            placements.sort(key=lambda p: p.start)
            for left, right in zip(placements, placements[1:]):
                assert right.start >= left.finish

    def test_stalls_inflate_iteration_length(self, paper_config):
        graph = synthetic_benchmark("flower")
        result = SpartaScheduler(paper_config).run(graph)
        # the stalled makespan must exceed the pure-work lower bound
        pure_work = graph.total_work()
        assert result.iteration_length * result.group_width > pure_work

    def test_total_time_formula(self, paper_config):
        import math

        graph = synthetic_benchmark("cat")
        result = SpartaScheduler(paper_config).run(graph)
        n = paper_config.iterations
        assert result.total_time() == math.ceil(
            n / result.num_groups
        ) * result.iteration_length

    def test_total_time_rejects_bad_iterations(self, paper_config):
        result = SpartaScheduler(paper_config).run(synthetic_benchmark("cat"))
        with pytest.raises(ScheduleError):
            result.total_time(0)

    def test_every_edge_placed(self, paper_config):
        graph = synthetic_benchmark("car")
        result = SpartaScheduler(paper_config).run(graph)
        assert set(result.placements) == {e.key for e in graph.edges()}

    def test_cache_capacity_respected(self, paper_config):
        graph = synthetic_benchmark("protein")
        result = SpartaScheduler(paper_config).run(graph)
        used = sum(
            paper_config.slots_required(e.size_bytes)
            for e in graph.edges()
            if result.placements[e.key] is Placement.CACHE
        )
        assert used <= paper_config.total_cache_slots // result.num_groups

    def test_sensor_noise_still_schedules(self, paper_config):
        graph = synthetic_benchmark("flower")
        noisy = SpartaScheduler(paper_config, sensor_noise=0.3, seed=7).run(graph)
        clean = SpartaScheduler(paper_config).run(graph)
        # noise may change the allocation but never breaks the schedule
        assert noisy.total_time() > 0
        assert noisy.num_cached <= graph.num_edges
        # and perfect sensing is at least as good on average here
        assert clean.total_time() <= noisy.total_time() * 1.5

    def test_invalid_parameters_rejected(self, paper_config):
        with pytest.raises(ScheduleError):
            SpartaScheduler(paper_config, sensor_noise=-0.1)
        with pytest.raises(ScheduleError):
            SpartaScheduler(paper_config, warmup_iterations=0)

    def test_effective_period(self, paper_config):
        result = SpartaScheduler(paper_config).run(synthetic_benchmark("cat"))
        assert result.effective_period == pytest.approx(
            result.iteration_length / result.num_groups
        )

    def test_throughput(self, paper_config):
        result = SpartaScheduler(paper_config).run(synthetic_benchmark("cat"))
        assert result.throughput(100) == pytest.approx(
            100 / result.total_time(100)
        )


class TestComparison:
    @pytest.mark.parametrize("name", ["cat", "flower", "character-1", "protein"])
    @pytest.mark.parametrize("pes", [16, 32, 64])
    def test_paraconv_beats_sparta(self, name, pes):
        """The paper's headline: Para-CONV wins on every configuration."""
        from repro.core.paraconv import ParaConv

        config = PimConfig(num_pes=pes)
        graph = synthetic_benchmark(name)
        para = ParaConv(config).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        assert para.total_time() < sparta.total_time()

    def test_improvement_in_paper_band(self):
        """Average reduction lands near the paper's 53.42%."""
        from repro.core.paraconv import ParaConv

        reductions = []
        for name in ("character-1", "shortest-path", "protein"):
            graph = synthetic_benchmark(name)
            for pes in (16, 32, 64):
                config = PimConfig(num_pes=pes)
                para = ParaConv(config).run(graph).total_time()
                sparta = SpartaScheduler(config).run(graph).total_time()
                reductions.append((sparta - para) / sparta * 100)
        average = sum(reductions) / len(reductions)
        assert 40.0 <= average <= 70.0
