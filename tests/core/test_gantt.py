"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.core.gantt import render_kernel, render_retiming
from repro.core.paraconv import ParaConv
from repro.core.schedule import KernelSchedule, PlacedOp, ScheduleError


class TestRenderKernel:
    def test_basic_layout(self):
        kernel = KernelSchedule(
            period=3,
            placements={
                0: PlacedOp(0, 0, 0, 2),
                1: PlacedOp(1, 1, 1, 3),
            },
        )
        text = render_kernel(kernel)
        lines = text.splitlines()
        assert lines[1].startswith("PE0")
        assert "T0" in lines[1]
        assert "T1" in lines[2]
        assert lines[1].count("T0") == 2  # occupies two time units

    def test_idle_cells_rendered(self):
        kernel = KernelSchedule(
            period=3, placements={0: PlacedOp(0, 0, 0, 1)}
        )
        text = render_kernel(kernel)
        assert "." in text

    def test_custom_labels_truncated(self):
        kernel = KernelSchedule(
            period=1, placements={0: PlacedOp(0, 0, 0, 1)}
        )
        text = render_kernel(kernel, labels={0: "convolution_very_long"})
        assert "con" in text
        assert "convolution_very_long" not in text

    def test_empty_kernel(self):
        assert render_kernel(KernelSchedule(period=0)) == "(empty kernel)"

    def test_explicit_pe_count_adds_idle_rows(self):
        kernel = KernelSchedule(period=1, placements={0: PlacedOp(0, 0, 0, 1)})
        text = render_kernel(kernel, num_pes=3)
        assert "PE2" in text

    def test_bad_cell_width(self):
        kernel = KernelSchedule(period=1, placements={0: PlacedOp(0, 0, 0, 1)})
        with pytest.raises(ScheduleError):
            render_kernel(kernel, cell_width=1)


class TestRenderRetiming:
    def test_mentions_rmax_and_rounds(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        text = render_retiming(result.schedule)
        assert f"R_max = {result.max_retiming}" in text
        assert text.count("prologue round") == result.max_retiming


class TestRenderExpanded:
    def test_whole_run_shows_iterations(self, figure2_graph, small_config):
        from repro.core.gantt import render_expanded
        from repro.core.paraconv import ParaConv

        result = ParaConv(small_config).run(figure2_graph)
        text = render_expanded(result.schedule, iterations=3)
        assert "T0.1" in text  # first iteration of the source
        assert "PE0" in text

    def test_truncation_notice(self, figure2_graph, small_config):
        from repro.core.gantt import render_expanded
        from repro.core.paraconv import ParaConv

        result = ParaConv(small_config).run(figure2_graph)
        text = render_expanded(result.schedule, iterations=50, max_columns=10)
        assert "truncated" in text

    def test_bad_cell_width(self, figure2_graph, small_config):
        import pytest

        from repro.core.gantt import render_expanded
        from repro.core.paraconv import ParaConv
        from repro.core.schedule import ScheduleError

        result = ParaConv(small_config).run(figure2_graph)
        with pytest.raises(ScheduleError):
            render_expanded(result.schedule, iterations=2, cell_width=1)
