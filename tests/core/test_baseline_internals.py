"""Unit tests for SPARTA's internal characterization and stall model."""

import pytest

from repro.core.baseline import SpartaScheduler
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.memory import Placement


@pytest.fixture
def tiny_graph():
    graph = TaskGraph(name="tiny")
    graph.add_op(0, execution_time=2)
    graph.add_op(1, execution_time=1)
    graph.add_op(2, execution_time=3)
    graph.connect(0, 1, size_bytes=4096)
    graph.connect(0, 2, size_bytes=256)
    graph.connect(1, 2, size_bytes=1024)
    graph.validate()
    return graph


class TestStalledView:
    def test_edram_stalls_added_to_consumers(self, tiny_graph):
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        placements = {e.key: Placement.EDRAM for e in tiny_graph.edges()}
        stalled = scheduler._stalled_view(tiny_graph, placements)
        # op 0 has no inputs: unchanged
        assert stalled.operation(0).execution_time == 2
        # op 1 demand-fetches the 4096B edge: +edram units
        expected = 1 + config.edram_transfer_units(4096)
        assert stalled.operation(1).execution_time == expected
        # op 2 fetches two edges
        expected = 3 + config.edram_transfer_units(256) + config.edram_transfer_units(1024)
        assert stalled.operation(2).execution_time == expected

    def test_cached_inputs_do_not_stall(self, tiny_graph):
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        placements = {e.key: Placement.CACHE for e in tiny_graph.edges()}
        stalled = scheduler._stalled_view(tiny_graph, placements)
        # all intermediate results below one bandwidth unit: zero stall
        for op in tiny_graph.operations():
            assert stalled.operation(op.op_id).execution_time == op.execution_time

    def test_structure_preserved(self, tiny_graph):
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        placements = {e.key: Placement.EDRAM for e in tiny_graph.edges()}
        stalled = scheduler._stalled_view(tiny_graph, placements)
        assert stalled.num_vertices == tiny_graph.num_vertices
        assert [e.key for e in stalled.edges()] == [
            e.key for e in tiny_graph.edges()
        ]


class TestGreedyCacheAllocation:
    def test_capacity_zero_caches_nothing(self, tiny_graph):
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        sensors = scheduler._characterize(tiny_graph)
        placements = scheduler._allocate_cache(tiny_graph, sensors, 0)
        assert all(p is Placement.EDRAM for p in placements.values())

    def test_comm_heavy_producers_cached_first(self, tiny_graph):
        config = PimConfig(num_pes=4, cache_slot_bytes=512)
        scheduler = SpartaScheduler(config)
        sensors = scheduler._characterize(tiny_graph)
        # op 1 senses the most traffic (4096 in + 1024 out), so its edge is
        # cached first (2 slots); op 0's big edge (8 slots) then no longer
        # fits in the 9-slot budget while its small edge (1 slot) does.
        placements = scheduler._allocate_cache(tiny_graph, sensors, 9)
        assert placements[(1, 2)] is Placement.CACHE
        assert placements[(0, 1)] is Placement.EDRAM
        assert placements[(0, 2)] is Placement.CACHE

    def test_every_edge_placed(self, tiny_graph):
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        sensors = scheduler._characterize(tiny_graph)
        placements = scheduler._allocate_cache(tiny_graph, sensors, 100)
        assert set(placements) == {e.key for e in tiny_graph.edges()}


class TestPrioritization:
    def test_priorities_respect_structure(self, tiny_graph):
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        sensors = scheduler._characterize(tiny_graph)
        priorities = scheduler._prioritize(tiny_graph, sensors)
        # upstream ops outrank their dependents
        assert priorities[0] > priorities[1] > priorities[2]

    def test_sensed_load_breaks_ties(self):
        graph = TaskGraph()
        graph.add_op(0, execution_time=1)
        graph.add_op(1, execution_time=3)  # heavier sibling
        graph.add_op(2, execution_time=1)
        graph.connect(0, 2)
        graph.connect(1, 2)
        config = PimConfig(num_pes=4)
        scheduler = SpartaScheduler(config)
        sensors = scheduler._characterize(graph)
        priorities = scheduler._prioritize(graph, sensors)
        assert priorities[1] > priorities[0]
