"""Tests for the six-case classification of Figure 4."""

import pytest

from repro.core.cases import (
    RetimingCase,
    case_census,
    classify,
    classify_all,
    classify_timing,
)
from repro.core.retiming import EdgeTiming, RetimingError


def timing(delta_cache, delta_edram, key=(0, 1)):
    return EdgeTiming(
        key=key, transfer_cache=0, transfer_edram=1,
        delta_cache=delta_cache, delta_edram=delta_edram,
        slots=1, deadline=0,
    )


class TestClassification:
    @pytest.mark.parametrize(
        "pair,expected",
        [
            ((0, 0), RetimingCase.CASE_1),
            ((0, 1), RetimingCase.CASE_2),
            ((0, 2), RetimingCase.CASE_3),
            ((1, 1), RetimingCase.CASE_4),
            ((1, 2), RetimingCase.CASE_5),
            ((2, 2), RetimingCase.CASE_6),
        ],
    )
    def test_all_six_cases(self, pair, expected):
        assert classify(*pair) is expected

    @pytest.mark.parametrize(
        "pair", [(1, 0), (2, 1), (3, 3), (0, 3), (-1, 0), (2, 0)]
    )
    def test_infeasible_pairs_rejected(self, pair):
        with pytest.raises(RetimingError):
            classify(*pair)

    def test_classify_timing(self):
        assert classify_timing(timing(1, 2)) is RetimingCase.CASE_5


class TestCaseSemantics:
    def test_placement_sensitivity(self):
        # paper: cases 2, 3, 5 compete for cache; 1, 4, 6 are indifferent
        sensitive = {c for c in RetimingCase if c.placement_sensitive}
        assert sensitive == {
            RetimingCase.CASE_2, RetimingCase.CASE_3, RetimingCase.CASE_5,
        }

    def test_delta_r_per_case(self):
        assert RetimingCase.CASE_1.delta_r == 0
        assert RetimingCase.CASE_2.delta_r == 1
        assert RetimingCase.CASE_3.delta_r == 2
        assert RetimingCase.CASE_4.delta_r == 0
        assert RetimingCase.CASE_5.delta_r == 1
        assert RetimingCase.CASE_6.delta_r == 0

    def test_sensitive_iff_positive_delta_r(self):
        for case in RetimingCase:
            assert case.placement_sensitive == (case.delta_r > 0)


class TestCensus:
    def test_census_counts_all(self):
        timings = {
            (0, 1): timing(0, 0, (0, 1)),
            (0, 2): timing(0, 1, (0, 2)),
            (1, 3): timing(0, 1, (1, 3)),
            (2, 3): timing(2, 2, (2, 3)),
        }
        census = case_census(timings)
        assert census[RetimingCase.CASE_1] == 1
        assert census[RetimingCase.CASE_2] == 2
        assert census[RetimingCase.CASE_6] == 1
        assert sum(census.values()) == 4
        assert set(census) == set(RetimingCase)  # all keys present

    def test_classify_all(self):
        timings = {(0, 1): timing(1, 2)}
        assert classify_all(timings) == {(0, 1): RetimingCase.CASE_5}
