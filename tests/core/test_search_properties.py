"""Property battery for the anytime search allocators.

Four families of seeded properties over random deadline-sorted knapsack
instances (300+ generated cases), pinning the promises
:mod:`repro.core.search` documents:

* **DP lower bound + oracle equality** — the DP-seeded annealer never
  returns less than the DP, and on enumerable instances returns exactly
  the brute-force optimum;
* **anytime monotonicity** — profit is monotone non-decreasing in the
  evaluation budget, and a larger budget's improvement trajectory extends
  (never rewrites) a smaller budget's trajectory — the prefix property;
* **feasibility of every intermediate** — every *accepted* candidate of
  the walk fits the capacity, not just the final answer, and compiled
  anneal plans pass the full :class:`ScheduleValidator` battery;
* **cross-process determinism** — the same (problem, seed, budget) triple
  yields the same cached set in a fresh interpreter under a different
  ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path
from typing import List

import pytest

from repro.core.allocation import (
    AllocationItem,
    AllocationProblem,
    dp_allocate,
    greedy_allocate,
)
from repro.core.search import AllocatorPortfolio, AnnealAllocator, SEEDERS
from repro.graph.generators import SyntheticGraphGenerator
from repro.verify.oracle import exhaustive_allocate

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def make_problem(seed: int, max_items: int = 14) -> AllocationProblem:
    """Random deadline-sorted knapsack instance (enumerable by default)."""
    rng = random.Random(0x5EA8C4 ^ seed)
    count = rng.randint(1, max_items)
    items: List[AllocationItem] = []
    for index in range(count):
        items.append(
            AllocationItem(
                key=(index, index + 1),
                slots=rng.randint(1, 8),
                delta_r=rng.randint(1, 12),
                deadline=rng.randint(0, 50),
            )
        )
    items.sort(key=lambda item: (item.deadline, item.key))
    demand = sum(item.slots for item in items)
    capacity = rng.randint(0, demand + 4)
    return AllocationProblem(items=items, capacity_slots=capacity)


ORACLE_SEEDS = range(100)
MONOTONE_SEEDS = range(100)
FEASIBLE_SEEDS = range(100)
PIPELINE_SEEDS = range(6)
BUDGET_LADDER = (0, 37, 120, 400)


# ----------------------------------------------------------------------
# DP lower bound + oracle equality
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", ORACLE_SEEDS)
def test_dp_lower_bound_and_oracle_equality(seed):
    """anneal >= dp always; anneal == brute-force optimum when enumerable."""
    problem = make_problem(seed)
    dp = dp_allocate(problem)
    anneal = AnnealAllocator(max_evals=400, seed=seed)(problem)
    portfolio = AllocatorPortfolio(max_evals=400, seed=seed)(problem)

    assert anneal.slots_used <= problem.capacity_slots
    assert portfolio.slots_used <= problem.capacity_slots
    assert anneal.total_delta_r >= dp.total_delta_r
    assert portfolio.total_delta_r >= dp.total_delta_r

    optimum = exhaustive_allocate(problem).total_delta_r
    assert anneal.total_delta_r == optimum
    assert portfolio.total_delta_r == optimum


# ----------------------------------------------------------------------
# anytime monotonicity + the prefix property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", MONOTONE_SEEDS)
def test_anytime_monotone_in_budget(seed):
    """Profit never decreases with budget, from every seeding strategy."""
    problem = make_problem(seed, max_items=20)
    for seed_from in sorted(SEEDERS):
        seed_profit = SEEDERS[seed_from](problem).total_delta_r
        previous = None
        for budget in BUDGET_LADDER:
            result = AnnealAllocator(
                max_evals=budget, seed=seed, seed_from=seed_from
            )(problem)
            assert result.total_delta_r >= seed_profit
            if previous is not None:
                assert result.total_delta_r >= previous
            previous = result.total_delta_r


@pytest.mark.parametrize("seed", range(40))
def test_trajectory_prefix_property(seed):
    """A bigger budget replays a smaller budget's walk, then extends it."""
    problem = make_problem(seed, max_items=20)
    small = AnnealAllocator(max_evals=120, seed=seed, seed_from="empty")(
        problem
    )
    large = AnnealAllocator(max_evals=400, seed=seed, seed_from="empty")(
        problem
    )
    large_prefix = [
        point for point in large.search_stats.trajectory if point[0] <= 120
    ]
    assert small.search_stats.trajectory == large_prefix


# ----------------------------------------------------------------------
# feasibility of every intermediate candidate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", FEASIBLE_SEEDS)
def test_every_accepted_candidate_is_feasible(seed):
    """The walk never *accepts* a capacity-violating candidate."""
    problem = make_problem(seed, max_items=20)
    allocator = AnnealAllocator(
        max_evals=300, seed=seed, seed_from="empty", record_candidates=True
    )
    result = allocator(problem)
    assert allocator.last_candidates, "walk recorded no candidates"
    for profit, slots in allocator.last_candidates:
        assert slots <= problem.capacity_slots
        assert profit >= 0
    assert result.slots_used <= problem.capacity_slots


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_compiled_anneal_plans_pass_the_validator(seed):
    """Full-pipeline anneal plans satisfy the whole validator battery."""
    from repro.core.paraconv import ParaConv
    from repro.pim.config import PimConfig
    from repro.verify.validator import ScheduleValidator

    rng = random.Random(0xA11 ^ seed)
    n = rng.randint(6, 18)
    graph = SyntheticGraphGenerator().generate(
        n, n - 1 + rng.randint(0, n // 2), seed=seed,
        name=f"search-prop-{seed}",
    )
    config = PimConfig(num_pes=8)
    plan = ParaConv(config, allocator_name="anneal").run(graph)
    report = ScheduleValidator().validate(plan)
    assert report.ok, [str(v) for v in report.errors()]
    assert plan.allocation.method == "anneal"
    assert plan.compile_stats.search is not None
    assert plan.compile_stats.search["budget"] == 2000


# ----------------------------------------------------------------------
# cross-process determinism
# ----------------------------------------------------------------------
_DETERMINISM_SCRIPT = """
import random
from repro.core.allocation import AllocationItem, AllocationProblem
from repro.core.search import AnnealAllocator

rng = random.Random(0x5EA8C4 ^ {seed})
count = rng.randint(1, 14)
items = []
for index in range(count):
    items.append(AllocationItem(
        key=(index, index + 1),
        slots=rng.randint(1, 8),
        delta_r=rng.randint(1, 12),
        deadline=rng.randint(0, 50),
    ))
items.sort(key=lambda item: (item.deadline, item.key))
demand = sum(item.slots for item in items)
capacity = rng.randint(0, demand + 4)
problem = AllocationProblem(items=items, capacity_slots=capacity)
result = AnnealAllocator(max_evals=250, seed={seed}, seed_from="empty")(
    problem
)
print(sorted(result.cached), result.total_delta_r, result.slots_used)
"""


@pytest.mark.parametrize("hashseed", ["1", "4242"])
def test_cross_process_determinism(hashseed):
    """Same (problem, seed, budget) -> same answer under any hash seed."""
    expected = {}
    for seed in (3, 17):
        problem = make_problem(seed)
        result = AnnealAllocator(
            max_evals=250, seed=seed, seed_from="empty"
        )(problem)
        expected[seed] = (
            f"{sorted(result.cached)} {result.total_delta_r} "
            f"{result.slots_used}"
        )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(SRC_DIR)
    for seed, want in expected.items():
        out = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT.format(seed=seed)],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert out == want


# ----------------------------------------------------------------------
# degenerate instances
# ----------------------------------------------------------------------
def test_zero_budget_returns_the_seed_verbatim():
    problem = make_problem(11)
    dp = dp_allocate(problem)
    anneal = AnnealAllocator(max_evals=0)(problem)
    assert sorted(anneal.cached) == sorted(dp.cached)
    assert anneal.total_delta_r == dp.total_delta_r
    assert anneal.search_stats.evals_used == 0


def test_zero_capacity_instance():
    problem = make_problem(5)
    empty = AllocationProblem(items=problem.items, capacity_slots=0)
    result = AnnealAllocator(max_evals=200, seed=1)(empty)
    assert result.total_delta_r == 0
    assert result.slots_used == 0
    assert result.cached == []


def test_greedy_seed_never_below_greedy():
    problem = make_problem(23, max_items=20)
    greedy = greedy_allocate(problem)
    result = AnnealAllocator(max_evals=150, seed=2, seed_from="greedy")(
        problem
    )
    assert result.total_delta_r >= greedy.total_delta_r
