"""Tests for the Section 3.3 dynamic program and the ablation allocators.

The key property test checks the DP against brute-force subset enumeration:
on every random instance small enough to enumerate, ``B[S, n]`` must equal
the true optimum.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    AllocationItem,
    AllocationProblem,
    all_edram_allocate,
    dp_allocate,
    greedy_allocate,
    oracle_allocate,
    random_allocate,
)
from repro.core.retiming import EdgeTiming
from repro.pim.memory import Placement


def make_problem(items, capacity, indifferent=()):
    return AllocationProblem(
        items=[
            AllocationItem(key=(i, i + 1), slots=s, delta_r=v, deadline=i)
            for i, (s, v) in enumerate(items)
        ],
        capacity_slots=capacity,
        indifferent=list(indifferent),
    )


def brute_force_best(problem):
    best = 0
    for mask in itertools.product([0, 1], repeat=len(problem.items)):
        slots = sum(
            item.slots for item, take in zip(problem.items, mask) if take
        )
        if slots <= problem.capacity_slots:
            profit = sum(
                item.delta_r for item, take in zip(problem.items, mask) if take
            )
            best = max(best, profit)
    return best


class TestFromTimings:
    def test_zero_delta_r_edges_go_to_edram(self):
        timings = {
            (0, 1): EdgeTiming((0, 1), 0, 1, 0, 0, 2, 5),  # case 1: ΔR=0
            (1, 2): EdgeTiming((1, 2), 0, 1, 0, 1, 2, 3),  # case 2: ΔR=1
        }
        problem = AllocationProblem.from_timings(timings, capacity_slots=10)
        assert problem.indifferent == [(0, 1)]
        assert [item.key for item in problem.items] == [(1, 2)]

    def test_items_sorted_by_deadline(self):
        timings = {
            (0, 2): EdgeTiming((0, 2), 0, 1, 0, 1, 1, 9),
            (0, 1): EdgeTiming((0, 1), 0, 1, 0, 1, 1, 2),
            (1, 2): EdgeTiming((1, 2), 0, 1, 0, 1, 1, 5),
        }
        problem = AllocationProblem.from_timings(timings, 10)
        deadlines = [item.deadline for item in problem.items]
        assert deadlines == sorted(deadlines)

    def test_negative_capacity_rejected(self):
        from repro.core.retiming import RetimingError

        with pytest.raises(RetimingError):
            AllocationProblem.from_timings({}, -1)


class TestDpOptimality:
    def test_textbook_instance(self):
        # capacity 5; items (slots, value): optimal = 2 + 4 = 6 via items 1+2
        problem = make_problem([(2, 2), (3, 4), (4, 5)], capacity=5)
        result = dp_allocate(problem)
        assert result.total_delta_r == 6
        assert {k for k in result.cached} == {(0, 1), (1, 2)}

    def test_zero_capacity(self):
        problem = make_problem([(1, 5)], capacity=0)
        result = dp_allocate(problem)
        assert result.total_delta_r == 0
        assert result.cached == []

    def test_everything_fits(self):
        problem = make_problem([(1, 1), (1, 2), (1, 3)], capacity=10)
        result = dp_allocate(problem)
        assert result.total_delta_r == 6
        assert result.num_cached == 3

    def test_reconstruction_respects_capacity(self):
        problem = make_problem([(3, 5), (3, 5), (3, 5)], capacity=7)
        result = dp_allocate(problem)
        assert result.slots_used <= 7
        assert result.total_delta_r == 10

    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),   # slots
                st.integers(min_value=0, max_value=5),   # delta_r
            ),
            min_size=0,
            max_size=10,
        ),
        capacity=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_dp_matches_brute_force(self, items, capacity):
        problem = make_problem(items, capacity)
        result = dp_allocate(problem)
        assert result.total_delta_r == brute_force_best(problem)
        assert result.slots_used <= capacity
        # reconstruction must account exactly for the reported profit
        recomputed = sum(
            item.delta_r
            for item in problem.items
            if item.key in set(result.cached)
        )
        assert recomputed == result.total_delta_r


class TestOtherAllocators:
    def test_greedy_never_beats_dp(self):
        problem = make_problem(
            [(2, 3), (3, 4), (4, 5), (5, 6), (1, 1)], capacity=7
        )
        assert (
            greedy_allocate(problem).total_delta_r
            <= dp_allocate(problem).total_delta_r
        )

    def test_random_respects_capacity(self):
        problem = make_problem([(2, 1)] * 10, capacity=5)
        result = random_allocate(problem, seed=3)
        assert result.slots_used <= 5

    def test_random_deterministic_per_seed(self):
        problem = make_problem([(2, 1)] * 10, capacity=9)
        assert random_allocate(problem, seed=1).cached == random_allocate(
            problem, seed=1
        ).cached

    def test_all_edram_caches_nothing(self):
        problem = make_problem([(1, 5)] * 3, capacity=10)
        result = all_edram_allocate(problem)
        assert result.num_cached == 0
        assert all(p is Placement.EDRAM for p in result.placements.values())

    def test_oracle_caches_everything_profitable(self):
        problem = make_problem([(5, 1)] * 4, capacity=2)  # nothing fits
        result = oracle_allocate(problem)
        assert result.num_cached == 4  # capacity-oblivious by design
        assert result.total_delta_r == 4

    def test_placements_cover_indifferent_edges(self):
        problem = make_problem(
            [(1, 1)], capacity=5, indifferent=[(9, 10)]
        )
        result = dp_allocate(problem)
        assert result.placements[(9, 10)] is Placement.EDRAM

    def test_cache_utilization(self):
        problem = make_problem([(5, 5)], capacity=10)
        result = dp_allocate(problem)
        assert result.cache_utilization() == pytest.approx(0.5)
        empty = make_problem([], capacity=0)
        assert dp_allocate(empty).cache_utilization() == 0.0
