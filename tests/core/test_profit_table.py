"""The columnar profit table (``repro.core.profit``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.paraconv import ParaConv
from repro.core.profit import (
    NUMPY_FLOOR,
    ProfitTable,
    require_numpy_floor,
    score_masks_object,
)
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.verify.differential_search import allocation_instance


@pytest.fixture(scope="module")
def problem():
    machine = PimConfig(num_pes=16, iterations=100)
    instance, _width = allocation_instance(
        synthetic_benchmark("cat"), machine
    )
    assert instance.num_items > 0
    return instance


@pytest.fixture(scope="module")
def table(problem):
    return ProfitTable.of(problem)


class TestConstruction:
    def test_cached_on_the_problem(self, problem, table):
        assert ProfitTable.of(problem) is table

    def test_cache_invalidates_on_item_count_change(self, problem):
        first = ProfitTable.of(problem)
        items = problem.items
        try:
            problem.items = items[:-1]
            rebuilt = ProfitTable.of(problem)
            assert rebuilt is not first
            assert rebuilt.num_items == len(items) - 1
        finally:
            problem.items = items
            problem._profit_table = first

    def test_columns_mirror_the_items(self, problem, table):
        assert table.num_items == len(problem.items)
        for index, item in enumerate(problem.items):
            assert table.keys[index] == item.key
            assert table.slots_list[index] == item.slots
            assert table.delta_list[index] == item.delta_r
            assert int(table.deadlines[index]) == item.deadline
            assert table.index_of(item.key) == index


class TestScoring:
    def test_score_mask_returns_plain_ints(self, table):
        mask = np.zeros(table.num_items, dtype=bool)
        mask[0] = True
        profit, slots = table.score_mask(mask)
        assert type(profit) is int and type(slots) is int
        assert profit == table.delta_list[0]
        assert slots == table.slots_list[0]

    def test_batch_scoring_matches_object_walk(self, problem, table):
        rng = np.random.default_rng(3)
        masks = rng.integers(
            0, 2, size=(64, table.num_items), dtype=np.int64
        ) > 0
        profits, slots = table.score_masks(masks)
        assert [
            (int(p), int(s)) for p, s in zip(profits, slots)
        ] == score_masks_object(problem, masks)

    def test_score_masks_rejects_wrong_shape(self, table):
        with pytest.raises(ValueError, match="masks must be"):
            table.score_masks(np.zeros((4, table.num_items + 1), dtype=bool))
        with pytest.raises(ValueError, match="masks must be"):
            table.score_masks(np.zeros(table.num_items, dtype=bool))

    def test_feasible_thresholds_on_capacity(self, table):
        masks = np.eye(table.num_items, dtype=bool)
        smallest = min(table.slots_list)
        feasible = table.feasible(masks, smallest)
        assert feasible.tolist() == [
            slots <= smallest for slots in table.slots_list
        ]

    def test_member_mask_ignores_foreign_keys(self, table):
        mask = table.member_mask([table.keys[0], (10 ** 9, 10 ** 9)])
        assert mask.sum() == 1 and bool(mask[0])

    def test_movable_indices_are_ascending_and_fit(self, table):
        cap = max(table.slots_list)
        movable = table.movable_indices(cap)
        assert movable == sorted(movable)
        assert all(table.slots_list[i] <= cap for i in movable)
        assert table.movable_indices(-1) == []


class TestFinalization:
    def test_result_from_mask_matches_scores(self, problem, table):
        mask = table.feasible(
            np.eye(table.num_items, dtype=bool), problem.capacity_slots
        )
        chosen = np.zeros(table.num_items, dtype=bool)
        for index in range(table.num_items):
            if mask[index]:
                chosen[index] = True
                break
        result = table.result_from_mask("unit-test", problem, chosen)
        profit, slots = table.score_mask(chosen)
        assert result.method == "unit-test"
        assert result.total_delta_r == profit
        assert result.slots_used == slots
        assert result.cached == [
            key for index, key in enumerate(table.keys) if chosen[index]
        ]
        # Every item and every indifferent edge got a placement.
        assert len(result.placements) == (
            table.num_items + len(problem.indifferent)
        )

    def test_result_from_mask_rejects_wrong_shape(self, problem, table):
        with pytest.raises(ValueError, match="mask must have shape"):
            table.result_from_mask(
                "unit-test", problem,
                np.zeros(table.num_items + 2, dtype=bool),
            )


class TestNumpyFloor:
    def test_current_numpy_passes(self):
        np_module = require_numpy_floor("unit-test")
        assert np_module is np

    def test_old_numpy_is_rejected(self, monkeypatch):
        floor = ".".join(map(str, NUMPY_FLOOR))
        monkeypatch.setattr(np, "__version__", "1.21.6")
        with pytest.raises(ImportError, match=f"requires numpy >= {floor}"):
            require_numpy_floor("unit-test")

    def test_unparseable_version_is_tolerated(self, monkeypatch):
        monkeypatch.setattr(np, "__version__", "unknown")
        assert require_numpy_floor("unit-test") is np
