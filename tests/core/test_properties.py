"""Seeded property suite for retiming and allocation.

Hundreds of parametrized cases (deterministic seeds, no shared state)
checking the two algorithmic cores of the paper on randomly generated
instances:

* ``solve_retiming`` always returns a *legal* (Definition 3.1) and
  *pointwise-minimal* retiming for arbitrary non-negative per-edge
  requirements on arbitrary generated DAGs;
* every capacity-aware allocator returns a capacity-feasible,
  internally consistent result on arbitrary knapsack instances, and the
  DP exactly matches the brute-force optimum on small ones;
* the full pipeline's plans pass the invariant validator end to end.

Unlike the hypothesis suite in ``tests/properties``, every case here is a
fixed ``pytest.mark.parametrize`` seed: failures name the exact instance
and reproduce without a shrinker.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.core.allocation import (
    ALLOCATORS,
    AllocationItem,
    AllocationProblem,
    dp_allocate,
)
from repro.core.paraconv import ParaConv
from repro.core.retiming import RetimingError, solve_retiming
from repro.graph.generators import SyntheticGraphGenerator
from repro.pim.config import PimConfig
from repro.verify.oracle import exhaustive_allocate
from repro.verify.validator import ScheduleValidator

# ----------------------------------------------------------------------
# instance generators (all deterministic in the seed)
# ----------------------------------------------------------------------
def graph_spec(seed: int) -> Tuple[int, int, int]:
    """(num_vertices, num_edges, seed) for one generated DAG."""
    rng = random.Random(0xD1CE ^ seed)
    n = rng.randint(5, 33)
    extra = rng.randint(0, n - 1)
    return n, n - 1 + extra, seed


def make_graph(seed: int):
    n, edges, _ = graph_spec(seed)
    return SyntheticGraphGenerator().generate(
        n, edges, seed=seed, name=f"prop-{seed}"
    )


def make_problem(seed: int, max_items: int = 24) -> AllocationProblem:
    """Random deadline-sorted knapsack instance."""
    rng = random.Random(0xA110C ^ seed)
    count = rng.randint(1, max_items)
    items: List[AllocationItem] = []
    for index in range(count):
        items.append(
            AllocationItem(
                key=(index, index + 1),
                slots=rng.randint(1, 8),
                delta_r=rng.randint(1, 12),
                deadline=rng.randint(0, 50),
            )
        )
    items.sort(key=lambda item: (item.deadline, item.key))
    demand = sum(item.slots for item in items)
    capacity = rng.randint(0, demand + 4)
    return AllocationProblem(items=items, capacity_slots=capacity)


RETIMING_SEEDS = range(60)
ALLOCATION_SEEDS = range(60)
ORACLE_SEEDS = range(48)
PIPELINE_SEEDS = range(12)
CAPACITY_AWARE = sorted(set(ALLOCATORS) - {"oracle", "iterative"})


# ----------------------------------------------------------------------
# retiming properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", RETIMING_SEEDS)
def test_solve_retiming_legal_and_minimal(seed):
    """Definition 3.1 legality + pointwise minimality on random DAGs."""
    graph = make_graph(seed)
    rng = random.Random(seed)
    deltas = {edge.key: rng.randint(0, 3) for edge in graph.edges()}
    solution = solve_retiming(graph, deltas)

    assert solution.is_legal()
    for (i, j), r_ij in solution.edge_retiming.items():
        assert (
            solution.vertex_retiming[i] >= r_ij >= solution.vertex_retiming[j]
        )
        # The solver picks R(i,j) = R(j) + delta(i,j) exactly.
        assert r_ij == solution.vertex_retiming[j] + deltas[(i, j)]
    # Pointwise minimality: R(i) is the smallest legal value given its
    # out-edges — any smaller value breaks R(i) >= R(j) + delta(i,j).
    for op_id in graph.topological_order():
        required = max(
            (
                solution.vertex_retiming[edge.consumer] + deltas[edge.key]
                for edge in graph.out_edges(op_id)
            ),
            default=0,
        )
        assert solution.vertex_retiming[op_id] == required


@pytest.mark.parametrize("seed", [0, 7, 21])
def test_negative_delta_rejected(seed):
    graph = make_graph(seed)
    deltas = {edge.key: 0 for edge in graph.edges()}
    first = next(iter(deltas))
    deltas[first] = -1
    with pytest.raises(RetimingError):
        solve_retiming(graph, deltas)


# ----------------------------------------------------------------------
# allocator properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", ALLOCATION_SEEDS)
@pytest.mark.parametrize("method", CAPACITY_AWARE)
def test_allocator_capacity_feasible_and_consistent(method, seed):
    """Every capacity-aware allocator: feasible + self-consistent."""
    problem = make_problem(seed)
    result = ALLOCATORS[method](problem)
    by_key = {item.key: item for item in problem.items}

    assert result.slots_used <= problem.capacity_slots
    assert set(result.cached) <= set(by_key)
    assert result.slots_used == sum(by_key[k].slots for k in result.cached)
    assert result.total_delta_r == sum(
        by_key[k].delta_r for k in result.cached
    )
    # The placement map covers every item exactly once.
    assert set(result.placements) == set(by_key) | set(problem.indifferent)


@pytest.mark.parametrize("seed", ORACLE_SEEDS)
def test_dp_matches_exhaustive_optimum(seed):
    """The Section 3.3 DP is profit-optimal on every small instance."""
    problem = make_problem(seed, max_items=10)
    dp = dp_allocate(problem)
    best = exhaustive_allocate(problem)
    assert dp.total_delta_r == best.total_delta_r, (
        f"seed {seed}: dp {dp.total_delta_r} != optimum "
        f"{best.total_delta_r} (n={problem.num_items}, "
        f"S={problem.capacity_slots})"
    )


# ----------------------------------------------------------------------
# end-to-end pipeline property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_pipeline_plan_passes_validator(seed):
    """Full compile of a random graph yields an invariant-clean plan."""
    graph = make_graph(seed)
    config = PimConfig(num_pes=8, iterations=50)
    plan = ParaConv(config).run(graph)
    report = ScheduleValidator().validate(plan)
    assert report.ok, "\n".join(str(v) for v in report.errors())
