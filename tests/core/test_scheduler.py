"""Tests for the kernel compactor, list scheduler and width policies."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedule import ScheduleError, validate_kernel
from repro.core.scheduler import (
    MIN_GROUP_WIDTH,
    candidate_group_widths,
    choose_group_width,
    compact_kernel_schedule,
    downward_rank,
    effective_parallel_width,
    list_schedule,
    load_balance_bound,
)
from repro.graph.generators import SyntheticGraphGenerator
from repro.graph.taskgraph import TaskGraph, linear_chain


class TestLoadBalanceBound:
    def test_work_limited(self, figure2_graph):
        # 5 unit ops on 2 PEs -> ceil(5/2) = 3
        assert load_balance_bound(figure2_graph, 2) == 3

    def test_longest_op_limited(self, chain_graph):
        # max c_i = 3 dominates when many PEs
        assert load_balance_bound(chain_graph, 100) == 3

    def test_empty_graph(self):
        assert load_balance_bound(TaskGraph(), 4) == 0

    def test_invalid_pes(self, figure2_graph):
        with pytest.raises(ScheduleError):
            load_balance_bound(figure2_graph, 0)


class TestCompactKernel:
    def test_resource_feasible(self, figure2_graph):
        kernel = compact_kernel_schedule(figure2_graph, 2)
        validate_kernel(figure2_graph, kernel, 2)

    def test_meets_bound_for_unit_times(self, figure2_graph):
        kernel = compact_kernel_schedule(figure2_graph, 2)
        assert kernel.period == load_balance_bound(figure2_graph, 2)

    def test_greedy_within_two_of_optimal(self, chain_graph):
        for pes in (1, 2, 3, 6):
            kernel = compact_kernel_schedule(chain_graph, pes)
            assert kernel.period <= 2 * load_balance_bound(chain_graph, pes)

    def test_topological_order_places_producers_first(self, chain_graph):
        kernel = compact_kernel_schedule(chain_graph, 2, order="topological")
        for left, right in zip(range(5), range(1, 6)):
            assert kernel.start(left) <= kernel.start(right)

    def test_lpt_order_available(self, chain_graph):
        kernel = compact_kernel_schedule(chain_graph, 2, order="lpt")
        validate_kernel(chain_graph, kernel, 2)

    def test_unknown_order_rejected(self, chain_graph):
        with pytest.raises(ScheduleError, match="unknown packing order"):
            compact_kernel_schedule(chain_graph, 2, order="zigzag")

    def test_deterministic(self, figure2_graph):
        a = compact_kernel_schedule(figure2_graph, 3)
        b = compact_kernel_schedule(figure2_graph, 3)
        assert a.placements == b.placements

    @given(
        n=st.integers(min_value=2, max_value=40),
        pes=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_always_feasible(self, n, pes, seed):
        graph = SyntheticGraphGenerator().generate(n, n - 1 + n // 3, seed=seed)
        kernel = compact_kernel_schedule(graph, pes)
        validate_kernel(graph, kernel, pes)
        assert kernel.period >= load_balance_bound(graph, pes)


class TestListSchedule:
    def test_honors_dependencies(self, chain_graph):
        kernel = list_schedule(chain_graph, 4)
        for left in range(5):
            assert kernel.finish(left) <= kernel.start(left + 1)

    def test_edge_latency_delays_consumers(self, chain_graph):
        plain = list_schedule(chain_graph, 2)
        slowed = list_schedule(chain_graph, 2, edge_latency=lambda e: 2)
        assert slowed.period == plain.period + 2 * 5  # 5 chain edges

    def test_chain_is_serial(self, chain_graph):
        kernel = list_schedule(chain_graph, 8)
        assert kernel.period == chain_graph.total_work()

    def test_parallel_branches_overlap(self, diamond_graph):
        kernel = list_schedule(diamond_graph, 2)
        assert kernel.period == 4  # 1 + 2 (parallel branches) + 1

    def test_single_pe_serializes(self, diamond_graph):
        kernel = list_schedule(diamond_graph, 1)
        assert kernel.period == diamond_graph.total_work()

    def test_respects_priority_override(self, figure2_graph):
        prio = {op.op_id: 0 for op in figure2_graph.operations()}
        kernel = list_schedule(figure2_graph, 2, priority=prio)
        validate_kernel(figure2_graph, kernel, 2)

    def test_invalid_pes(self, figure2_graph):
        with pytest.raises(ScheduleError):
            list_schedule(figure2_graph, 0)

    @given(
        n=st.integers(min_value=2, max_value=40),
        pes=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_dependencies_always_honored(self, n, pes, seed):
        graph = SyntheticGraphGenerator().generate(n, n - 1 + n // 3, seed=seed)
        kernel = list_schedule(graph, pes, edge_latency=lambda e: 1)
        validate_kernel(graph, kernel, pes)
        for edge in graph.edges():
            assert kernel.finish(edge.producer) + 1 <= kernel.start(edge.consumer)


class TestDownwardRank:
    def test_rank_decreases_along_edges(self, figure2_graph):
        rank = downward_rank(figure2_graph, lambda e: 0)
        for edge in figure2_graph.edges():
            assert rank[edge.producer] > rank[edge.consumer]

    def test_sink_rank_is_execution_time(self, chain_graph):
        rank = downward_rank(chain_graph, lambda e: 0)
        assert rank[5] == 1

    def test_chain_rank_accumulates(self, chain_graph):
        rank = downward_rank(chain_graph, lambda e: 0)
        assert rank[0] == chain_graph.total_work()


class TestWidthPolicies:
    def test_candidate_widths_widest_first(self):
        widths = candidate_group_widths(16)
        assert widths[0] == 16
        assert widths == sorted(set(widths), reverse=True)
        assert min(widths) >= MIN_GROUP_WIDTH

    def test_candidate_widths_tiny_array(self):
        assert candidate_group_widths(1) == [1]
        assert candidate_group_widths(2) == [2]

    def test_candidate_widths_invalid(self):
        with pytest.raises(ScheduleError):
            candidate_group_widths(0)

    def test_choose_group_width_full_when_saturated(self):
        # a heavy graph keeps the whole array busy
        graph = SyntheticGraphGenerator().generate(200, 300, seed=1)
        assert choose_group_width(graph, 8) == 8

    def test_choose_group_width_shrinks_for_tiny_graphs(self):
        graph = linear_chain([1, 1])
        width = choose_group_width(graph, 64)
        assert width < 64

    def test_choose_group_width_validates_target(self, figure2_graph):
        with pytest.raises(ScheduleError):
            choose_group_width(figure2_graph, 8, utilization_target=0.0)

    def test_effective_parallel_width_chain(self, chain_graph):
        # a chain gains nothing from more than one PE
        assert effective_parallel_width(chain_graph, 16) == 1

    def test_effective_parallel_width_branches(self, diamond_graph):
        assert effective_parallel_width(diamond_graph, 16) == 2
