"""Tests for cache liveness analysis and the liveness-aware mode."""

import pytest

from repro.core.liveness import (
    live_instances,
    liveness_weighted_problem,
    peak_cache_demand,
)
from repro.core.paraconv import ParaConv
from repro.core.retiming import EdgeTiming, RetimingError
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor


def timing(key, delta_cache=0, delta_edram=1, slots=2, deadline=0):
    return EdgeTiming(
        key=key, transfer_cache=0, transfer_edram=1,
        delta_cache=delta_cache, delta_edram=delta_edram,
        slots=slots, deadline=deadline,
    )


class TestLiveInstances:
    def test_zero_delta_one_instance(self):
        assert live_instances(0) == 1

    def test_each_delta_adds_one(self):
        assert live_instances(2) == 3

    def test_negative_rejected(self):
        with pytest.raises(RetimingError):
            live_instances(-1)


class TestPeakDemand:
    def test_only_cached_counted(self):
        timings = {
            (0, 1): timing((0, 1), delta_cache=1, slots=3),
            (1, 2): timing((1, 2), delta_cache=0, slots=5),
        }
        cached = {(0, 1): True, (1, 2): False}
        assert peak_cache_demand(timings, cached) == 3 * 2


class TestWeightedProblem:
    def test_weights_scaled_by_realized_delta(self):
        timings = {(0, 1): timing((0, 1), delta_cache=0, slots=2)}
        problem = liveness_weighted_problem(
            timings, capacity_slots=20, realized_delta={(0, 1): 3}
        )
        assert problem.items[0].slots == 2 * 4  # (3 + 1) instances

    def test_requirement_is_lower_bound(self):
        timings = {
            (0, 1): timing((0, 1), delta_cache=1, delta_edram=2, slots=2)
        }
        problem = liveness_weighted_problem(
            timings, capacity_slots=20, realized_delta={(0, 1): 0}
        )
        assert problem.items[0].slots == 2 * 2  # delta_cache wins over 0

    def test_indifferent_edges_preserved(self):
        timings = {
            (0, 1): timing((0, 1)),
            (1, 2): timing((1, 2), delta_edram=0),  # case 1: indifferent
        }
        problem = liveness_weighted_problem(timings, 10)
        assert (1, 2) in problem.indifferent

    def test_negative_capacity_rejected(self):
        with pytest.raises(RetimingError):
            liveness_weighted_problem({}, -1)


class TestLivenessAwarePipeline:
    @pytest.mark.parametrize("name", ["cat", "character-1", "shortest-path"])
    def test_no_spills_on_simulated_machine(self, name):
        config = PimConfig(num_pes=32, iterations=200)
        graph = synthetic_benchmark(name)
        result = ParaConv(config, liveness_aware=True).run(graph)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=12
        )
        assert trace.cache_spills == 0
        assert trace.slowdown == pytest.approx(1.0, abs=0.02)

    def test_total_time_not_worse(self):
        config = PimConfig(num_pes=32, iterations=200)
        graph = synthetic_benchmark("character-1")
        plain = ParaConv(config).run(graph)
        aware = ParaConv(config, liveness_aware=True).run(graph)
        assert aware.total_time() <= plain.total_time() * 1.05

    def test_peak_occupancy_within_capacity(self):
        config = PimConfig(num_pes=32, iterations=200)
        graph = synthetic_benchmark("shortest-path")
        result = ParaConv(config, liveness_aware=True).run(graph)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=12
        )
        capacity = config.total_cache_slots // result.num_groups
        assert trace.cache_peak_slots <= capacity
