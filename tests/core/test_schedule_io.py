"""Tests for schedule serialization (the deployable artifact)."""

import json

import pytest

from repro.core.paraconv import ParaConv
from repro.core.schedule import ScheduleError
from repro.core.schedule_io import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig


@pytest.fixture(scope="module")
def schedule():
    config = PimConfig(num_pes=16, iterations=100)
    return ParaConv(config).run(synthetic_benchmark("flower")).schedule


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self, schedule):
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.period == schedule.period
        assert restored.retiming == schedule.retiming
        assert restored.edge_retiming == schedule.edge_retiming
        assert restored.placements == schedule.placements
        assert restored.transfer_times == schedule.transfer_times
        assert restored.kernel.placements == schedule.kernel.placements

    def test_json_file_round_trip(self, schedule, tmp_path):
        path = tmp_path / "schedule.json"
        schedule_to_json(schedule, path)
        restored = schedule_from_json(path)
        assert restored.max_retiming == schedule.max_retiming
        assert restored.total_time(100) == schedule.total_time(100)

    def test_restored_schedule_still_executes(self, schedule, tmp_path):
        """A deployed schedule must run on the machine model unchanged."""
        from repro.core.expansion import expand, verify_expansion

        path = tmp_path / "schedule.json"
        schedule_to_json(schedule, path)
        restored = schedule_from_json(path)
        verify_expansion(expand(restored, iterations=4))


class TestValidationOnLoad:
    def test_bad_version_rejected(self, schedule):
        payload = schedule_to_dict(schedule)
        payload["format_version"] = 42
        with pytest.raises(ScheduleError, match="version"):
            schedule_from_dict(payload)

    def test_tampered_schedule_rejected(self, schedule):
        """Loading validates semantics, not just syntax."""
        payload = schedule_to_dict(schedule)
        # zero out the retiming: cross-iteration dependencies now break
        payload["retiming"] = {k: 0 for k in payload["retiming"]}
        payload["edge_retiming"] = [
            {**r, "value": 0} for r in payload["edge_retiming"]
        ]
        with pytest.raises(ScheduleError):
            schedule_from_dict(payload)

    def test_json_is_stable_text(self, schedule, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        schedule_to_json(schedule, a)
        schedule_to_json(schedule, b)
        assert a.read_text() == b.read_text()
        json.loads(a.read_text())  # well-formed
