"""The AllocatorFactory protocol: both factory shapes, pass-through of
plain callables, and typed rejection of everything else."""

import pytest

from repro.core.allocation import (
    ALLOCATORS,
    AllocationError,
    AllocatorFactory,
    dp_allocate,
    resolve_allocator,
)
from repro.core.iterative import IterativeAllocator
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges
from repro.core.scheduler import compact_kernel_schedule


@pytest.fixture
def analysis(figure2_graph, small_config):
    kernel = compact_kernel_schedule(figure2_graph, 2)
    timings = analyze_edges(figure2_graph, kernel, small_config)
    return figure2_graph, timings


class TestFactoryShapes:
    def test_class_shape_is_instantiated_per_run(self, analysis):
        graph, timings = analysis
        allocator = resolve_allocator(IterativeAllocator, graph, timings)
        assert isinstance(allocator, IterativeAllocator)
        assert allocator.graph is graph
        assert allocator.timings is timings

    def test_instance_shape_is_rebound_not_reused(self, analysis):
        graph, timings = analysis
        stale = IterativeAllocator(graph, {}, max_rounds=7)
        rebound = resolve_allocator(stale, graph, timings)
        assert rebound is not stale
        assert rebound.timings is timings
        # Configuration carried by the instance survives the rebind.
        assert rebound.max_rounds == 7

    def test_plain_callable_passes_through_untouched(self, analysis):
        graph, timings = analysis
        assert resolve_allocator(dp_allocate, graph, timings) is dp_allocate

    def test_callable_instance_passes_through(self, analysis):
        graph, timings = analysis

        class CallableStrategy:
            def __call__(self, problem):
                return dp_allocate(problem)

        strategy = CallableStrategy()
        assert resolve_allocator(strategy, graph, timings) is strategy

    def test_non_factory_class_is_rejected(self, analysis):
        graph, timings = analysis

        class NotAFactory:
            def __init__(self, some, other, shape):  # pragma: no cover
                pass

        with pytest.raises(AllocationError):
            resolve_allocator(NotAFactory, graph, timings)

    def test_non_callable_is_rejected(self, analysis):
        graph, timings = analysis
        with pytest.raises(AllocationError):
            resolve_allocator(42, graph, timings)


class TestPipelineIntegration:
    def test_registry_entry_is_the_factory_class(self):
        assert ALLOCATORS["iterative"] is IterativeAllocator
        assert issubclass(IterativeAllocator, AllocatorFactory)

    def test_pipeline_resolves_class_and_instance_identically(
        self, figure2_graph, small_config
    ):
        by_name = ParaConv(
            small_config, allocator_name="iterative"
        ).run_at_width(figure2_graph, 2)
        by_instance = ParaConv(
            small_config,
            allocator=IterativeAllocator(figure2_graph, {}),
        ).run_at_width(figure2_graph, 2)
        assert by_name.allocation.cached == by_instance.allocation.cached
        assert by_name.total_time() == by_instance.total_time()

    def test_pipeline_rejects_non_factory_class(
        self, figure2_graph, small_config
    ):
        class Bogus:
            pass

        with pytest.raises(AllocationError):
            ParaConv(small_config, allocator=Bogus).run_at_width(
                figure2_graph, 2
            )


class TestAllocatorSpecs:
    """String specs: names, budget suffixes, and the typed error path."""

    def test_bare_name_resolves_to_registry_entry(self, analysis):
        graph, timings = analysis
        assert resolve_allocator("dp", graph, timings) is ALLOCATORS["dp"]

    def test_unknown_name_raises_typed_error(self, analysis):
        from repro.core.allocation import UnknownAllocatorError

        graph, timings = analysis
        with pytest.raises(UnknownAllocatorError) as excinfo:
            resolve_allocator("simulated-annealing", graph, timings)
        error = excinfo.value
        assert error.spec == "simulated-annealing"
        assert error.choices == sorted(ALLOCATORS)
        # Every registered allocator is enumerated in the message.
        for name in ALLOCATORS:
            assert name in str(error)

    def test_unknown_allocator_error_is_a_value_error(self, analysis):
        """Callers guarding the old bare-ValueError path keep working."""
        from repro.core.allocation import UnknownAllocatorError

        graph, timings = analysis
        with pytest.raises(ValueError):
            resolve_allocator("bogus", graph, timings)
        assert issubclass(UnknownAllocatorError, ValueError)
        assert issubclass(UnknownAllocatorError, AllocationError)

    def test_parse_allocator_spec(self):
        from repro.core.allocation import (
            UnknownAllocatorError,
            parse_allocator_spec,
        )

        assert parse_allocator_spec("dp") == ("dp", None)
        assert parse_allocator_spec("anneal") == ("anneal", None)
        assert parse_allocator_spec("anneal:5000") == ("anneal", 5000)
        assert parse_allocator_spec("portfolio:800") == ("portfolio", 800)
        for bad in ("dp:100", "anneal:", "anneal:many", "anneal:-1", "nope"):
            with pytest.raises(UnknownAllocatorError):
                parse_allocator_spec(bad)

    def test_canonical_spec_normalizes_budgets(self):
        from repro.core.allocation import canonical_allocator_spec
        from repro.core.search import DEFAULT_SEARCH_BUDGET

        assert canonical_allocator_spec("dp") == "dp"
        assert (
            canonical_allocator_spec("anneal")
            == f"anneal:{DEFAULT_SEARCH_BUDGET}"
        )
        assert canonical_allocator_spec("anneal:500") == "anneal:500"
        assert (
            canonical_allocator_spec("portfolio")
            == f"portfolio:{DEFAULT_SEARCH_BUDGET}"
        )

    def test_budgeted_spec_builds_fresh_instance(self, analysis):
        from repro.core.search import AnnealAllocator

        graph, timings = analysis
        allocator = resolve_allocator("anneal:123", graph, timings)
        assert isinstance(allocator, AnnealAllocator)
        assert allocator.max_evals == 123
        assert allocator is not ALLOCATORS["anneal"]

    def test_pipeline_accepts_budgeted_spec(self, figure2_graph, small_config):
        by_spec = ParaConv(
            small_config, allocator_name="anneal:300"
        ).run_at_width(figure2_graph, 2)
        by_dp = ParaConv(small_config).run_at_width(figure2_graph, 2)
        assert (
            by_spec.allocation.total_delta_r
            >= by_dp.allocation.total_delta_r
        )
        assert by_spec.compile_stats.search["budget"] == 300

    def test_pipeline_rejects_unknown_spec(self, figure2_graph, small_config):
        with pytest.raises(ValueError):
            ParaConv(
                small_config, allocator_name="annealing"
            ).run_at_width(figure2_graph, 2)
