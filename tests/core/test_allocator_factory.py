"""The AllocatorFactory protocol: both factory shapes, pass-through of
plain callables, and typed rejection of everything else."""

import pytest

from repro.core.allocation import (
    ALLOCATORS,
    AllocationError,
    AllocatorFactory,
    dp_allocate,
    resolve_allocator,
)
from repro.core.iterative import IterativeAllocator
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges
from repro.core.scheduler import compact_kernel_schedule


@pytest.fixture
def analysis(figure2_graph, small_config):
    kernel = compact_kernel_schedule(figure2_graph, 2)
    timings = analyze_edges(figure2_graph, kernel, small_config)
    return figure2_graph, timings


class TestFactoryShapes:
    def test_class_shape_is_instantiated_per_run(self, analysis):
        graph, timings = analysis
        allocator = resolve_allocator(IterativeAllocator, graph, timings)
        assert isinstance(allocator, IterativeAllocator)
        assert allocator.graph is graph
        assert allocator.timings is timings

    def test_instance_shape_is_rebound_not_reused(self, analysis):
        graph, timings = analysis
        stale = IterativeAllocator(graph, {}, max_rounds=7)
        rebound = resolve_allocator(stale, graph, timings)
        assert rebound is not stale
        assert rebound.timings is timings
        # Configuration carried by the instance survives the rebind.
        assert rebound.max_rounds == 7

    def test_plain_callable_passes_through_untouched(self, analysis):
        graph, timings = analysis
        assert resolve_allocator(dp_allocate, graph, timings) is dp_allocate

    def test_callable_instance_passes_through(self, analysis):
        graph, timings = analysis

        class CallableStrategy:
            def __call__(self, problem):
                return dp_allocate(problem)

        strategy = CallableStrategy()
        assert resolve_allocator(strategy, graph, timings) is strategy

    def test_non_factory_class_is_rejected(self, analysis):
        graph, timings = analysis

        class NotAFactory:
            def __init__(self, some, other, shape):  # pragma: no cover
                pass

        with pytest.raises(AllocationError):
            resolve_allocator(NotAFactory, graph, timings)

    def test_non_callable_is_rejected(self, analysis):
        graph, timings = analysis
        with pytest.raises(AllocationError):
            resolve_allocator(42, graph, timings)


class TestPipelineIntegration:
    def test_registry_entry_is_the_factory_class(self):
        assert ALLOCATORS["iterative"] is IterativeAllocator
        assert issubclass(IterativeAllocator, AllocatorFactory)

    def test_pipeline_resolves_class_and_instance_identically(
        self, figure2_graph, small_config
    ):
        by_name = ParaConv(
            small_config, allocator_name="iterative"
        ).run_at_width(figure2_graph, 2)
        by_instance = ParaConv(
            small_config,
            allocator=IterativeAllocator(figure2_graph, {}),
        ).run_at_width(figure2_graph, 2)
        assert by_name.allocation.cached == by_instance.allocation.cached
        assert by_name.total_time() == by_instance.total_time()

    def test_pipeline_rejects_non_factory_class(
        self, figure2_graph, small_config
    ):
        class Bogus:
            pass

        with pytest.raises(AllocationError):
            ParaConv(small_config, allocator=Bogus).run_at_width(
                figure2_graph, 2
            )
