"""Tests for the critical-path-aware iterative allocator (extension)."""


from repro.core.allocation import ALLOCATORS
from repro.core.iterative import IterativeAllocator, _longest_path_edges
from repro.core.paraconv import ParaConv
from repro.core.schedule import validate_periodic_schedule
from repro.graph.generators import synthetic_benchmark
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig


class TestLongestPath:
    def test_weighted_path(self, diamond_graph):
        deltas = {(0, 1): 2, (0, 2): 1, (1, 3): 0, (2, 3): 3}
        value, path = _longest_path_edges(diamond_graph, deltas)
        assert value == 4  # 0 ->(1) 2 ->(3) 3
        assert path == [(0, 2), (2, 3)]

    def test_zero_weights(self, diamond_graph):
        deltas = {e.key: 0 for e in diamond_graph.edges()}
        value, path = _longest_path_edges(diamond_graph, deltas)
        assert value == 0
        assert path == []

    def test_empty_graph(self):
        assert _longest_path_edges(TaskGraph(), {}) == (0, [])


class TestIterativeAllocator:
    def test_registered(self):
        assert ALLOCATORS["iterative"] is IterativeAllocator

    def test_never_worse_rmax_than_dp(self):
        config = PimConfig(num_pes=32)
        for name in ("flower", "shortest-path", "protein"):
            graph = synthetic_benchmark(name)
            dp = ParaConv(config, allocator_name="dp").run_at_width(graph, 32)
            it = ParaConv(config, allocator_name="iterative").run_at_width(
                graph, 32
            )
            assert it.max_retiming <= dp.max_retiming

    def test_matches_oracle_rmax_on_protein(self):
        # The headline ablation result: targeting the critical path reaches
        # the capacity-oblivious lower bound with a fraction of the cache.
        config = PimConfig(num_pes=32)
        graph = synthetic_benchmark("protein")
        it = ParaConv(config, allocator_name="iterative").run_at_width(graph, 32)
        oracle = ParaConv(config, allocator_name="oracle").run_at_width(graph, 32)
        assert it.max_retiming == oracle.max_retiming
        assert it.num_cached < oracle.num_cached

    def test_respects_capacity(self):
        config = PimConfig(num_pes=4, cache_bytes_per_pe=1024)
        graph = synthetic_benchmark("character-1")
        result = ParaConv(config, allocator_name="iterative").run_at_width(
            graph, 4
        )
        assert result.allocation.slots_used <= config.total_cache_slots

    def test_schedule_remains_valid(self):
        config = PimConfig(num_pes=16)
        graph = synthetic_benchmark("image-compress")
        result = ParaConv(config, allocator_name="iterative").run(graph)
        validate_periodic_schedule(result.schedule)
