"""Tests for schedule objects and the semantic validators."""

import pytest

from repro.core.schedule import (
    KernelSchedule,
    PeriodicSchedule,
    PlacedOp,
    ScheduleError,
    validate_kernel,
    validate_periodic_schedule,
)
from repro.pim.memory import Placement


class TestPlacedOp:
    def test_duration(self):
        op = PlacedOp(0, pe=1, start=2, finish=5)
        assert op.duration == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": -1, "finish": 1},
            {"start": 3, "finish": 3},
            {"start": 3, "finish": 2},
            {"start": 0, "finish": 1, "pe": -1},
        ],
    )
    def test_invalid_windows_rejected(self, kwargs):
        base = {"op_id": 0, "pe": 0, "start": 0, "finish": 1}
        base.update(kwargs)
        with pytest.raises(ScheduleError):
            PlacedOp(**base)


class TestKernelSchedule:
    def test_accessors(self):
        kernel = KernelSchedule(
            period=5,
            placements={
                0: PlacedOp(0, 0, 0, 2),
                1: PlacedOp(1, 1, 1, 4),
            },
        )
        assert kernel.start(0) == 0
        assert kernel.finish(1) == 4
        assert kernel.pe_of(1) == 1
        assert kernel.makespan() == 4
        assert kernel.pes_used() == 2
        assert kernel.utilization(2) == pytest.approx(5 / 10)

    def test_missing_op_raises(self):
        kernel = KernelSchedule(period=5)
        with pytest.raises(ScheduleError, match="missing"):
            kernel.start(3)


def _manual_kernel(diamond_graph, period=3):
    # valid hand schedule: T0 on PE0 [0,1), T1 PE0 [1,3), T2 PE1 [1,3),
    # T3 PE1... needs T3 after, use period 4 instead
    return KernelSchedule(
        period=4,
        placements={
            0: PlacedOp(0, 0, 0, 1),
            1: PlacedOp(1, 0, 1, 3),
            2: PlacedOp(2, 1, 0, 2),
            3: PlacedOp(3, 1, 2, 3),
        },
    )


class TestValidateKernel:
    def test_valid_kernel_passes(self, diamond_graph):
        validate_kernel(diamond_graph, _manual_kernel(diamond_graph), num_pes=2)

    def test_missing_op_detected(self, diamond_graph):
        kernel = _manual_kernel(diamond_graph)
        del kernel.placements[3]
        with pytest.raises(ScheduleError, match="mismatch"):
            validate_kernel(diamond_graph, kernel, 2)

    def test_pe_out_of_range_detected(self, diamond_graph):
        kernel = _manual_kernel(diamond_graph)
        kernel.placements[0] = PlacedOp(0, 7, 0, 1)
        with pytest.raises(ScheduleError, match="only 2 PEs"):
            validate_kernel(diamond_graph, kernel, 2)

    def test_period_overrun_detected(self, diamond_graph):
        kernel = _manual_kernel(diamond_graph)
        kernel.placements[3] = PlacedOp(3, 1, 4, 5)
        with pytest.raises(ScheduleError, match="past"):
            validate_kernel(diamond_graph, kernel, 2)

    def test_wrong_duration_detected(self, diamond_graph):
        kernel = _manual_kernel(diamond_graph)
        kernel.placements[1] = PlacedOp(1, 0, 1, 2)  # c_1 is 2, not 1
        with pytest.raises(ScheduleError, match="occupies"):
            validate_kernel(diamond_graph, kernel, 2)

    def test_overlap_detected(self, diamond_graph):
        kernel = _manual_kernel(diamond_graph)
        kernel.placements[2] = PlacedOp(2, 0, 0, 2)  # collides with T0/T1
        with pytest.raises(ScheduleError, match="overlap"):
            validate_kernel(diamond_graph, kernel, 2)


def _periodic(diamond_graph, retiming, placements=None, transfers=None):
    kernel = _manual_kernel(diamond_graph)
    edge_keys = [e.key for e in diamond_graph.edges()]
    placement_map = placements or {k: Placement.CACHE for k in edge_keys}
    transfer_map = transfers or {k: 0 for k in edge_keys}
    edge_retiming = {
        k: retiming[k[1]] for k in edge_keys
    }
    return PeriodicSchedule(
        graph=diamond_graph,
        kernel=kernel,
        retiming=retiming,
        edge_retiming=edge_retiming,
        placements=placement_map,
        transfer_times=transfer_map,
    )


class TestPeriodicSchedule:
    def test_metrics(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 2, 1: 1, 2: 1, 3: 0})
        assert schedule.period == 4
        assert schedule.max_retiming == 2
        assert schedule.prologue_time == 8
        assert schedule.total_time(10) == 8 + 40
        assert schedule.relative_retiming(0, 1) == 1

    def test_total_time_rejects_zero(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 0, 1: 0, 2: 0, 3: 0})
        with pytest.raises(ScheduleError):
            schedule.total_time(0)

    def test_cached_edges(self, diamond_graph):
        placements = {
            (0, 1): Placement.CACHE,
            (0, 2): Placement.EDRAM,
            (1, 3): Placement.CACHE,
            (2, 3): Placement.EDRAM,
        }
        schedule = _periodic(
            diamond_graph, {0: 1, 1: 0, 2: 1, 3: 0}, placements=placements,
            transfers={k: 1 for k in placements},
        )
        assert set(schedule.cached_edges()) == {(0, 1), (1, 3)}

    def test_prologue_rounds(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 2, 1: 1, 2: 1, 3: 0})
        rounds = schedule.prologue_rounds()
        assert rounds == [[0], [0, 1, 2]]


class TestValidatePeriodicSchedule:
    def test_valid_retiming_passes(self, diamond_graph):
        # T1 finishes at 3 but T3 starts at 2: edge (1,3) needs delta >= 1
        schedule = _periodic(diamond_graph, {0: 2, 1: 1, 2: 1, 3: 0})
        validate_periodic_schedule(schedule)

    def test_data_arrival_violation_detected(self, diamond_graph):
        # zero retiming: edge (1,3) data arrives at 3 after T3 starts at 2
        schedule = _periodic(diamond_graph, {0: 0, 1: 0, 2: 0, 3: 0})
        with pytest.raises(ScheduleError, match="arrives"):
            validate_periodic_schedule(schedule)

    def test_dependency_direction_violation(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 0, 1: 1, 2: 1, 3: 2})
        with pytest.raises(ScheduleError, match="breaks the dependency"):
            validate_periodic_schedule(schedule)

    def test_negative_retiming_rejected(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: -1, 1: 0, 2: 0, 3: 0})
        with pytest.raises(ScheduleError, match="negative"):
            validate_periodic_schedule(schedule)

    def test_transfer_longer_than_period_rejected(self, diamond_graph):
        schedule = _periodic(
            diamond_graph,
            {0: 2, 1: 1, 2: 1, 3: 0},
            transfers={k.key: 99 for k in diamond_graph.edges()},
        )
        with pytest.raises(ScheduleError, match="exceeds period"):
            validate_periodic_schedule(schedule)

    def test_missing_placement_rejected(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 2, 1: 1, 2: 1, 3: 0})
        del schedule.placements[(0, 1)]
        with pytest.raises(ScheduleError, match="no placement"):
            validate_periodic_schedule(schedule)

    def test_illegal_edge_retiming_rejected(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 2, 1: 1, 2: 1, 3: 0})
        schedule.edge_retiming[(0, 1)] = 5  # outside [R(j), R(i)] = [1, 2]
        with pytest.raises(ScheduleError, match="illegal retiming"):
            validate_periodic_schedule(schedule)

    def test_legality_check_can_be_skipped(self, diamond_graph):
        schedule = _periodic(diamond_graph, {0: 2, 1: 1, 2: 1, 3: 0})
        schedule.edge_retiming.clear()
        validate_periodic_schedule(schedule, check_legality=False)
