"""End-to-end tests of the Para-CONV pipeline invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.paraconv import ParaConv
from repro.core.schedule import ScheduleError, validate_periodic_schedule
from repro.core.scheduler import load_balance_bound
from repro.graph.generators import SyntheticGraphGenerator, synthetic_benchmark
from repro.pim.config import PimConfig
from repro.pim.memory import Placement


class TestPipelineBasics:
    def test_produces_valid_schedule(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        validate_periodic_schedule(result.schedule)

    def test_period_meets_load_balance_bound(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        assert result.period >= load_balance_bound(
            figure2_graph, result.group_width
        )

    def test_groups_tile_the_array(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        assert result.group_width * result.num_groups <= small_config.num_pes
        assert result.num_groups >= 1

    def test_total_time_formula(self, figure2_graph, small_config):
        import math

        result = ParaConv(small_config).run(figure2_graph)
        n = small_config.iterations
        expected = result.prologue_time + math.ceil(
            n / result.num_groups
        ) * result.period
        assert result.total_time() == expected

    def test_total_time_rejects_bad_iterations(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        with pytest.raises(ScheduleError):
            result.total_time(0)

    def test_throughput_consistency(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        assert result.throughput(100) == pytest.approx(
            100 / result.total_time(100)
        )

    def test_every_edge_placed(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        assert set(result.schedule.placements) == {
            e.key for e in figure2_graph.edges()
        }

    def test_case_histogram_covers_edges(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        assert sum(result.case_histogram.values()) == figure2_graph.num_edges

    def test_summary_mentions_key_metrics(self, figure2_graph, small_config):
        text = ParaConv(small_config).run(figure2_graph).summary()
        assert "R_max" in text
        assert "period" in text
        assert "figure2" in text

    def test_run_at_width_bounds(self, figure2_graph, small_config):
        pipeline = ParaConv(small_config)
        with pytest.raises(ScheduleError):
            pipeline.run_at_width(figure2_graph, 0)
        with pytest.raises(ScheduleError):
            pipeline.run_at_width(figure2_graph, 99)

    def test_run_selects_best_width(self, figure2_graph, small_config):
        pipeline = ParaConv(small_config)
        best = pipeline.run(figure2_graph)
        from repro.core.scheduler import candidate_group_widths

        for width in candidate_group_widths(small_config.num_pes):
            assert best.total_time() <= pipeline.run_at_width(
                figure2_graph, width
            ).total_time()


class TestAllocatorSelection:
    def test_by_name(self, figure2_graph, small_config):
        result = ParaConv(small_config, allocator_name="greedy").run(
            figure2_graph
        )
        assert result.allocation.method == "greedy"

    def test_unknown_name_rejected(self, small_config):
        with pytest.raises(ValueError, match="unknown allocator"):
            ParaConv(small_config, allocator_name="magic")

    def test_both_forms_rejected(self, small_config):
        from repro.core.allocation import dp_allocate

        with pytest.raises(ValueError, match="not both"):
            ParaConv(small_config, allocator=dp_allocate, allocator_name="dp")

    def test_dp_never_worse_than_all_edram(self, small_config):
        graph = synthetic_benchmark("flower")
        dp = ParaConv(small_config).run_at_width(graph, 4)
        edram = ParaConv(small_config, allocator_name="all-edram").run_at_width(
            graph, 4
        )
        assert dp.max_retiming <= edram.max_retiming
        assert dp.total_time() <= edram.total_time()

    def test_oracle_never_worse_than_dp(self, small_config):
        graph = synthetic_benchmark("flower")
        dp = ParaConv(small_config).run_at_width(graph, 4)
        oracle = ParaConv(small_config, allocator_name="oracle").run_at_width(
            graph, 4
        )
        assert oracle.max_retiming <= dp.max_retiming


class TestCapacityAccounting:
    def test_cache_capacity_respected(self, small_config):
        graph = synthetic_benchmark("character-1")
        result = ParaConv(small_config).run(graph)
        per_group = small_config.total_cache_slots // result.num_groups
        assert result.allocation.slots_used <= per_group

    def test_offchip_bytes_match_placements(self, figure2_graph, small_config):
        result = ParaConv(small_config).run(figure2_graph)
        expected = sum(
            e.size_bytes
            for e in figure2_graph.edges()
            if result.schedule.placements[e.key] is Placement.EDRAM
        )
        assert result.offchip_bytes_per_iteration() == expected

    def test_zero_cache_machine_still_works(self):
        config = PimConfig(num_pes=4, cache_bytes_per_pe=0, iterations=50)
        result = ParaConv(config).run(synthetic_benchmark("cat"))
        assert result.num_cached == 0
        validate_periodic_schedule(result.schedule)


class TestPropertyBased:
    @given(
        n=st.integers(min_value=4, max_value=50),
        pes=st.sampled_from([2, 4, 8, 16]),
        seed=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_produce_valid_schedules(self, n, pes, seed):
        graph = SyntheticGraphGenerator().generate(n, n - 1 + n // 2, seed=seed)
        config = PimConfig(num_pes=pes, iterations=100)
        result = ParaConv(config).run(graph)
        validate_periodic_schedule(result.schedule)
        assert result.period >= load_balance_bound(graph, result.group_width)
        assert result.max_retiming >= 0
        assert 0 <= result.num_cached <= graph.num_edges
