"""Defensive-validation contract: bad inputs fail loudly and typed.

Machine descriptions (:class:`PimConfig`) and allocation instances
(:class:`AllocationProblem`) are the two data types that cross subsystem
boundaries; both must reject malformed values at the entry point with a
typed error instead of propagating garbage into the planner.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import (
    ALLOCATORS,
    AllocationError,
    AllocationItem,
    AllocationProblem,
)
from repro.core.retiming import RetimingError
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import ConfigurationError, PimConfig
from repro.runtime.session import InferenceSession
from repro.verify.oracle import exhaustive_allocate

PLAIN_ALLOCATORS = sorted(set(ALLOCATORS) - {"iterative"})


def item(key=(0, 1), slots=2, delta_r=3, deadline=1) -> AllocationItem:
    return AllocationItem(key=key, slots=slots, delta_r=delta_r,
                          deadline=deadline)


class TestPimConfigRejects:
    @pytest.mark.parametrize("pes", [0, -1, -16])
    def test_non_positive_pe_count(self, pes):
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=pes)

    @pytest.mark.parametrize("cache", [-1, -4096])
    def test_negative_cache(self, cache):
        with pytest.raises(ConfigurationError):
            PimConfig(cache_bytes_per_pe=cache)

    @pytest.mark.parametrize("slot", [0, -512])
    def test_non_positive_slot_size(self, slot):
        with pytest.raises(ConfigurationError):
            PimConfig(cache_slot_bytes=slot)

    @pytest.mark.parametrize("iterations", [0, -5])
    def test_non_positive_iterations(self, iterations):
        with pytest.raises(ConfigurationError):
            PimConfig(iterations=iterations)

    def test_zero_cache_is_legal(self):
        """Capacity 0 is a real machine (all-eDRAM), not an error."""
        assert PimConfig(cache_bytes_per_pe=0).total_cache_slots == 0


class TestAllocationProblemRejects:
    @pytest.mark.parametrize("capacity", [-1, -100])
    @pytest.mark.parametrize("method", PLAIN_ALLOCATORS)
    def test_negative_capacity(self, method, capacity):
        problem = AllocationProblem(items=[item()], capacity_slots=capacity)
        with pytest.raises(AllocationError):
            ALLOCATORS[method](problem)

    @pytest.mark.parametrize("method", PLAIN_ALLOCATORS)
    def test_non_positive_slots(self, method):
        problem = AllocationProblem(items=[item(slots=0)], capacity_slots=8)
        with pytest.raises(AllocationError):
            ALLOCATORS[method](problem)

    @pytest.mark.parametrize("method", PLAIN_ALLOCATORS)
    def test_negative_profit(self, method):
        problem = AllocationProblem(items=[item(delta_r=-1)], capacity_slots=8)
        with pytest.raises(AllocationError):
            ALLOCATORS[method](problem)

    @pytest.mark.parametrize("method", PLAIN_ALLOCATORS)
    def test_duplicate_keys(self, method):
        problem = AllocationProblem(
            items=[item(), item()], capacity_slots=8
        )
        with pytest.raises(AllocationError):
            ALLOCATORS[method](problem)

    def test_non_integer_capacity(self):
        problem = AllocationProblem(items=[item()], capacity_slots=4.5)
        with pytest.raises(AllocationError):
            ALLOCATORS["dp"](problem)

    def test_competing_and_indifferent_overlap(self):
        problem = AllocationProblem(
            items=[item(key=(2, 3))], capacity_slots=8,
            indifferent=[(2, 3)],
        )
        with pytest.raises(AllocationError):
            ALLOCATORS["greedy"](problem)

    def test_exhaustive_oracle_validates_too(self):
        problem = AllocationProblem(items=[item()], capacity_slots=-1)
        with pytest.raises(AllocationError):
            exhaustive_allocate(problem)

    def test_allocation_error_is_a_retiming_error(self):
        """Existing ``except RetimingError`` guards keep working."""
        assert issubclass(AllocationError, RetimingError)

    def test_zero_capacity_is_legal(self):
        result = ALLOCATORS["dp"](
            AllocationProblem(items=[item()], capacity_slots=0)
        )
        assert result.cached == []
        assert result.slots_used == 0


class TestSessionRejects:
    def test_unknown_allocator_fails_at_construction(self):
        graph = synthetic_benchmark("cat")
        with pytest.raises(ValueError, match="unknown allocator"):
            InferenceSession(graph, PimConfig(), allocator="nonesuch")

    @pytest.mark.parametrize("vaults", [0, -4])
    def test_non_positive_vaults(self, vaults):
        graph = synthetic_benchmark("cat")
        with pytest.raises(ValueError, match="num_vaults"):
            InferenceSession(graph, PimConfig(), num_vaults=vaults)
