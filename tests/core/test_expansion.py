"""Tests for the analytic schedule expansion."""

import pytest

from repro.core.expansion import expand, verify_expansion
from repro.core.paraconv import ParaConv
from repro.core.schedule import ScheduleError
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig


@pytest.fixture(scope="module")
def expanded():
    config = PimConfig(num_pes=16, iterations=100)
    result = ParaConv(config).run(synthetic_benchmark("flower"))
    return result, expand(result.schedule, iterations=8)


class TestExpand:
    def test_instance_count(self, expanded):
        result, exp = expanded
        assert len(exp.instances) == result.graph.num_vertices * 8

    def test_round_placement_formula(self, expanded):
        result, exp = expanded
        schedule = result.schedule
        r_max = schedule.max_retiming
        for inst in exp.instances:
            expected_round = inst.iteration + r_max - schedule.retiming[inst.op_id]
            assert inst.round_index == expected_round
            base = (expected_round - 1) * schedule.period
            assert inst.start == base + schedule.kernel.start(inst.op_id)

    def test_makespan_bounded_by_rounds(self, expanded):
        result, exp = expanded
        assert exp.makespan <= exp.num_rounds * result.period

    def test_instances_in_round(self, expanded):
        result, exp = expanded
        # round 1 holds only the deepest-retimed operations
        first = exp.instances_in_round(1)
        r_max = result.schedule.max_retiming
        assert all(
            result.schedule.retiming[i.op_id] == r_max for i in first
        )
        assert len(first) >= 1

    def test_instance_lookup(self, expanded):
        _, exp = expanded
        inst = exp.instance(0, 3)
        assert (inst.op_id, inst.iteration) == (0, 3)
        with pytest.raises(ScheduleError):
            exp.instance(0, 999)

    def test_per_pe_timeline_sorted(self, expanded):
        _, exp = expanded
        for instances in exp.per_pe_timeline().values():
            starts = [i.start for i in instances]
            assert starts == sorted(starts)

    def test_invalid_iterations(self, expanded):
        result, _ = expanded
        with pytest.raises(ScheduleError):
            expand(result.schedule, 0)


class TestVerify:
    @pytest.mark.parametrize("name", ["cat", "car", "character-2"])
    def test_pipeline_expansions_verify(self, name):
        config = PimConfig(num_pes=16, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark(name))
        verify_expansion(expand(result.schedule, iterations=6))

    def test_matches_executor_timing(self):
        """The closed-form expansion equals the simulated execution."""
        from repro.sim.executor import ScheduleExecutor

        config = PimConfig(num_pes=16, iterations=100)
        result = ParaConv(config).run(synthetic_benchmark("car"))
        exp = expand(result.schedule, iterations=6)
        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=6
        )
        simulated = {
            (r.op_id, r.iteration): (r.start, r.finish) for r in trace.records
        }
        late = 0
        for inst in exp.instances:
            sim_start, sim_finish = simulated[(inst.op_id, inst.iteration)]
            # the simulator may only ever be late (contention), never early
            assert sim_start >= inst.start
            late += sim_start - inst.start
        # and in aggregate the machine tracks the analytic plan closely
        assert late <= len(exp.instances)
