"""Tests for the retiming analysis (paper Sections 2.3 and 3.2)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.retiming import (
    EdgeTiming,
    RetimingError,
    analyze_edges,
    max_retiming_for_placement,
    required_retiming,
    solve_retiming,
)
from repro.core.scheduler import compact_kernel_schedule
from repro.graph.generators import SyntheticGraphGenerator
from repro.graph.taskgraph import TaskGraph
from repro.pim.memory import Placement


class TestRequiredRetiming:
    def test_no_retiming_when_slack(self):
        # producer finishes at 2, transfer 0, consumer starts at 5
        assert required_retiming(finish=2, start=5, transfer=0, period=10) == 0

    def test_exact_fit_needs_none(self):
        assert required_retiming(finish=3, start=3, transfer=0, period=10) == 0

    def test_one_iteration(self):
        assert required_retiming(finish=5, start=2, transfer=0, period=10) == 1

    def test_two_iterations(self):
        # worst legal case: finish = p, transfer = p, start = 0
        assert required_retiming(finish=10, start=0, transfer=10, period=10) == 2

    def test_transfer_pushes_over(self):
        assert required_retiming(finish=3, start=4, transfer=2, period=10) == 1

    def test_invalid_inputs(self):
        with pytest.raises(RetimingError):
            required_retiming(0, 0, 0, 0)
        with pytest.raises(RetimingError):
            required_retiming(0, 0, -1, 5)

    @given(
        finish=st.integers(min_value=0, max_value=50),
        start=st.integers(min_value=0, max_value=50),
        transfer=st.integers(min_value=0, max_value=50),
        period=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_result_is_minimal(self, finish, start, transfer, period):
        delta = required_retiming(finish, start, transfer, period)
        # delta satisfies the arrival constraint...
        assert finish + transfer <= delta * period + start
        # ...and delta - 1 would not
        if delta > 0:
            assert finish + transfer > (delta - 1) * period + start

    @given(
        finish=st.integers(min_value=0, max_value=30),
        start=st.integers(min_value=0, max_value=30),
        period=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem_bound_under_premises(self, finish, start, period):
        # Theorem 3.1 premises: finish <= p and transfer <= p
        finish = min(finish, period)
        transfer = min(start, period)  # any transfer <= p works
        delta = required_retiming(finish, start, transfer, period)
        assert delta <= 2


class TestAnalyzeEdges:
    def test_all_edges_analyzed(self, figure2_graph, small_config):
        kernel = compact_kernel_schedule(figure2_graph, small_config.num_pes)
        timings = analyze_edges(figure2_graph, kernel, small_config)
        assert set(timings) == {e.key for e in figure2_graph.edges()}

    def test_deltas_within_theorem_bound(self, figure2_graph, small_config):
        kernel = compact_kernel_schedule(figure2_graph, small_config.num_pes)
        for timing in analyze_edges(figure2_graph, kernel, small_config).values():
            assert 0 <= timing.delta_cache <= 2
            assert timing.delta_cache <= timing.delta_edram <= 2

    def test_delta_r_non_negative(self, figure2_graph, small_config):
        kernel = compact_kernel_schedule(figure2_graph, small_config.num_pes)
        for timing in analyze_edges(figure2_graph, kernel, small_config).values():
            assert timing.delta_r == timing.delta_edram - timing.delta_cache
            assert timing.delta_r >= 0

    def test_transfer_clamped_to_period(self, small_config):
        graph = TaskGraph()
        graph.add_op(0, execution_time=1)
        graph.add_op(1, execution_time=1)
        graph.connect(0, 1, size_bytes=1_000_000)  # enormous transfer
        kernel = compact_kernel_schedule(graph, 2)
        timings = analyze_edges(graph, kernel, small_config)
        assert timings[(0, 1)].transfer_edram <= kernel.period

    def test_deadline_is_consumer_start(self, figure2_graph, small_config):
        kernel = compact_kernel_schedule(figure2_graph, small_config.num_pes)
        timings = analyze_edges(figure2_graph, kernel, small_config)
        for key, timing in timings.items():
            assert timing.deadline == kernel.start(key[1])

    def test_accessors(self):
        timing = EdgeTiming(
            key=(0, 1), transfer_cache=0, transfer_edram=2,
            delta_cache=0, delta_edram=1, slots=2, deadline=3,
        )
        assert timing.delta_for(Placement.CACHE) == 0
        assert timing.delta_for(Placement.EDRAM) == 1
        assert timing.transfer_for(Placement.CACHE) == 0
        assert timing.transfer_for(Placement.EDRAM) == 2


class TestSolveRetiming:
    def test_chain_accumulates(self, chain_graph):
        deltas = {e.key: 1 for e in chain_graph.edges()}
        solution = solve_retiming(chain_graph, deltas)
        assert solution.max_retiming == 5  # 5 edges, 1 each
        assert solution.vertex_retiming[0] == 5
        assert solution.vertex_retiming[5] == 0

    def test_zero_deltas_zero_retiming(self, figure2_graph):
        deltas = {e.key: 0 for e in figure2_graph.edges()}
        solution = solve_retiming(figure2_graph, deltas)
        assert solution.max_retiming == 0

    def test_legality(self, figure2_graph):
        deltas = {e.key: (1 if e.producer == 0 else 0) for e in figure2_graph.edges()}
        solution = solve_retiming(figure2_graph, deltas)
        assert solution.is_legal()
        for (i, j), r_ij in solution.edge_retiming.items():
            assert solution.vertex_retiming[i] >= r_ij >= solution.vertex_retiming[j]

    def test_minimality(self, diamond_graph):
        # R must be the pointwise minimum satisfying all constraints:
        deltas = {(0, 1): 2, (0, 2): 0, (1, 3): 0, (2, 3): 1}
        solution = solve_retiming(diamond_graph, deltas)
        r = solution.vertex_retiming
        assert r[3] == 0
        assert r[1] == 0
        assert r[2] == 1
        assert r[0] == 2  # max(r1 + 2, r2 + 0)

    def test_missing_delta_rejected(self, diamond_graph):
        with pytest.raises(RetimingError, match="missing"):
            solve_retiming(diamond_graph, {(0, 1): 0})

    def test_negative_delta_rejected(self, diamond_graph):
        deltas = {e.key: 0 for e in diamond_graph.edges()}
        deltas[(0, 1)] = -1
        with pytest.raises(RetimingError, match="negative"):
            solve_retiming(diamond_graph, deltas)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_every_edge_constraint_satisfied(self, seed):
        graph = SyntheticGraphGenerator().generate(30, 60, seed=seed)
        import random

        rng = random.Random(seed)
        deltas = {e.key: rng.randint(0, 2) for e in graph.edges()}
        solution = solve_retiming(graph, deltas)
        for (i, j), delta in deltas.items():
            assert (
                solution.vertex_retiming[i] - solution.vertex_retiming[j]
                >= delta
            )


class TestPlacementRetiming:
    def test_all_cache_never_worse_than_all_edram(self, paper_config):
        graph = SyntheticGraphGenerator().generate(40, 90, seed=11)
        kernel = compact_kernel_schedule(graph, 8)
        timings = analyze_edges(graph, kernel, paper_config)
        all_cache = {k: Placement.CACHE for k in timings}
        all_edram = {k: Placement.EDRAM for k in timings}
        r_cache = max_retiming_for_placement(graph, timings, all_cache)
        r_edram = max_retiming_for_placement(graph, timings, all_edram)
        assert r_cache <= r_edram
