"""FaultModel semantics and PimConfig degraded-mode views."""

from __future__ import annotations

import pytest

from repro.pim.config import ConfigurationError, PimConfig
from repro.pim.faults import (
    FAULT_UNIT_PE,
    FAULT_UNIT_VAULT,
    FaultEvent,
    FaultModel,
    FaultModelError,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(FaultModelError):
            FaultEvent(-1, FAULT_UNIT_PE, 0)
        with pytest.raises(FaultModelError):
            FaultEvent(1, "gpu", 0)
        with pytest.raises(FaultModelError):
            FaultEvent(1, FAULT_UNIT_PE, -2)

    def test_round_trip(self):
        event = FaultEvent(7, FAULT_UNIT_VAULT, 3)
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultModel:
    def test_trivial(self):
        assert FaultModel.none().is_trivial
        assert not FaultModel.static(failed_pes=[1]).is_trivial
        assert not FaultModel.single(FAULT_UNIT_PE, 0, 3).is_trivial

    def test_events_sorted_and_deduped(self):
        model = FaultModel(
            events=(
                FaultEvent(9, FAULT_UNIT_PE, 1),
                FaultEvent(3, FAULT_UNIT_PE, 2),
                FaultEvent(5, FAULT_UNIT_PE, 1),  # earlier strike wins
            )
        )
        assert [e.iteration for e in model.events] == [3, 5]
        # The earliest event for a unit wins; the later one is dropped.
        assert model.fault_iteration_of(FAULT_UNIT_PE, 1) == 5

    def test_earliest_event_wins_for_duplicate_unit(self):
        model = FaultModel(
            events=(
                FaultEvent(5, FAULT_UNIT_PE, 1),
                FaultEvent(9, FAULT_UNIT_PE, 1),
            )
        )
        assert len(model.events) == 1
        assert model.fault_iteration_of(FAULT_UNIT_PE, 1) == 5

    def test_statically_dead_units_drop_redundant_events(self):
        model = FaultModel(
            failed_pes=frozenset({2}),
            events=(FaultEvent(4, FAULT_UNIT_PE, 2),),
        )
        assert model.events == ()
        assert model.fault_iteration_of(FAULT_UNIT_PE, 2) == 0

    def test_mask_at_is_monotone(self):
        model = FaultModel(
            failed_pes=frozenset({0}),
            events=(
                FaultEvent(3, FAULT_UNIT_PE, 1),
                FaultEvent(5, FAULT_UNIT_VAULT, 2),
            ),
        )
        pes0, vaults0 = model.mask_at(0)
        assert pes0 == {0} and vaults0 == frozenset()
        pes3, vaults3 = model.mask_at(3)
        assert pes3 == {0, 1} and vaults3 == frozenset()
        pes9, vaults9 = model.mask_at(9)
        assert pes9 == {0, 1} and vaults9 == {2}

    def test_next_event_after(self):
        model = FaultModel(
            events=(
                FaultEvent(3, FAULT_UNIT_PE, 1),
                FaultEvent(8, FAULT_UNIT_PE, 2),
            )
        )
        assert model.next_event_after(0) == 3
        assert model.next_event_after(3) == 8
        assert model.next_event_after(8) is None

    def test_fault_iteration_of_unknown_unit(self):
        with pytest.raises(FaultModelError):
            FaultModel.none().fault_iteration_of(FAULT_UNIT_PE, 0)

    def test_compacted_remaps_and_drops(self):
        model = FaultModel(
            failed_pes=frozenset({0}),
            events=(
                FaultEvent(3, FAULT_UNIT_PE, 2),
                FaultEvent(7, FAULT_UNIT_VAULT, 1),
            ),
        )
        # PE 0 removed; survivors 1..3 become 0..2, so PE 2 -> PE 1.
        compacted = model.compacted([1, 2, 3], [0, 1])
        assert compacted.failed_pes == frozenset()
        assert compacted.events == (
            FaultEvent(3, FAULT_UNIT_PE, 1),
            FaultEvent(7, FAULT_UNIT_VAULT, 1),
        )
        # Dropping the faulted units yields a trivial model.
        assert model.compacted([1, 3], [0]).is_trivial

    def test_serialization_round_trip_and_fingerprint(self):
        model = FaultModel(
            failed_pes=frozenset({1}),
            failed_vaults=frozenset({4}),
            events=(FaultEvent(2, FAULT_UNIT_PE, 0),),
        )
        clone = FaultModel.from_dict(model.to_dict())
        assert clone == model
        assert clone.fingerprint() == model.fingerprint()
        assert model.fingerprint() != FaultModel.none().fingerprint()

    def test_random_trace_is_deterministic(self):
        a = FaultModel.random_trace(seed=11, num_pes=8, num_events=3)
        b = FaultModel.random_trace(seed=11, num_pes=8, num_events=3)
        assert a == b and len(a.events) == 3
        c = FaultModel.random_trace(seed=12, num_pes=8, num_events=3)
        assert a != c

    def test_describe(self):
        assert FaultModel.none().describe() == "no faults"
        text = FaultModel.single(FAULT_UNIT_PE, 3, 5).describe()
        assert "pe 3" in text and "iteration 5" in text


class TestDegradedConfig:
    def test_healthy_fingerprint_unchanged_by_mask_fields(self):
        """Healthy configs must serialize exactly as before fault tolerance
        existed, keeping golden fixtures and disk-cached plans valid."""
        config = PimConfig(num_pes=16)
        payload = config.to_dict()
        assert "pe_mask" not in payload
        assert "vault_mask" not in payload

    def test_degraded_shrinks_and_fingerprints_distinctly(self):
        config = PimConfig(num_pes=16)
        a = config.degraded([p for p in range(16) if p != 0])
        b = config.degraded([p for p in range(16) if p != 5])
        assert a.num_pes == b.num_pes == 15
        assert a.is_degraded and b.is_degraded
        assert a.fingerprint() != b.fingerprint() != config.fingerprint()
        # The aggregate cache shrinks with the dead PE.
        assert a.total_cache_bytes == 15 * config.cache_bytes_per_pe

    def test_degraded_composes_through_existing_mask(self):
        config = PimConfig(num_pes=4)
        once = config.degraded([0, 2, 3])  # PE 1 died
        twice = once.degraded([0, 1])  # then survivor index 2 (physical 3)
        assert twice.pe_mask == (0, 2)  # physical provenance preserved
        assert twice.num_pes == 2

    def test_degraded_vaults(self):
        config = PimConfig(num_pes=4)
        degraded = config.degraded([0, 1, 2, 3], [v for v in range(8) if v != 2])
        assert degraded.vault_mask == (0, 1, 3, 4, 5, 6, 7)
        assert degraded.num_pes == 4
        assert degraded.is_degraded

    def test_degraded_validation(self):
        config = PimConfig(num_pes=4)
        with pytest.raises(ConfigurationError):
            config.degraded([])
        with pytest.raises(ConfigurationError):
            config.degraded([0, 9])
        with pytest.raises(ConfigurationError):
            config.degraded([0, 1], [])

    def test_round_trip_preserves_masks(self):
        config = PimConfig(num_pes=8).degraded([0, 1, 2, 4, 5, 6, 7], [0, 1])
        clone = PimConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.fingerprint() == config.fingerprint()

    def test_with_pes_drops_mask(self):
        degraded = PimConfig(num_pes=8).degraded(range(7))
        carved = degraded.with_pes(3)
        assert carved.pe_mask is None and carved.num_pes == 3

    def test_describe_marks_degradation(self):
        assert "degraded" in PimConfig(num_pes=4).degraded([0, 1]).describe()
        assert "degraded" not in PimConfig(num_pes=4).describe()

    def test_mask_consistency_enforced(self):
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=4, pe_mask=(0, 1))  # length mismatch
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=2, pe_mask=(0, 0))  # duplicates
