"""Tests for the energy model and traffic counters."""

import pytest

from repro.pim.config import PimConfig
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.stats import TrafficStats


class TestTrafficStats:
    def test_totals(self):
        stats = TrafficStats(cache_accesses=2, cache_bytes=100,
                             edram_accesses=1, edram_bytes=300)
        assert stats.total_accesses == 3
        assert stats.total_bytes == 400
        assert stats.offchip_fraction == pytest.approx(0.75)

    def test_offchip_fraction_idle(self):
        assert TrafficStats().offchip_fraction == 0.0

    def test_merge(self):
        a = TrafficStats(cache_bytes=10, alu_ops=1, fifo_pushes=2)
        b = TrafficStats(cache_bytes=5, edram_bytes=7, alu_ops=3)
        merged = a.merged_with(b)
        assert merged.cache_bytes == 15
        assert merged.edram_bytes == 7
        assert merged.alu_ops == 4
        assert merged.fifo_pushes == 2

    def test_as_dict_round(self):
        stats = TrafficStats(cache_accesses=1)
        assert stats.as_dict()["cache_accesses"] == 1
        assert set(stats.as_dict()) == {
            "cache_accesses", "cache_bytes", "edram_accesses",
            "edram_bytes", "alu_ops", "fifo_pushes",
        }


class TestEnergyModel:
    def test_edram_ratio_follows_config(self):
        model = EnergyModel(cache_pj_per_byte=2.0)
        config = PimConfig(edram_energy_factor=6)
        assert model.edram_pj_per_byte(config) == 12.0

    def test_estimate_breakdown(self):
        model = EnergyModel(cache_pj_per_byte=1.0, alu_pj_per_op=0.5)
        config = PimConfig(edram_energy_factor=4)
        stats = TrafficStats(cache_bytes=100, edram_bytes=50, alu_ops=10)
        report = model.estimate(stats, config)
        assert report.cache_pj == 100.0
        assert report.edram_pj == 200.0
        assert report.compute_pj == 5.0
        assert report.total_pj == 305.0
        assert report.movement_pj == 300.0

    def test_edram_dominates_per_byte(self):
        # moving a byte off-chip must always cost more than on-chip
        model = EnergyModel()
        config = PimConfig()
        assert model.edram_pj_per_byte(config) > model.cache_pj_per_byte

    def test_report_as_dict(self):
        report = EnergyReport(cache_pj=1.0, edram_pj=2.0, compute_pj=3.0)
        payload = report.as_dict()
        assert payload["total_pj"] == 6.0
