"""Tests for the crossbar interconnect model."""

import pytest

from repro.pim.config import ConfigurationError
from repro.pim.interconnect import Crossbar


class TestCrossbar:
    def test_independent_transfers_overlap(self):
        xbar = Crossbar(4, 4)
        a = xbar.transfer(0, 0, duration=5, now=0)
        b = xbar.transfer(1, 1, duration=5, now=0)
        assert a == (0, 5)
        assert b == (0, 5)  # different ports: fully concurrent

    def test_same_input_port_serializes(self):
        xbar = Crossbar(2, 2)
        xbar.transfer(0, 0, duration=3, now=0)
        start, finish = xbar.transfer(0, 1, duration=2, now=0)
        assert (start, finish) == (3, 5)

    def test_same_output_port_serializes(self):
        xbar = Crossbar(2, 2)
        xbar.transfer(0, 1, duration=3, now=0)
        start, finish = xbar.transfer(1, 1, duration=2, now=0)
        assert (start, finish) == (3, 5)

    def test_zero_duration_transfer(self):
        xbar = Crossbar(1, 1)
        assert xbar.transfer(0, 0, duration=0, now=7) == (7, 7)

    def test_records_kept(self):
        xbar = Crossbar(2, 2)
        xbar.transfer(0, 1, 2, 0, size_bytes=64)
        assert len(xbar.records) == 1
        record = xbar.records[0]
        assert (record.source, record.destination) == (0, 1)
        assert record.size_bytes == 64

    def test_port_pressure(self):
        xbar = Crossbar(2, 2)
        xbar.transfer(0, 0, 9, 0)
        pressure = xbar.port_pressure()
        assert pressure["max_input_busy_until"] == 9
        assert pressure["max_output_busy_until"] == 9

    def test_reset(self):
        xbar = Crossbar(2, 2)
        xbar.transfer(0, 0, 9, 0)
        xbar.reset()
        assert xbar.transfer(0, 0, 1, 0) == (0, 1)
        assert len(xbar.records) == 1  # only the post-reset record remains

    @pytest.mark.parametrize("src,dst", [(-1, 0), (5, 0), (0, -1), (0, 5)])
    def test_bad_ports_rejected(self, src, dst):
        xbar = Crossbar(2, 2)
        with pytest.raises(ConfigurationError):
            xbar.transfer(src, dst, 1, 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Crossbar(1, 1).transfer(0, 0, -1, 0)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Crossbar(0, 4)
