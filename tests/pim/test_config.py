"""Tests for the PIM machine configuration."""

import pytest

from repro.pim.config import PAPER_PE_SWEEP, ConfigurationError, PimConfig


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_pes": 0},
            {"cache_bytes_per_pe": -1},
            {"cache_slot_bytes": 0},
            {"cache_bytes_per_unit": 0},
            {"edram_latency_factor": 1},
            {"edram_latency_factor": 11},
            {"edram_energy_factor": 0},
            {"iterations": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PimConfig(**kwargs)

    def test_paper_sweep(self):
        assert PAPER_PE_SWEEP == (16, 32, 64)

    def test_edram_factor_paper_envelope(self):
        # 2x and 10x (the paper's cited bounds) are both accepted
        PimConfig(edram_latency_factor=2)
        PimConfig(edram_latency_factor=10)


class TestCapacities:
    def test_aggregate_cache_in_paper_band_at_64(self):
        # paper Section 2.3: 100-300 KB for the entire PE array
        config = PimConfig(num_pes=64)
        assert 100_000 <= config.total_cache_bytes <= 300_000

    def test_total_slots(self):
        config = PimConfig(num_pes=4, cache_bytes_per_pe=1024,
                           cache_slot_bytes=512)
        assert config.total_cache_slots == 8

    def test_slots_required_rounds_up(self):
        config = PimConfig(cache_slot_bytes=512)
        assert config.slots_required(1) == 1
        assert config.slots_required(512) == 1
        assert config.slots_required(513) == 2

    def test_slots_required_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            PimConfig().slots_required(0)


class TestTransferTiming:
    def test_cache_transfer_typically_free(self):
        config = PimConfig()
        assert config.cache_transfer_units(4096) == 0

    def test_cache_transfer_scales(self):
        config = PimConfig(cache_bytes_per_unit=1024)
        assert config.cache_transfer_units(4096) == 4

    def test_edram_at_least_one_unit(self):
        config = PimConfig()
        assert config.edram_transfer_units(1) == 1

    def test_edram_slower_than_cache(self):
        config = PimConfig()
        for size in (256, 1024, 4096, 65536):
            assert config.edram_transfer_units(size) >= config.cache_transfer_units(size)

    def test_edram_factor_applied(self):
        fast = PimConfig(edram_latency_factor=2)
        slow = PimConfig(edram_latency_factor=8)
        assert slow.edram_transfer_units(8192) > fast.edram_transfer_units(8192)

    def test_non_positive_sizes_rejected(self):
        config = PimConfig()
        with pytest.raises(ConfigurationError):
            config.cache_transfer_units(0)
        with pytest.raises(ConfigurationError):
            config.edram_transfer_units(-4)


class TestConvenience:
    def test_with_pes(self):
        base = PimConfig(num_pes=16, edram_latency_factor=6)
        wide = base.with_pes(64)
        assert wide.num_pes == 64
        assert wide.edram_latency_factor == 6
        assert base.num_pes == 16

    def test_describe_mentions_key_numbers(self):
        text = PimConfig(num_pes=32).describe()
        assert "32 PEs" in text
        assert "4x latency" in text
