"""Tests for the PIM machine configuration."""

import pytest

from repro.pim.config import PAPER_PE_SWEEP, ConfigurationError, PimConfig


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_pes": 0},
            {"cache_bytes_per_pe": -1},
            {"cache_slot_bytes": 0},
            {"cache_bytes_per_unit": 0},
            {"edram_latency_factor": 1},
            {"edram_latency_factor": 11},
            {"edram_energy_factor": 0},
            {"iterations": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PimConfig(**kwargs)

    def test_paper_sweep(self):
        assert PAPER_PE_SWEEP == (16, 32, 64)

    def test_edram_factor_paper_envelope(self):
        # 2x and 10x (the paper's cited bounds) are both accepted
        PimConfig(edram_latency_factor=2)
        PimConfig(edram_latency_factor=10)


class TestCapacities:
    def test_aggregate_cache_in_paper_band_at_64(self):
        # paper Section 2.3: 100-300 KB for the entire PE array
        config = PimConfig(num_pes=64)
        assert 100_000 <= config.total_cache_bytes <= 300_000

    def test_total_slots(self):
        config = PimConfig(num_pes=4, cache_bytes_per_pe=1024,
                           cache_slot_bytes=512)
        assert config.total_cache_slots == 8

    def test_slots_required_rounds_up(self):
        config = PimConfig(cache_slot_bytes=512)
        assert config.slots_required(1) == 1
        assert config.slots_required(512) == 1
        assert config.slots_required(513) == 2

    def test_slots_required_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            PimConfig().slots_required(0)


class TestTransferTiming:
    def test_cache_transfer_typically_free(self):
        config = PimConfig()
        assert config.cache_transfer_units(4096) == 0

    def test_cache_transfer_scales(self):
        config = PimConfig(cache_bytes_per_unit=1024)
        assert config.cache_transfer_units(4096) == 4

    def test_edram_at_least_one_unit(self):
        config = PimConfig()
        assert config.edram_transfer_units(1) == 1

    def test_edram_slower_than_cache(self):
        config = PimConfig()
        for size in (256, 1024, 4096, 65536):
            assert config.edram_transfer_units(size) >= config.cache_transfer_units(size)

    def test_edram_factor_applied(self):
        fast = PimConfig(edram_latency_factor=2)
        slow = PimConfig(edram_latency_factor=8)
        assert slow.edram_transfer_units(8192) > fast.edram_transfer_units(8192)

    def test_non_positive_sizes_rejected(self):
        config = PimConfig()
        with pytest.raises(ConfigurationError):
            config.cache_transfer_units(0)
        with pytest.raises(ConfigurationError):
            config.edram_transfer_units(-4)


class TestConvenience:
    def test_with_pes(self):
        base = PimConfig(num_pes=16, edram_latency_factor=6)
        wide = base.with_pes(64)
        assert wide.num_pes == 64
        assert wide.edram_latency_factor == 6
        assert base.num_pes == 16

    def test_describe_mentions_key_numbers(self):
        text = PimConfig(num_pes=32).describe()
        assert "32 PEs" in text
        assert "4x latency" in text


class TestPartition:
    """Intentional sub-machine carving (fleet shards) vs fault degrading."""

    def test_partition_provenance(self):
        shard = PimConfig(num_pes=16).partition(range(4, 8))
        assert shard.is_partition
        assert not shard.is_degraded
        assert shard.has_mask
        assert shard.num_pes == 4
        assert shard.pe_mask == (4, 5, 6, 7)

    def test_degraded_provenance_unchanged(self):
        survivor = PimConfig(num_pes=16).degraded(range(15))
        assert survivor.is_degraded
        assert not survivor.is_partition

    def test_healthy_fingerprint_has_no_mask_kind(self):
        # mask_kind is only serialized for non-fault masks, so healthy
        # and degraded fingerprints are byte-identical to older releases.
        healthy = PimConfig(num_pes=16)
        assert "mask_kind" not in healthy.to_dict()
        assert "mask_kind" not in healthy.degraded(range(8)).to_dict()
        assert (
            healthy.partition(range(8)).to_dict()["mask_kind"] == "partition"
        )

    def test_partition_and_degraded_fingerprints_differ(self):
        config = PimConfig(num_pes=16)
        assert (
            config.partition(range(8)).fingerprint()
            != config.degraded(range(8)).fingerprint()
        )

    def test_round_trip_preserves_mask_kind(self):
        shard = PimConfig(num_pes=16).partition(range(8), range(4))
        clone = PimConfig.from_dict(shard.to_dict())
        assert clone == shard
        assert clone.is_partition

    def test_invalid_mask_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=4, pe_mask=(0, 1, 2, 3), mask_kind="oops")

    def test_partition_composes_through_masks(self):
        quarter = PimConfig(num_pes=16).partition(range(8)).partition(range(4, 8))
        assert quarter.pe_mask == (4, 5, 6, 7)
        assert quarter.is_partition

    def test_degrading_a_partition_is_degraded(self):
        shard = PimConfig(num_pes=16).partition(range(8, 16))
        hurt = shard.degraded(range(7))
        assert hurt.is_degraded
        assert hurt.pe_mask == (8, 9, 10, 11, 12, 13, 14)

    def test_describe_labels_partition(self):
        shard = PimConfig(num_pes=16).partition(range(4), range(2))
        text = shard.describe()
        assert "partition" in text
        assert "degraded" not in text


class TestSplit:
    def test_split_covers_every_pe_once(self):
        machine = PimConfig(num_pes=64)
        shards = machine.split(4, num_vaults=32)
        assert [s.num_pes for s in shards] == [16, 16, 16, 16]
        seen = [pe for s in shards for pe in s.pe_mask]
        assert seen == list(range(64))
        vaults = [v for s in shards for v in s.vault_mask]
        assert vaults == list(range(32))

    def test_remainder_goes_to_earlier_shards(self):
        shards = PimConfig(num_pes=10).split(3)
        assert [s.num_pes for s in shards] == [4, 3, 3]
        assert all(s.vault_mask is None for s in shards)

    def test_split_validation(self):
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=4).split(0)
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=4).split(5)
        with pytest.raises(ConfigurationError):
            PimConfig(num_pes=8).split(4, num_vaults=2)


class TestLogicalView:
    def test_healthy_machine_is_its_own_logical_view(self):
        config = PimConfig(num_pes=16)
        assert config.logical is config

    def test_shape_identical_shards_share_logical_fingerprint(self):
        shards = PimConfig(num_pes=64).split(4, num_vaults=32)
        prints = {s.logical_fingerprint() for s in shards}
        assert len(prints) == 1
        # ...and it is exactly the fingerprint of the plain 16-PE machine.
        assert prints == {PimConfig(num_pes=16).fingerprint()}

    def test_physical_fingerprints_stay_distinct(self):
        shards = PimConfig(num_pes=64).split(4)
        assert len({s.fingerprint() for s in shards}) == 4

    def test_logical_erases_fault_masks_too(self):
        survivor = PimConfig(num_pes=16).degraded(range(12))
        logical = survivor.logical
        assert not logical.has_mask
        assert logical.num_pes == 12
