"""Tenant placement: disjointness proofs, carving, identity, degradation."""

import pytest

from repro.pim.config import ConfigurationError, PimConfig, assert_disjoint
from repro.pim.tenancy import TenantPlacement, TenantSpec


class TestAssertDisjoint:
    def test_split_shards_are_disjoint(self):
        base = PimConfig(num_pes=16)
        assert_disjoint(base.split(4)) is None

    def test_split_with_vaults_is_disjoint(self):
        base = PimConfig(num_pes=16)
        assert_disjoint(base.split(4, num_vaults=32))

    def test_overlapping_pe_partitions_rejected(self):
        base = PimConfig(num_pes=8)
        views = [base.partition([0, 1, 2]), base.partition([2, 3])]
        with pytest.raises(ConfigurationError, match=r"physical PE ids \[2\]"):
            assert_disjoint(views)

    def test_overlapping_vaults_rejected(self):
        base = PimConfig(num_pes=8)
        views = [
            base.partition([0, 1], [0, 1]),
            base.partition([2, 3], [1, 2]),
        ]
        with pytest.raises(ConfigurationError, match=r"vault ids \[1\]"):
            assert_disjoint(views)

    def test_unmasked_configs_claim_whole_array(self):
        # Two full machines "own" the same physical PEs.
        with pytest.raises(ConfigurationError, match="not disjoint"):
            assert_disjoint([PimConfig(num_pes=4), PimConfig(num_pes=4)])

    def test_error_names_every_overlapping_unit(self):
        base = PimConfig(num_pes=8)
        views = [base.partition([0, 1, 2, 3]), base.partition([1, 3, 5])]
        with pytest.raises(ConfigurationError, match=r"\[1, 3\]"):
            assert_disjoint(views)

    def test_single_config_trivially_disjoint(self):
        assert_disjoint([PimConfig(num_pes=4)])

    def test_no_vault_mask_claims_no_vaults(self):
        base = PimConfig(num_pes=8)
        # One view claims vaults, the other claims none: no vault overlap.
        assert_disjoint([base.partition([0, 1], [0, 1]), base.partition([2, 3])])


class TestTenantPlacement:
    def test_even_carves_whole_machine(self):
        base = PimConfig(num_pes=16)
        placement = TenantPlacement.even(base, ["a", "b", "c"])
        assert placement.names == ("a", "b", "c")
        sizes = [len(placement.config_for(n).pe_mask) for n in placement.names]
        assert sum(sizes) == 16
        assert max(sizes) - min(sizes) <= 1

    def test_even_with_vaults(self):
        base = PimConfig(num_pes=16)
        placement = TenantPlacement.even(base, ["a", "b"], num_vaults=32)
        masks = [placement.config_for(n).vault_mask for n in placement.names]
        assert all(mask is not None for mask in masks)
        assert len(set(masks[0]) | set(masks[1])) == 32
        assert not set(masks[0]) & set(masks[1])

    def test_of_mapping(self):
        base = PimConfig(num_pes=8)
        placement = TenantPlacement.of(base, {"x": [0, 1, 2], "y": [5, 6]})
        assert placement.config_for("x").num_pes == 3
        assert placement.config_for("y").pe_mask == (5, 6)
        assert len(placement) == 2

    def test_overlap_rejected_at_construction(self):
        base = PimConfig(num_pes=8)
        with pytest.raises(ConfigurationError, match="not disjoint"):
            TenantPlacement.of(base, {"x": [0, 1], "y": [1, 2]})

    def test_duplicate_names_rejected(self):
        base = PimConfig(num_pes=8)
        specs = (
            TenantSpec("a", (0, 1)),
            TenantSpec("a", (2, 3)),
        )
        with pytest.raises(ConfigurationError, match="duplicate tenant"):
            TenantPlacement(base=base, specs=specs)

    def test_empty_placement_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            TenantPlacement(base=PimConfig(num_pes=4), specs=())
        with pytest.raises(ConfigurationError, match="at least one"):
            TenantPlacement.even(PimConfig(num_pes=4), [])

    def test_unknown_tenant_lookup(self):
        placement = TenantPlacement.even(PimConfig(num_pes=4), ["a", "b"])
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            placement.config_for("ghost")

    def test_items_follow_spec_order(self):
        placement = TenantPlacement.even(PimConfig(num_pes=8), ["z", "a", "m"])
        assert [name for name, _ in placement.items()] == ["z", "a", "m"]


class TestIdentity:
    def test_shape_identical_slices_get_distinct_fingerprints(self):
        """The property the shared plan cache depends on."""
        placement = TenantPlacement.even(PimConfig(num_pes=16), ["a", "b"])
        view_a = placement.config_for("a")
        view_b = placement.config_for("b")
        # Same shape -> same logical identity...
        assert view_a.logical_fingerprint() == view_b.logical_fingerprint()
        # ...but distinct physical placement -> distinct cache identity.
        assert view_a.fingerprint() != view_b.fingerprint()

    def test_placement_fingerprint_is_stable(self):
        base = PimConfig(num_pes=16)
        first = TenantPlacement.even(base, ["a", "b"]).fingerprint()
        second = TenantPlacement.even(base, ["a", "b"]).fingerprint()
        assert first == second

    def test_placement_fingerprint_tracks_slices_and_names(self):
        base = PimConfig(num_pes=16)
        even = TenantPlacement.even(base, ["a", "b"])
        renamed = TenantPlacement.even(base, ["a", "c"])
        recarved = TenantPlacement.of(base, {"a": range(4), "b": range(4, 16)})
        assert even.fingerprint() != renamed.fingerprint()
        assert even.fingerprint() != recarved.fingerprint()


class TestDegradation:
    def test_degraded_tenant_shrinks_others_untouched(self):
        placement = TenantPlacement.even(PimConfig(num_pes=16), ["a", "b"])
        before_a = placement.config_for("a").fingerprint()
        degraded = placement.with_degraded("b", range(4))
        assert degraded.config_for("b").num_pes == 4
        assert degraded.config_for("a").fingerprint() == before_a
        assert degraded.fingerprint() != placement.fingerprint()

    def test_degraded_slice_keeps_physical_ids(self):
        placement = TenantPlacement.of(
            PimConfig(num_pes=8), {"a": [0, 1], "b": [4, 5, 6, 7]}
        )
        degraded = placement.with_degraded("b", [1, 3])
        assert degraded.config_for("b").pe_mask == (5, 7)

    def test_out_of_slice_survivors_rejected(self):
        placement = TenantPlacement.even(PimConfig(num_pes=8), ["a", "b"])
        with pytest.raises(ConfigurationError, match="within"):
            placement.with_degraded("a", [0, 4])

    def test_unknown_tenant_rejected(self):
        placement = TenantPlacement.even(PimConfig(num_pes=8), ["a", "b"])
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            placement.with_degraded("ghost", [0])

    def test_degraded_placement_still_disjoint(self):
        placement = TenantPlacement.even(PimConfig(num_pes=16), ["a", "b"])
        degraded = placement.with_degraded("a", [0, 1])
        assert_disjoint(view for _, view in degraded.items())
