"""Property-based tests for the cache model's bookkeeping invariants."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.pim.memory import CacheModel


class CacheMachine(RuleBasedStateMachine):
    """Random insert/touch/remove sequences against a reference model."""

    def __init__(self):
        super().__init__()
        self.capacity = 16
        self.cache = CacheModel(self.capacity)
        self.reference = {}  # key -> slots
        self.next_key = 0

    @rule(slots=st.integers(min_value=1, max_value=6))
    def insert(self, slots):
        key = self.next_key
        self.next_key += 1
        evicted = self.cache.insert(key, slots)
        for victim in evicted:
            del self.reference[victim]
        self.reference[key] = slots

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def touch(self, data):
        key = data.draw(st.sampled_from(sorted(self.reference)))
        assert self.cache.touch(key) is True

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def remove(self, data):
        key = data.draw(st.sampled_from(sorted(self.reference)))
        self.cache.remove(key)
        del self.reference[key]

    @rule()
    def miss(self):
        assert self.cache.touch(-1) is False

    @invariant()
    def capacity_respected(self):
        assert 0 <= self.cache.used_slots <= self.capacity

    @invariant()
    def bookkeeping_consistent(self):
        assert self.cache.used_slots == sum(self.reference.values())
        assert set(self.cache.resident_keys()) == set(self.reference)

    @invariant()
    def free_plus_used_is_capacity(self):
        assert self.cache.free_slots + self.cache.used_slots == self.capacity


TestCacheStateMachine = CacheMachine.TestCase
TestCacheStateMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class TestVaultProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=8192), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_vault_completions_monotone_and_work_conserving(self, sizes):
        from repro.pim.memory import EdramVault

        vault = EdramVault(0, bytes_per_unit=2048)
        completions = [vault.read(size, now=0) for size in sizes]
        assert completions == sorted(completions)
        # back-to-back service: total time equals summed access times
        assert completions[-1] == sum(vault.access_time(s) for s in sizes)
