"""Tests for the cache and eDRAM vault models."""

import pytest

from repro.pim.config import ConfigurationError, PimConfig
from repro.pim.memory import CacheModel, EdramVault, MemorySystem, Placement


class TestCacheModel:
    def test_insert_and_contains(self):
        cache = CacheModel(8)
        cache.insert("a", 3)
        assert cache.contains("a")
        assert cache.used_slots == 3
        assert cache.free_slots == 5

    def test_fits(self):
        cache = CacheModel(4)
        cache.insert("a", 3)
        assert cache.fits(1)
        assert not cache.fits(2)

    def test_lru_eviction_order(self):
        cache = CacheModel(4)
        cache.insert("a", 2)
        cache.insert("b", 2)
        cache.touch("a")  # refresh a; b becomes LRU
        evicted = cache.insert("c", 2)
        assert evicted == ["b"]
        assert cache.contains("a")
        assert cache.evictions == 1

    def test_eviction_disabled_raises(self):
        cache = CacheModel(2)
        cache.insert("a", 2)
        with pytest.raises(ConfigurationError, match="eviction disabled"):
            cache.insert("b", 1, evict=False)

    def test_oversized_entry_rejected(self):
        cache = CacheModel(2)
        with pytest.raises(ConfigurationError, match="exceeds"):
            cache.insert("big", 3)

    def test_duplicate_key_rejected(self):
        cache = CacheModel(4)
        cache.insert("a", 1)
        with pytest.raises(ConfigurationError, match="already resident"):
            cache.insert("a", 1)

    def test_hit_miss_counters(self):
        cache = CacheModel(4)
        cache.insert("a", 1)
        assert cache.touch("a") is True
        assert cache.touch("zzz") is False
        assert (cache.hits, cache.misses) == (1, 1)

    def test_remove_frees_space(self):
        cache = CacheModel(2)
        cache.insert("a", 2)
        cache.remove("a")
        assert cache.free_slots == 2
        with pytest.raises(ConfigurationError, match="not resident"):
            cache.remove("a")

    def test_clear(self):
        cache = CacheModel(4)
        cache.insert("a", 2)
        cache.clear()
        assert cache.used_slots == 0
        assert cache.resident_keys() == []

    def test_zero_slot_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModel(4).insert("a", 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModel(-1)


class TestEdramVault:
    def test_access_time_floor(self):
        vault = EdramVault(0, bytes_per_unit=2048)
        assert vault.access_time(1) == 1
        assert vault.access_time(4096) == 2

    def test_reads_queue(self):
        vault = EdramVault(0, bytes_per_unit=2048)
        first = vault.read(2048, now=0)
        second = vault.read(2048, now=0)  # same instant: must wait
        assert first == 1
        assert second == 2
        assert vault.reads == 2
        assert vault.bytes_read == 4096

    def test_idle_gap_not_charged(self):
        vault = EdramVault(0, bytes_per_unit=2048)
        vault.read(2048, now=0)
        later = vault.read(2048, now=100)
        assert later == 101

    def test_writes_tracked(self):
        vault = EdramVault(0, bytes_per_unit=2048)
        vault.write(512, now=0)
        assert vault.writes == 1
        assert vault.bytes_written == 512

    def test_reset(self):
        vault = EdramVault(0, bytes_per_unit=2048)
        vault.read(2048, now=0)
        vault.reset()
        assert vault.reads == 0
        assert vault.read(2048, now=0) == 1

    def test_invalid_sizes_rejected(self):
        vault = EdramVault(0, bytes_per_unit=2048)
        with pytest.raises(ConfigurationError):
            vault.access_time(0)
        with pytest.raises(ConfigurationError):
            EdramVault(0, bytes_per_unit=0)


class TestMemorySystem:
    def test_vault_interleaving_is_stable(self):
        system = MemorySystem(PimConfig(), num_vaults=8)
        key = (3, 7)
        assert system.vault_for(key) is system.vault_for(key)

    def test_traffic_counters(self):
        system = MemorySystem(PimConfig())
        system.record_cache_transfer(100)
        system.record_edram_transfer(300)
        assert system.stats.cache_bytes == 100
        assert system.stats.edram_bytes == 300
        assert system.stats.offchip_fraction == pytest.approx(0.75)

    def test_reset(self):
        system = MemorySystem(PimConfig())
        system.cache.insert("a", 1)
        system.record_edram_transfer(10)
        system.reset()
        assert system.cache.used_slots == 0
        assert system.stats.total_bytes == 0

    def test_invalid_vault_count(self):
        with pytest.raises(ConfigurationError):
            MemorySystem(PimConfig(), num_vaults=0)

    def test_placement_enum(self):
        assert Placement.CACHE.value == "cache"
        assert Placement.EDRAM.value == "edram"
