"""Tests for processing engines and the PE array."""

import pytest

from repro.pim.config import ConfigurationError, PimConfig
from repro.pim.pe import Fifo, FifoEntry, PEArray, ProcessingEngine


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo(depth=2)
        fifo.push(FifoEntry((0, 1), 100))
        fifo.push(FifoEntry((1, 2), 200))
        assert fifo.pop().key == (0, 1)
        assert fifo.pop().key == (1, 2)

    def test_overflow(self):
        fifo = Fifo(depth=1)
        fifo.push(FifoEntry((0, 1), 1))
        assert fifo.full
        with pytest.raises(ConfigurationError, match="overflow"):
            fifo.push(FifoEntry((1, 2), 1))

    def test_underflow(self):
        with pytest.raises(ConfigurationError, match="underflow"):
            Fifo().pop()

    def test_occupancy_stats(self):
        fifo = Fifo(depth=4)
        for i in range(3):
            fifo.push(FifoEntry((i, i + 1), 1))
        fifo.pop()
        assert fifo.peak_occupancy == 3
        assert fifo.total_pushes == 3
        assert len(fifo) == 2

    def test_bad_depth(self):
        with pytest.raises(ConfigurationError):
            Fifo(depth=0)


class TestProcessingEngine:
    def test_reserve_sequential(self):
        pe = ProcessingEngine(0, PimConfig())
        assert pe.reserve(0, 3) == (0, 3)
        assert pe.reserve(0, 2) == (3, 5)  # busy until 3
        assert pe.free_at == 5
        assert pe.busy_units == 5

    def test_reserve_with_gap(self):
        pe = ProcessingEngine(0, PimConfig())
        pe.reserve(0, 2)
        assert pe.reserve(10, 1) == (10, 11)

    def test_utilization(self):
        pe = ProcessingEngine(0, PimConfig())
        pe.reserve(0, 5)
        assert pe.utilization(10) == pytest.approx(0.5)
        assert pe.utilization(0) == 0.0

    def test_invalid_reservations(self):
        pe = ProcessingEngine(0, PimConfig())
        with pytest.raises(ConfigurationError):
            pe.reserve(0, 0)
        with pytest.raises(ConfigurationError):
            pe.reserve(-1, 1)

    def test_reset(self):
        pe = ProcessingEngine(0, PimConfig())
        pe.reserve(0, 4)
        pe.reset()
        assert pe.free_at == 0
        assert pe.busy_units == 0

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessingEngine(-1, PimConfig())


class TestPEArray:
    def test_sizing(self):
        array = PEArray(PimConfig(num_pes=8))
        assert len(array) == 8
        assert array[3].pe_id == 3

    def test_earliest_available(self):
        array = PEArray(PimConfig(num_pes=3))
        array[0].reserve(0, 5)
        array[1].reserve(0, 2)
        assert array.earliest_available().pe_id == 2  # still idle
        array[2].reserve(0, 9)
        assert array.earliest_available().pe_id == 1

    def test_makespan(self):
        array = PEArray(PimConfig(num_pes=2))
        array[0].reserve(0, 4)
        array[1].reserve(0, 7)
        assert array.makespan() == 7

    def test_stats_merge_and_reset(self):
        array = PEArray(PimConfig(num_pes=2))
        array[0].stats.alu_ops = 5
        array[1].stats.alu_ops = 7
        assert array.total_stats().alu_ops == 12
        array.reset()
        assert array.total_stats().alu_ops == 0
