"""cProfile-backed hotspot tables for the two hot paths.

``python -m repro.eval profile [compile|sim]`` answers "where does the
time actually go?" without leaving the repo's CLI surface: it runs a
representative workload under :mod:`cProfile` and renders the top-N
functions by cumulative time. The two targets mirror the two columnar
engines this repo optimizes:

* ``compile`` — a cold :class:`~repro.core.paraconv.ParaConv` compile
  with the simulated-annealing allocator (the ΔR-scoring hot loop).
* ``sim`` — a paper-scale discrete-event run of the produced plan
  (the per-round event hot loop), in the columnar engine by default.

The rows come back as data (:class:`ProfileRow`) so tests can assert on
the harness without parsing the rendered table, and so a future PR can
diff trajectories of hotspot tables the same way it diffs BENCH files.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

#: profile targets, in the order the bare ``profile`` experiment runs them.
PROFILE_TARGETS: Tuple[str, ...] = ("compile", "sim")

#: default workload: large enough that the hot loops dominate the table.
DEFAULT_PROFILE_WORKLOAD = "lenet5"


@dataclass(frozen=True)
class ProfileRow:
    """One function in the hotspot table."""

    function: str  #: ``module:lineno(name)`` as pstats prints it
    calls: int
    total_seconds: float  #: time in the function itself (tottime)
    cumulative_seconds: float  #: time including callees (cumtime)


@dataclass
class ProfileReport:
    """Top-N hotspots of one profiled target."""

    target: str
    workload: str
    seconds: float  #: wall time of the profiled region
    rows: List[ProfileRow]

    def render(self) -> str:
        lines = [
            f"## Hotspots: {self.target} ({self.workload}, "
            f"{self.seconds:.3f}s profiled)",
            "",
            f"{'calls':>10}  {'tottime':>9}  {'cumtime':>9}  function",
        ]
        for row in self.rows:
            lines.append(
                f"{row.calls:>10}  {row.total_seconds:>9.4f}  "
                f"{row.cumulative_seconds:>9.4f}  {row.function}"
            )
        return "\n".join(lines)


def _profile_callable(fn: Callable[[], object], top: int) -> Tuple[float, List[ProfileRow]]:
    """Run ``fn`` under cProfile; return (wall seconds, top-N rows)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    rows: List[ProfileRow] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, ncalls, tottime, cumtime, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(ProfileRow(
            function=f"{filename}:{lineno}({name})",
            calls=ncalls,
            total_seconds=tottime,
            cumulative_seconds=cumtime,
        ))
    return stats.total_tt, rows  # type: ignore[attr-defined]


def run_profile(
    target: str,
    config: Optional[PimConfig] = None,
    *,
    workload: str = DEFAULT_PROFILE_WORKLOAD,
    top: int = 15,
    sim_mode: str = "columnar",
    allocator: str = "anneal",
) -> ProfileReport:
    """Profile one hot path and return its hotspot table.

    Args:
        target: ``"compile"`` or ``"sim"``.
        config: machine; defaults to 64 PEs at N=1000 (the perf-bench
            configuration, so the table matches the BENCH trajectories).
        workload: workload name to compile / simulate.
        top: number of hotspot rows to keep.
        sim_mode: engine for the ``sim`` target (any
            :meth:`~repro.sim.modes.SimMode.from_name` alias).
        allocator: allocator spec for the ``compile`` target.
    """
    if target not in PROFILE_TARGETS:
        raise ValueError(
            f"unknown profile target {target!r}; expected one of "
            f"{', '.join(PROFILE_TARGETS)}"
        )
    machine = config or PimConfig(num_pes=64, iterations=1000)
    graph = load_workload(workload)
    if target == "compile":
        def driver() -> object:
            return ParaConv(machine, allocator_name=allocator).run(graph)
    else:
        plan = ParaConv(machine).run(graph)
        mode = SimMode.from_name(sim_mode)

        def driver() -> object:
            executor = ScheduleExecutor(machine, num_vaults=32, mode=mode)
            return executor.execute(
                plan, iterations=machine.iterations, sink=NullSink()
            )

    seconds, rows = _profile_callable(driver, top)
    return ProfileReport(
        target=target, workload=workload, seconds=seconds, rows=rows
    )


def run_profiles(
    targets: Optional[Tuple[str, ...]] = None,
    config: Optional[PimConfig] = None,
    **kwargs: object,
) -> Dict[str, ProfileReport]:
    """Profile several targets (default: both) with shared settings."""
    return {
        target: run_profile(target, config, **kwargs)  # type: ignore[arg-type]
        for target in (targets or PROFILE_TARGETS)
    }
