"""Command-line entry point: ``python -m repro.eval <experiment>``.

Experiments: table1, table2, figure5, figure6, ablation, validation,
energy, or ``all``. Options select benchmark subsets and machine knobs so
quick runs stay quick.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cnn.workloads import PAPER_BENCHMARKS
from repro.eval.ablation import render_ablation, run_ablation
from repro.eval.energy import render_energy, run_energy
from repro.eval.figure5 import render_figure5, run_figure5
from repro.eval.figure6 import render_figure6, run_figure6
from repro.eval.table1 import (
    overall_average_improvement,
    render_table1,
    run_table1,
)
from repro.eval.table2 import render_table2, run_table2
from repro.eval.validation import render_validation, run_validation
from repro.pim.config import PimConfig

EXPERIMENTS = (
    "table1", "table2", "figure5", "figure6",
    "ablation", "validation", "energy", "architectures", "latency",
    "heterogeneity", "sweeps", "workloads", "tenancy", "randwired",
    "profile", "report", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the Para-CONV paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "target", nargs="?", default=None, choices=("compile", "sim"),
        help="with the 'profile' experiment: hot path to profile "
             "(default: both)",
    )
    parser.add_argument(
        "--top", type=int, default=15,
        help="with the 'profile' experiment: hotspot rows to print "
             "(default 15)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help=f"benchmark subset (default: all of {', '.join(PAPER_BENCHMARKS)})",
    )
    parser.add_argument(
        "--iterations", type=int, default=1000,
        help="steady-state iterations N for total-time metrics",
    )
    parser.add_argument(
        "--cache-bytes-per-pe", type=int, default=4096,
        help="per-PE data-cache capacity in bytes",
    )
    parser.add_argument(
        "--edram-factor", type=int, default=4,
        help="eDRAM latency factor relative to cache (paper range 2-10)",
    )
    parser.add_argument(
        "--sim-mode", choices=("full", "steady", "columnar", "columnar-steady"), default=None,
        help="discrete-event engine for simulation-backed experiments: "
        "'steady' fingerprints the machine state and fast-forwards "
        "converged rounds (default for validation), 'full' is the "
        "event-by-event oracle; for latency/table2/sweeps the flag also "
        "enables executor-measured columns",
    )
    parser.add_argument(
        "--search-budgets", type=int, nargs="*", metavar="N", default=None,
        help="with the 'ablation' experiment: also emit the search-"
             "allocator quality-vs-budget table at these evaluation "
             "budgets (no values: the default ladder 0 100 500 2000), "
             "swept over healthy, degraded and partitioned machines",
    )
    parser.add_argument(
        "--out", default="paraconv_report.md",
        help="output path for the 'report' experiment",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = PimConfig(
        iterations=args.iterations,
        cache_bytes_per_pe=args.cache_bytes_per_pe,
        edram_latency_factor=args.edram_factor,
    )
    sections: List[str] = []
    if args.experiment == "profile":
        from repro.eval.profile import run_profile

        # Profiling needs the paper's widest machine to make the hot
        # loops dominate; keep the user's N but pin 64 PEs.
        machine = PimConfig(
            num_pes=64,
            iterations=args.iterations,
            cache_bytes_per_pe=args.cache_bytes_per_pe,
            edram_latency_factor=args.edram_factor,
        )
        targets = (args.target,) if args.target else ("compile", "sim")
        for target in targets:
            report = run_profile(
                target, machine,
                top=args.top,
                sim_mode=args.sim_mode or "columnar",
            )
            sections.append(report.render())
        print("\n\n".join(sections))
        return 0
    if args.experiment == "report":
        from repro.eval.report_writer import write_report

        write_report(args.out, config, benchmarks=args.benchmarks)
        print(f"report written to {args.out}")
        return 0
    # "all" covers the paper artifacts and the reproduction's own
    # experiments; the slower sweeps, the report writer and the
    # artifact-writing tenancy/randwired benches stay opt-in.
    wants = (
        tuple(e for e in EXPERIMENTS
              if e not in ("all", "sweeps", "tenancy", "randwired",
                           "profile", "report"))
        if args.experiment == "all"
        else (args.experiment,)
    )
    if "table1" in wants:
        rows = run_table1(config, benchmarks=args.benchmarks)
        sections.append(render_table1(rows))
        sections.append(
            "Overall average reduction: "
            f"{overall_average_improvement(rows):.2f}% (paper: 53.42%)"
        )
    if "table2" in wants:
        sections.append(render_table2(run_table2(config, benchmarks=args.benchmarks)))
        if args.sim_mode is not None:
            from repro.eval.table2 import (
                render_table2_realized,
                run_table2_realized,
            )

            sections.append(render_table2_realized(run_table2_realized(
                config, benchmarks=args.benchmarks, sim_mode=args.sim_mode,
            )))
    if "figure5" in wants:
        sections.append(render_figure5(run_figure5(config, benchmarks=args.benchmarks)))
    if "figure6" in wants:
        sections.append(render_figure6(run_figure6(config, benchmarks=args.benchmarks)))
    if "ablation" in wants:
        sections.append(render_ablation(run_ablation(config, benchmarks=args.benchmarks)))
        if args.search_budgets is not None:
            from repro.eval.ablation import (
                render_search_ablation,
                run_search_ablation,
            )

            sections.append(render_search_ablation(run_search_ablation(
                config,
                benchmarks=args.benchmarks,
                budgets=args.search_budgets,
            )))
    if "validation" in wants:
        kwargs = {"benchmarks": args.benchmarks} if args.benchmarks else {}
        sections.append(render_validation(run_validation(
            config, sim_mode=args.sim_mode or "steady", **kwargs
        )))
    if "energy" in wants:
        sections.append(render_energy(run_energy(config, benchmarks=args.benchmarks)))
    if "latency" in wants:
        from repro.eval.latency import render_latency, run_latency

        sections.append(render_latency(run_latency(
            config, benchmarks=args.benchmarks, sim_mode=args.sim_mode,
        )))
    if "heterogeneity" in wants:
        from repro.eval.heterogeneity import (
            render_heterogeneity,
            run_heterogeneity,
        )

        kwargs = {"benchmarks": args.benchmarks} if args.benchmarks else {}
        sections.append(
            render_heterogeneity(run_heterogeneity(config, **kwargs))
        )
    if "architectures" in wants:
        from repro.eval.architectures import (
            render_architectures,
            run_architectures,
        )

        kwargs = {"workloads": args.benchmarks} if args.benchmarks else {}
        sections.append(render_architectures(run_architectures(**kwargs)))
    if "sweeps" in wants:
        from repro.eval.sweep import (
            render_sweep,
            sweep_cache_capacity,
            sweep_edram_factor,
            sweep_graph_scale,
        )

        sections.append(render_sweep(
            sweep_edram_factor(config=config, sim_mode=args.sim_mode),
            "eDRAM factor",
            "Sensitivity: vault latency factor (paper envelope 2-10x)",
        ))
        sections.append(render_sweep(
            sweep_cache_capacity(config=config, sim_mode=args.sim_mode),
            "bytes/PE",
            "Sensitivity: per-PE cache capacity",
        ))
        sections.append(render_sweep(
            sweep_graph_scale(config=config, sim_mode=args.sim_mode),
            "|V|",
            "Scalability: synthetic graph size",
        ))
    if "tenancy" in wants:
        from repro.eval.bench_io import dump_bench
        from repro.eval.tenancy import render_tenancy, run_tenancy_bench

        bench = run_tenancy_bench(config)
        sections.append(render_tenancy(bench))
        target = dump_bench("BENCH_tenancy.json", bench)
        sections.append(f"trajectory written to {target}")
    if "randwired" in wants:
        from repro.eval.bench_io import dump_bench
        from repro.eval.randwired import render_randwired, run_randwired_bench

        bench = run_randwired_bench(
            config, benchmarks=args.benchmarks,
            sim_mode=args.sim_mode or "steady",
        )
        sections.append(render_randwired(bench))
        target = dump_bench("BENCH_randwired.json", bench)
        sections.append(f"trajectory written to {target}")
    if "workloads" in wants:
        from repro.eval.workload_stats import (
            render_workload_stats,
            run_workload_stats,
        )

        sections.append(
            render_workload_stats(run_workload_stats(args.benchmarks))
        )
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
