"""Multi-tenancy bench: consolidation throughput and fused-dataflow profile.

``python -m repro.eval tenancy`` answers two questions the tenancy layer
raises and writes the answers as a ``BENCH_tenancy/v1`` trajectory file:

1. **What does consolidation buy?** For each co-residency scenario the
   verify battery proves isolated, serve a fixed request mix co-resident
   and measure the machine-wide makespan (the slowest tenant's virtual
   horizon — disjoint partitions run concurrently) against the serial
   baseline (the same work time-sliced on the whole machine one tenant
   at a time, i.e. the sum of horizons). The ratio is the consolidation
   speedup; per-tenant rows carry the served/queued/shed accounting.
2. **What does fusion change?** For each fused-capable model, lower it
   unfused and with ``fusion="auto"`` and compare the task graphs
   (ops, intermediate results, footprint) and their ΔR profiles
   (:func:`repro.core.retiming.delta_r_accounting`): fusion deletes
   in-run IRs from the allocation problem entirely, and the bench
   records how much candidate ΔR mass the boundary edges retain,
   plus compile wall time and steady-state plan latency for both.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.cnn.models import MODEL_BUILDERS
from repro.cnn.partition import partition_network
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges, delta_r_accounting
from repro.eval.bench_io import new_report
from repro.pim.config import PimConfig
from repro.pim.tenancy import TenantPlacement
from repro.fleet.tenancy import TenantScheduler

__all__ = [
    "DEFAULT_TENANCY_SCENARIOS",
    "render_tenancy",
    "run_tenancy_bench",
]

#: (label, tenant names, per-tenant workloads) benchmarked by default.
DEFAULT_TENANCY_SCENARIOS = (
    ("2-tenant", ("tenant-a", "tenant-b"), ("flower", "stock-predict")),
    (
        "3-tenant",
        ("tenant-a", "tenant-b", "tenant-c"),
        ("flower", "stock-predict", "string-matching"),
    ),
)

#: Models whose auto-fusion genuinely rewrites the graph.
DEFAULT_FUSED_MODELS = ("alexnet", "vgg16")


def _bench_scenario(
    label: str,
    tenants: Sequence[str],
    workloads: Sequence[str],
    machine: PimConfig,
    num_vaults: int,
    requests_per_tenant: int,
    iterations: int,
) -> Dict[str, Any]:
    placement = TenantPlacement.even(
        machine, list(tenants), num_vaults=num_vaults
    )
    scheduler = TenantScheduler(placement, batch_window=4)
    assignment = dict(zip(tenants, workloads))
    wall_start = time.perf_counter()
    for _ in range(requests_per_tenant):
        for tenant in tenants:
            scheduler.submit(tenant, assignment[tenant], iterations=iterations)
    scheduler.drain()
    wall_seconds = time.perf_counter() - wall_start

    accounting = scheduler.accounting()
    horizons = {t: scheduler.horizon(t) for t in tenants}
    # Disjoint partitions run concurrently: the machine is done when the
    # slowest tenant is. Serving the same work one tenant at a time on
    # the shared machine takes at least the sum.
    makespan = max(horizons.values(), default=0)
    serial = sum(horizons.values())
    fleet_counters = scheduler.fleet_view().snapshot()["counters"]
    return {
        "scenario": label,
        "tenants": {
            tenant: {
                "workload": assignment[tenant],
                "pes": len(placement.config_for(tenant).pe_mask),
                "horizon_units": horizons[tenant],
                **accounting["tenants"][tenant],
            }
            for tenant in tenants
        },
        "requests": requests_per_tenant * len(tenants),
        "makespan_units": makespan,
        "serial_units": serial,
        "consolidation_speedup": (serial / makespan) if makespan else 0.0,
        "plans_cached": len(scheduler.cache),
        "placement_fingerprint": placement.fingerprint(),
        "wall_seconds": wall_seconds,
        "fleet_counters": {
            name: value
            for name, value in sorted(fleet_counters.items())
            if not name.startswith("tenant.")
        },
    }


def _bench_fused(model: str, config: PimConfig) -> Dict[str, Any]:
    network = MODEL_BUILDERS[model]()
    row: Dict[str, Any] = {"model": model}
    for mode, fusion in (("unfused", None), ("fused", "auto")):
        graph = partition_network(network, fusion=fusion)
        t0 = time.perf_counter()
        plan = ParaConv(config, validate=False).run(graph)
        compile_seconds = time.perf_counter() - t0
        timings = analyze_edges(graph, plan.schedule.kernel, config)
        row[mode] = {
            "ops": graph.num_vertices,
            "intermediate_results": len(list(graph.edges())),
            "intermediate_bytes": graph.total_intermediate_bytes(),
            "total_time_units": plan.total_time(),
            "compile_seconds": compile_seconds,
            "delta_r": delta_r_accounting(graph, timings).as_dict(),
        }
    unfused_time = row["unfused"]["total_time_units"]
    fused_time = row["fused"]["total_time_units"]
    row["latency_ratio"] = (
        fused_time / unfused_time if unfused_time else 0.0
    )
    return row


def run_tenancy_bench(
    config: Optional[PimConfig] = None,
    scenarios: Sequence = DEFAULT_TENANCY_SCENARIOS,
    fused_models: Sequence[str] = DEFAULT_FUSED_MODELS,
    num_pes: int = 64,
    num_vaults: int = 32,
    requests_per_tenant: int = 12,
    iterations: int = 5,
) -> Dict[str, Any]:
    """Run the bench and return the ``BENCH_tenancy/v1`` report dict."""
    machine = (
        config.with_pes(num_pes) if config is not None
        else PimConfig(num_pes=num_pes)
    )
    fused_config = PimConfig(num_pes=16)
    return new_report("tenancy", {
        "machine": machine.describe(),
        "requests_per_tenant": requests_per_tenant,
        "iterations_per_request": iterations,
        "scenarios": [
            _bench_scenario(
                label, tenants, workloads, machine, num_vaults,
                requests_per_tenant, iterations,
            )
            for label, tenants, workloads in scenarios
        ],
        "fused": [_bench_fused(model, fused_config) for model in fused_models],
    })


def render_tenancy(report: Dict[str, Any]) -> str:
    """Human-readable view of a ``BENCH_tenancy`` report."""
    lines = [
        "Multi-tenancy: consolidation throughput "
        f"({report['machine']})",
        f"{'scenario':<12} {'requests':>8} {'makespan':>9} "
        f"{'serial':>7} {'speedup':>8} {'plans':>6}",
    ]
    for row in report["scenarios"]:
        lines.append(
            f"{row['scenario']:<12} {row['requests']:>8} "
            f"{row['makespan_units']:>9} {row['serial_units']:>7} "
            f"{row['consolidation_speedup']:>7.2f}x {row['plans_cached']:>6}"
        )
        for tenant, info in row["tenants"].items():
            lines.append(
                f"    {tenant:<12} {info['workload']:<16} "
                f"pes={info['pes']:<3} served={info['served']:<4} "
                f"horizon={info['horizon_units']}"
            )
    lines.append("")
    lines.append("Fused dataflow: lowering profile (16 PEs)")
    lines.append(
        f"{'model':<10} {'ops':>9} {'IRs':>9} {'dR cand.':>9} "
        f"{'boundary dR':>11} {'latency':>8}"
    )
    for row in report["fused"]:
        unfused, fused = row["unfused"], row["fused"]
        lines.append(
            f"{row['model']:<10} "
            f"{unfused['ops']:>4}->{fused['ops']:<4} "
            f"{unfused['intermediate_results']:>4}->{fused['intermediate_results']:<4} "
            f"{unfused['delta_r']['candidate_edges']:>4}->{fused['delta_r']['candidate_edges']:<4} "
            f"{fused['delta_r']['fused_boundary_delta_r']:>11} "
            f"{row['latency_ratio']:>7.3f}x"
        )
    return "\n".join(lines)
