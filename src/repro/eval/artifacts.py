"""Persist and reload experiment results as JSON artifacts.

Experiment runs become reviewable files: each artifact records the machine
configuration, the rows of the experiment and a schema tag, so results can
be archived, diffed across code versions, and turned into the markdown
blocks EXPERIMENTS.md carries.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.pim.config import PimConfig

ARTIFACT_VERSION = 1


class ArtifactError(ValueError):
    """Raised for malformed experiment artifacts."""


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment row fields to JSON values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.name != "graph"  # graphs are workload-reproducible
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def save_artifact(
    experiment: str,
    rows: Sequence[Any],
    config: PimConfig,
    path: Union[str, Path],
    extra: Dict[str, Any] = None,
) -> None:
    """Write one experiment's rows (dataclasses) to a JSON artifact."""
    payload = {
        "artifact_version": ARTIFACT_VERSION,
        "experiment": experiment,
        "config": {
            "num_pes": config.num_pes,
            "cache_bytes_per_pe": config.cache_bytes_per_pe,
            "cache_slot_bytes": config.cache_slot_bytes,
            "edram_latency_factor": config.edram_latency_factor,
            "edram_energy_factor": config.edram_energy_factor,
            "iterations": config.iterations,
        },
        "rows": [_jsonable(row) for row in rows],
        "extra": extra or {},
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load an artifact, validating its schema tag."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(f"unsupported artifact version {version!r}")
    for key in ("experiment", "config", "rows"):
        if key not in payload:
            raise ArtifactError(f"artifact missing {key!r}")
    return payload


def diff_artifacts(
    old: Dict[str, Any], new: Dict[str, Any], tolerance: float = 0.0
) -> List[str]:
    """Human-readable differences between two runs of one experiment.

    Compares numeric leaf fields row by row (rows matched positionally);
    returns one message per drifted value. ``tolerance`` is the relative
    change below which a numeric difference is ignored.
    """
    if old["experiment"] != new["experiment"]:
        raise ArtifactError(
            f"cannot diff {old['experiment']!r} against {new['experiment']!r}"
        )
    messages: List[str] = []
    if len(old["rows"]) != len(new["rows"]):
        messages.append(
            f"row count changed: {len(old['rows'])} -> {len(new['rows'])}"
        )

    def walk(prefix: str, left: Any, right: Any) -> None:
        if isinstance(left, dict) and isinstance(right, dict):
            for key in sorted(set(left) | set(right)):
                if key not in left or key not in right:
                    messages.append(f"{prefix}{key}: added/removed field")
                    continue
                walk(f"{prefix}{key}.", left[key], right[key])
            return
        if isinstance(left, list) and isinstance(right, list):
            for index, (a, b) in enumerate(zip(left, right)):
                walk(f"{prefix}{index}.", a, b)
            return
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            scale = max(abs(left), abs(right), 1e-12)
            if abs(left - right) / scale > tolerance:
                messages.append(f"{prefix[:-1]}: {left} -> {right}")
            return
        if left != right:
            messages.append(f"{prefix[:-1]}: {left!r} -> {right!r}")

    for index, (a, b) in enumerate(zip(old["rows"], new["rows"])):
        walk(f"row[{index}].", a, b)
    return messages
