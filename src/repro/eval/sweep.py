"""Parameter sweeps: scalability and sensitivity experiments.

The paper's evaluation mentions scalability (synthetic graphs with over
500 convolutions); this module generalizes it into reusable sweeps:

* :func:`sweep_graph_scale` -- improvement vs graph size at fixed machine;
* :func:`sweep_edram_factor` -- sensitivity to the 2-10x vault cost ratio;
* :func:`sweep_cache_capacity` -- sensitivity to the per-PE cache size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv, ParaConvResult
from repro.eval.reporting import format_table
from repro.graph.generators import GeneratorParams, SyntheticGraphGenerator
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

#: optional simulation knob shared by every sweep below.
SimModeArg = Union[str, SimMode, None]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and both schemes' totals."""

    knob: float
    paraconv_time: int
    sparta_time: int
    max_retiming: int
    num_cached: int
    #: executor-measured makespan (None: simulation not requested).
    realized_time: Optional[int] = None

    @property
    def improvement_percent(self) -> float:
        if self.sparta_time == 0:
            return 0.0
        return (self.sparta_time - self.paraconv_time) / self.sparta_time * 100.0


def _maybe_simulate(
    machine: PimConfig,
    para: ParaConvResult,
    sim_mode: SimModeArg,
    sim_iterations: int,
) -> Optional[int]:
    """Realized makespan from the executor, or None when not requested."""
    if sim_mode is None:
        return None
    executor = ScheduleExecutor(machine, mode=SimMode.from_name(sim_mode))
    trace = executor.execute(para, iterations=sim_iterations, sink=NullSink())
    return trace.realized_makespan


def sweep_graph_scale(
    sizes: Sequence[int] = (50, 100, 200, 400, 800),
    edge_factor: float = 2.6,
    config: Optional[PimConfig] = None,
    seed: int = 7,
    sim_mode: SimModeArg = None,
    sim_iterations: int = 50,
) -> List[SweepPoint]:
    """Improvement vs synthetic-graph size (scalability experiment)."""
    machine = config or PimConfig(num_pes=32)
    generator = SyntheticGraphGenerator(GeneratorParams())
    points: List[SweepPoint] = []
    for size in sizes:
        edges = int(size * edge_factor)
        graph = generator.generate(size, edges, seed=seed, name=f"scale-{size}")
        para = ParaConv(machine).run(graph)
        sparta = SpartaScheduler(machine).run(graph)
        points.append(
            SweepPoint(
                knob=size,
                paraconv_time=para.total_time(),
                sparta_time=sparta.total_time(),
                max_retiming=para.max_retiming,
                num_cached=para.num_cached,
                realized_time=_maybe_simulate(
                    machine, para, sim_mode, sim_iterations
                ),
            )
        )
    return points


def sweep_edram_factor(
    graph_name: str = "shortest-path",
    factors: Sequence[int] = (2, 4, 6, 8, 10),
    config: Optional[PimConfig] = None,
    sim_mode: SimModeArg = None,
    sim_iterations: int = 50,
) -> List[SweepPoint]:
    """Improvement vs the eDRAM latency factor (2-10x per the paper)."""
    from repro.cnn.workloads import load_workload
    from dataclasses import replace as dc_replace

    base = config or PimConfig(num_pes=32)
    graph = load_workload(graph_name)
    points: List[SweepPoint] = []
    for factor in factors:
        machine = dc_replace(base, edram_latency_factor=factor)
        para = ParaConv(machine).run(graph)
        sparta = SpartaScheduler(machine).run(graph)
        points.append(
            SweepPoint(
                knob=factor,
                paraconv_time=para.total_time(),
                sparta_time=sparta.total_time(),
                max_retiming=para.max_retiming,
                num_cached=para.num_cached,
                realized_time=_maybe_simulate(
                    machine, para, sim_mode, sim_iterations
                ),
            )
        )
    return points


def sweep_cache_capacity(
    graph_name: str = "shortest-path",
    capacities: Sequence[int] = (0, 1024, 2048, 4096, 8192, 16384),
    config: Optional[PimConfig] = None,
    sim_mode: SimModeArg = None,
    sim_iterations: int = 50,
) -> List[SweepPoint]:
    """Improvement vs per-PE cache bytes (0 = pure eDRAM machine)."""
    from repro.cnn.workloads import load_workload
    from dataclasses import replace as dc_replace

    base = config or PimConfig(num_pes=32)
    graph = load_workload(graph_name)
    points: List[SweepPoint] = []
    for capacity in capacities:
        machine = dc_replace(base, cache_bytes_per_pe=capacity)
        para = ParaConv(machine).run(graph)
        sparta = SpartaScheduler(machine).run(graph)
        points.append(
            SweepPoint(
                knob=capacity,
                paraconv_time=para.total_time(),
                sparta_time=sparta.total_time(),
                max_retiming=para.max_retiming,
                num_cached=para.num_cached,
                realized_time=_maybe_simulate(
                    machine, para, sim_mode, sim_iterations
                ),
            )
        )
    return points


def render_sweep(points: Sequence[SweepPoint], knob_name: str, title: str) -> str:
    simulated = any(point.realized_time is not None for point in points)
    headers = [knob_name, "Para-CONV", "SPARTA", "IMP%", "R_max", "cached"]
    if simulated:
        headers.append("realized")
    body = []
    for point in points:
        line: List[object] = [
            point.knob, point.paraconv_time, point.sparta_time,
            point.improvement_percent, point.max_retiming, point.num_cached,
        ]
        if simulated:
            line.append(
                "-" if point.realized_time is None else point.realized_time
            )
        body.append(line)
    return format_table(headers, body, title=title)
