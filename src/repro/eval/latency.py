"""Frame-latency analysis: the throughput/latency trade-off (extension).

The paper optimizes *throughput*; it never reports per-frame latency. Yet
retiming has a latency cost: a frame entering a Para-CONV pipeline is
processed across ``R_max + 1`` rounds (its most-retimed operations ran
``R_max`` rounds before its least-retimed ones), so its sojourn time is
``(R_max + 1) * p``, while the dependency-honoring baseline finishes a
frame in one kernel of length ``L``. This experiment quantifies the
trade-off on every benchmark: Para-CONV wins throughput everywhere, but on
deep-retiming workloads the baseline can win per-frame latency -- a fact
downstream users of the framework should know before adopting it for
latency-critical inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


@dataclass(frozen=True)
class LatencyRow:
    """Per-frame latency vs throughput for one benchmark."""

    benchmark: str
    pes: int
    #: Para-CONV frame sojourn: (R_max + 1) * p.
    paraconv_latency: int
    #: SPARTA frame latency: one dependency-honoring kernel L.
    sparta_latency: int
    #: steady-state frame intervals (time per completed frame).
    paraconv_interval: float
    sparta_interval: float
    #: executor-measured makespan of ``sim_iterations`` Para-CONV
    #: iterations (None when simulation was not requested).
    realized_makespan: Optional[int] = None
    #: analytic makespan of the same simulated run, for the ratio.
    simulated_analytic: Optional[int] = None

    @property
    def latency_ratio(self) -> float:
        """Para-CONV latency over SPARTA latency (> 1: retiming costs)."""
        if self.sparta_latency == 0:
            return 1.0
        return self.paraconv_latency / self.sparta_latency

    @property
    def throughput_ratio(self) -> float:
        """SPARTA interval over Para-CONV interval (> 1: Para-CONV wins)."""
        if self.paraconv_interval == 0:
            return 1.0
        return self.sparta_interval / self.paraconv_interval


def run_latency(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pes: int = 32,
    sim_mode: Union[str, SimMode, None] = None,
    sim_iterations: int = 200,
) -> List[LatencyRow]:
    """Analytic latency/throughput rows, optionally cross-checked.

    With ``sim_mode`` set the discrete-event executor also measures the
    realized makespan of ``sim_iterations`` Para-CONV iterations --
    affordable even for long runs in ``steady`` mode.
    """
    config = (base_config or PimConfig()).with_pes(pes)
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    executor = (
        ScheduleExecutor(config, mode=SimMode.from_name(sim_mode))
        if sim_mode is not None
        else None
    )
    rows: List[LatencyRow] = []
    for name in names:
        graph = load_workload(name)
        para = ParaConv(config).run(graph)
        sparta = SpartaScheduler(config).run(graph)
        realized: Optional[int] = None
        analytic: Optional[int] = None
        if executor is not None:
            trace = executor.execute(
                para, iterations=sim_iterations, sink=NullSink()
            )
            realized = trace.realized_makespan
            analytic = trace.analytic_makespan
        rows.append(
            LatencyRow(
                benchmark=name,
                pes=pes,
                paraconv_latency=(para.max_retiming + 1) * para.period,
                sparta_latency=sparta.iteration_length,
                paraconv_interval=para.period / para.num_groups,
                sparta_interval=sparta.effective_period,
                realized_makespan=realized,
                simulated_analytic=analytic,
            )
        )
    return rows


def render_latency(rows: Sequence[LatencyRow]) -> str:
    simulated = any(r.realized_makespan is not None for r in rows)
    headers = [
        "benchmark", "PEs", "Para latency", "SPARTA latency",
        "latency ratio", "Para interval", "SPARTA interval",
        "throughput ratio",
    ]
    if simulated:
        headers += ["realized", "sim slowdown"]
    body = []
    for r in rows:
        line: List[object] = [
            r.benchmark, r.pes, r.paraconv_latency, r.sparta_latency,
            r.latency_ratio, r.paraconv_interval, r.sparta_interval,
            r.throughput_ratio,
        ]
        if simulated:
            if r.realized_makespan is None or not r.simulated_analytic:
                line += ["-", "-"]
            else:
                line += [
                    r.realized_makespan,
                    r.realized_makespan / r.simulated_analytic,
                ]
        body.append(line)
    return format_table(
        headers, body,
        title="Frame latency vs throughput (extension): retiming trades "
        "per-frame latency for throughput",
    )
