"""Trend-agreement scoring between measured results and the paper.

Absolute numbers are incomparable across simulators, so EXPERIMENTS.md
compares *shapes*. This module makes that comparison quantitative:

* :func:`rank_agreement` -- Spearman-style rank correlation between two
  numeric series (e.g. per-benchmark reductions, ours vs the paper's);
* :func:`sign_agreement` -- fraction of paired deltas that move the same
  direction across the PE sweep;
* :func:`table1_trend_report` -- both scores computed for Table 1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.paper_data import PAPER_TABLE1, paper_reduction
from repro.eval.table1 import Table1Row


def _ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (ties averaged), 1-based."""
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(indexed):
        tail = position
        while (
            tail + 1 < len(indexed)
            and values[indexed[tail + 1]] == values[indexed[position]]
        ):
            tail += 1
        average = (position + tail) / 2 + 1
        for k in range(position, tail + 1):
            ranks[indexed[k]] = average
        position = tail + 1
    return ranks


def rank_agreement(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation in [-1, 1]; 0 for degenerate input."""
    if len(a) != len(b):
        raise ValueError(f"series lengths differ: {len(a)} vs {len(b)}")
    n = len(a)
    if n < 2:
        return 0.0
    ra, rb = _ranks(a), _ranks(b)
    mean = (n + 1) / 2
    cov = sum((x - mean) * (y - mean) for x, y in zip(ra, rb))
    var_a = sum((x - mean) ** 2 for x in ra)
    var_b = sum((y - mean) ** 2 for y in rb)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


def sign_agreement(
    a: Sequence[float], b: Sequence[float]
) -> float:
    """Fraction of consecutive deltas with matching sign (ties count)."""
    if len(a) != len(b):
        raise ValueError("series lengths differ")
    if len(a) < 2:
        return 1.0
    matches = 0
    total = len(a) - 1
    for i in range(total):
        da = a[i + 1] - a[i]
        db = b[i + 1] - b[i]
        if da == 0 or db == 0 or (da > 0) == (db > 0):
            matches += 1
    return matches / total


def table1_trend_report(rows: Sequence[Table1Row]) -> Dict[str, float]:
    """Quantified Table 1 agreement with the paper.

    Returns:
        ``benchmark_rank_agreement`` -- do the same benchmarks benefit most
        (per-benchmark reduction at 32 PEs, ours vs paper-recomputed)?
        ``scaling_sign_agreement`` -- do totals move the same direction
        across the 16/32/64 sweep (averaged over benchmarks, both schemes)?
    """
    names = [row.benchmark for row in rows if row.benchmark in PAPER_TABLE1]
    ours = []
    paper = []
    for row in rows:
        if row.benchmark not in PAPER_TABLE1:
            continue
        ours.append(row.cells[32].improvement_percent)
        paper.append(paper_reduction(row.benchmark, 32))
    scaling_scores = []
    for row in rows:
        if row.benchmark not in PAPER_TABLE1:
            continue
        mine = [row.cells[p].paraconv_time for p in (16, 32, 64)]
        theirs = [PAPER_TABLE1[row.benchmark][p][1] for p in (16, 32, 64)]
        scaling_scores.append(sign_agreement(mine, theirs))
    return {
        "benchmark_rank_agreement": rank_agreement(ours, paper),
        "scaling_sign_agreement": (
            sum(scaling_scores) / len(scaling_scores) if scaling_scores else 0.0
        ),
        "benchmarks_compared": float(len(names)),
    }
