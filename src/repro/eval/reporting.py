"""Plain-text and CSV rendering for experiment results."""

from __future__ import annotations

import csv
import io
from typing import Any, Iterable, List, Optional, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (right-aligned numerics)."""
    rendered: List[List[str]] = [[_render_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row, raw in zip(rendered, rendered):
        cells = []
        for idx, cell in enumerate(row):
            # left-align the first (label) column, right-align the rest
            if idx == 0:
                cells.append(cell.ljust(widths[idx]))
            else:
                cells.append(cell.rjust(widths[idx]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as CSV text (for spreadsheet import)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (0 for empty input); values must be positive."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
