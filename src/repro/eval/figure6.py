"""Figure 6: intermediate processing results allocated to on-chip cache.

The paper counts how many intermediate results Para-CONV's dynamic program
places in the PE cache at 16/32/64 PEs and observes the count growing from
16 to 32 PEs, then saturating from 32 to 64 -- the benchmarks rarely keep
more than about thirty intermediate results in flight concurrently, so the
extra capacity goes unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PAPER_PE_SWEEP, PimConfig


@dataclass(frozen=True)
class Figure6Row:
    """Cached-IR census for one benchmark."""

    benchmark: str
    num_edges: int
    #: per-group cached IRs (what one DP instance selects).
    cached_per_group: Dict[int, int]
    #: array-wide resident cached IRs (per-group count x groups).
    cached_total: Dict[int, int]
    #: competing (ΔR > 0) IRs the DP saw -- the saturation ceiling.
    competing: Dict[int, int]

    def saturated(self, low_pes: int, high_pes: int, tolerance: int = 2) -> bool:
        """Whether the per-group count stopped growing between two sizes."""
        return (
            self.cached_per_group[high_pes]
            <= self.cached_per_group[low_pes] + tolerance
        )


def run_figure6(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pe_counts: Sequence[int] = PAPER_PE_SWEEP,
) -> List[Figure6Row]:
    config = base_config or PimConfig()
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    rows: List[Figure6Row] = []
    for name in names:
        graph = load_workload(name)
        per_group: Dict[int, int] = {}
        total: Dict[int, int] = {}
        competing: Dict[int, int] = {}
        for pes in pe_counts:
            # The paper maps one iteration across the whole array (Figure
            # 3(b)); the cache census is therefore taken at full width.
            result = ParaConv(config.with_pes(pes)).run_at_width(graph, pes)
            per_group[pes] = result.num_cached
            total[pes] = result.num_cached_total
            # Competing edges are the placement-sensitive cases 2, 3, 5 of
            # Figure 4 -- the saturation ceiling for the cached count.
            competing[pes] = sum(
                count
                for case, count in result.case_histogram.items()
                if case.placement_sensitive
            )
        rows.append(
            Figure6Row(
                benchmark=name,
                num_edges=graph.num_edges,
                cached_per_group=per_group,
                cached_total=total,
                competing=competing,
            )
        )
    return rows


def render_figure6(rows: Sequence[Figure6Row]) -> str:
    pe_counts = sorted(next(iter(rows)).cached_per_group) if rows else []
    headers = ["benchmark", "|E|"]
    for pes in pe_counts:
        headers += [f"cached@{pes}", f"total@{pes}", f"competing@{pes}"]
    body = []
    for row in rows:
        line: List[object] = [row.benchmark, row.num_edges]
        for pes in pe_counts:
            line += [
                row.cached_per_group[pes],
                row.cached_total[pes],
                row.competing[pes],
            ]
        body.append(line)
    return format_table(
        headers,
        body,
        title="Figure 6: intermediate results allocated to on-chip cache "
        "(cached = per group, total = array-wide, competing = ΔR>0 edges)",
    )
