"""Extension A3: data-movement energy accounting (the paper's future work).

For each benchmark the experiment prices the steady-state per-iteration
traffic of three schemes -- Para-CONV's DP allocation, the no-cache floor
(all intermediate results in eDRAM) and SPARTA's greedy allocation --
using the machine's per-byte energy ratios. Expected shape: Para-CONV
moves the same bytes at lower energy because more of them stay on-chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig
from repro.pim.energy import EnergyModel
from repro.pim.memory import Placement
from repro.pim.stats import TrafficStats


@dataclass(frozen=True)
class EnergyRow:
    benchmark: str
    pes: int
    paraconv_pj: float
    all_edram_pj: float
    sparta_pj: float

    @property
    def saving_vs_no_cache(self) -> float:
        """Fractional movement-energy saving of Para-CONV vs no cache."""
        if self.all_edram_pj == 0:
            return 0.0
        return 1.0 - self.paraconv_pj / self.all_edram_pj

    @property
    def saving_vs_sparta(self) -> float:
        if self.sparta_pj == 0:
            return 0.0
        return 1.0 - self.paraconv_pj / self.sparta_pj


def _movement_energy(
    placements, graph, config: PimConfig, model: EnergyModel
) -> float:
    """Per-iteration movement energy of one placement map."""
    stats = TrafficStats()
    for edge in graph.edges():
        if placements[edge.key] is Placement.CACHE:
            stats.cache_accesses += 1
            stats.cache_bytes += edge.size_bytes
        else:
            stats.edram_accesses += 1
            stats.edram_bytes += edge.size_bytes
    return model.estimate(stats, config).movement_pj


def run_energy(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pes: int = 32,
    model: Optional[EnergyModel] = None,
) -> List[EnergyRow]:
    config = (base_config or PimConfig()).with_pes(pes)
    energy_model = model or EnergyModel()
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    rows: List[EnergyRow] = []
    for name in names:
        graph = load_workload(name)
        para = ParaConv(config).run(graph)
        no_cache = ParaConv(config, allocator_name="all-edram").run(graph)
        sparta = SpartaScheduler(config).run(graph)
        rows.append(
            EnergyRow(
                benchmark=name,
                pes=pes,
                paraconv_pj=_movement_energy(
                    para.schedule.placements, graph, config, energy_model
                ),
                all_edram_pj=_movement_energy(
                    no_cache.schedule.placements, graph, config, energy_model
                ),
                sparta_pj=_movement_energy(
                    sparta.placements, graph, config, energy_model
                ),
            )
        )
    return rows


def render_energy(rows: Sequence[EnergyRow]) -> str:
    headers = [
        "benchmark", "PEs", "Para-CONV pJ", "no-cache pJ", "SPARTA pJ",
        "save vs no-cache %", "save vs SPARTA %",
    ]
    body = [
        [
            r.benchmark, r.pes, r.paraconv_pj, r.all_edram_pj, r.sparta_pj,
            r.saving_vs_no_cache * 100.0, r.saving_vs_sparta * 100.0,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Extension A3: per-iteration data-movement energy",
    )
