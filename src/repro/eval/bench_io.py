"""Schema-versioned bench-trajectory files (``BENCH_<kind>.json``).

Every perf artifact the repo publishes — the fleet serving bench, the
columnar compile bench, the columnar sim bench — is a *trajectory file*:
a JSON document whose first key is a ``"schema"`` tag of the form
``BENCH_<kind>/v<N>``. The tag makes the files self-describing, so a
dashboard (or a later PR) can reject a payload it does not understand
instead of silently misreading it.

This module is the one place that knows the tag grammar. Producers build
reports with :func:`new_report` (or stamp their own dict with
:func:`schema_tag`) and persist them with :func:`dump_bench`; consumers
round-trip with :func:`load_bench`, which verifies the tag before
returning the payload. The writer is dependency-free on purpose: the
fleet tier imports it without dragging in the eval experiments.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: key every trajectory file leads with.
SCHEMA_KEY = "schema"

_PREFIX = "BENCH_"


class BenchSchemaError(ValueError):
    """A trajectory file (or report dict) carries a malformed tag."""


def schema_tag(kind: str, version: int = 1) -> str:
    """Return the ``BENCH_<kind>/v<N>`` tag for a trajectory kind."""
    if not kind or not kind.replace("_", "").isalnum():
        raise BenchSchemaError(f"invalid bench kind {kind!r}")
    if version < 1:
        raise BenchSchemaError(f"invalid bench schema version {version!r}")
    return f"{_PREFIX}{kind}/v{version}"


def parse_schema(tag: object) -> Tuple[str, int]:
    """Split a ``BENCH_<kind>/v<N>`` tag into ``(kind, version)``."""
    if not isinstance(tag, str) or not tag.startswith(_PREFIX):
        raise BenchSchemaError(f"not a bench schema tag: {tag!r}")
    body, sep, suffix = tag[len(_PREFIX):].partition("/v")
    if not sep or not body or not suffix.isdigit():
        raise BenchSchemaError(f"malformed bench schema tag: {tag!r}")
    return body, int(suffix)


def bench_environment() -> Dict[str, str]:
    """Interpreter/platform snapshot embedded in trajectory files.

    Perf numbers are meaningless without provenance: two trajectory
    files can only be compared when this block says they ran on
    comparable stacks.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover — numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def new_report(
    kind: str,
    payload: Optional[Dict[str, Any]] = None,
    *,
    version: int = 1,
    environment: bool = True,
) -> Dict[str, Any]:
    """Assemble a tagged report dict, schema key first.

    ``payload`` keys follow the tag (and the environment block, unless
    disabled); a payload that tries to smuggle its own ``schema`` key is
    rejected rather than silently overwritten.
    """
    payload = dict(payload or {})
    if SCHEMA_KEY in payload:
        raise BenchSchemaError(
            "payload already carries a 'schema' key; pass kind/version "
            "through new_report instead"
        )
    report: Dict[str, Any] = {SCHEMA_KEY: schema_tag(kind, version)}
    if environment:
        report["environment"] = bench_environment()
    report.update(payload)
    return report


def dump_bench(path: Union[str, Path], report: Dict[str, Any]) -> Path:
    """Write a tagged report as pretty JSON (+ trailing newline).

    The tag is validated *before* the write so a producer bug cannot
    publish an artifact that every consumer would then refuse to load.
    """
    parse_schema(report.get(SCHEMA_KEY))
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n")
    return target


def load_bench(
    path: Union[str, Path],
    kind: Optional[str] = None,
) -> Dict[str, Any]:
    """Read a trajectory file back, verifying its schema tag.

    With ``kind`` given, a tag of a different kind is an error — the
    version number is returned to the caller via the tag itself, so
    consumers can branch on ``parse_schema`` when a ``v2`` lands.
    """
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict):
        raise BenchSchemaError(f"{path}: trajectory root must be an object")
    found_kind, _ = parse_schema(document.get(SCHEMA_KEY))
    if kind is not None and found_kind != kind:
        raise BenchSchemaError(
            f"{path}: expected BENCH_{kind} trajectory, found "
            f"{document[SCHEMA_KEY]!r}"
        )
    return document
