"""Table 2: maximum retiming value of Para-CONV on 16/32/64 PEs.

``R_max`` determines the prologue time ``R_max * p``. The paper's shapes:
larger applications retime deeper, and the prologue overhead stays
negligible next to the steady-state gain. (The paper also reports R_max
*decreasing* with PE count; in this reproduction's microtiming the
throughput-optimal operating point often widens with more PEs, which can
deepen retiming even as the prologue *time* falls -- EXPERIMENTS.md
discusses the discrepancy.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.paraconv import ParaConv
from repro.eval.paper_data import PAPER_TABLE2
from repro.eval.reporting import format_table
from repro.pim.config import PAPER_PE_SWEEP, PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's R_max across the PE sweep."""

    benchmark: str
    max_retiming: Dict[int, int]
    prologue_time: Dict[int, int]
    total_time: Dict[int, int]

    @property
    def average(self) -> float:
        values = list(self.max_retiming.values())
        return sum(values) / len(values) if values else 0.0

    def prologue_fraction(self, pes: int) -> float:
        """Prologue share of the total execution time (should be small)."""
        total = self.total_time[pes]
        return self.prologue_time[pes] / total if total else 0.0


def run_table2(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pe_counts: Sequence[int] = PAPER_PE_SWEEP,
) -> List[Table2Row]:
    """Measure R_max (and the prologue overhead) per configuration."""
    config = base_config or PimConfig()
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    rows: List[Table2Row] = []
    for name in names:
        graph = load_workload(name)
        r_max: Dict[int, int] = {}
        prologue: Dict[int, int] = {}
        total: Dict[int, int] = {}
        for pes in pe_counts:
            # Full-array mapping (one iteration over all PEs), matching the
            # paper's Figure 3(b) construction that Table 2 analyzes.
            result = ParaConv(config.with_pes(pes)).run_at_width(graph, pes)
            r_max[pes] = result.max_retiming
            prologue[pes] = result.prologue_time
            total[pes] = result.total_time()
        rows.append(
            Table2Row(
                benchmark=name,
                max_retiming=r_max,
                prologue_time=prologue,
                total_time=total,
            )
        )
    return rows


@dataclass(frozen=True)
class RealizedPrologueRow:
    """Executor-measured counterpart of one Table 2 row.

    Kept separate from :class:`Table2Row` so the golden Table 2 artifact
    schema stays frozen; the analytic prologue share is cross-checked
    against the discrete-event executor, which the steady-state engine
    makes affordable even at the paper's ``N``.
    """

    benchmark: str
    pes: int
    analytic_total: int
    realized_total: int
    prologue_time: int
    converged_round: Optional[int]

    @property
    def realized_prologue_fraction(self) -> float:
        if self.realized_total == 0:
            return 0.0
        return self.prologue_time / self.realized_total


def run_table2_realized(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pe_counts: Sequence[int] = PAPER_PE_SWEEP,
    iterations: int = 100,
    sim_mode: Union[str, SimMode] = SimMode.STEADY_STATE,
) -> List[RealizedPrologueRow]:
    """Cross-check Table 2's prologue accounting on the executor."""
    config = base_config or PimConfig()
    mode = SimMode.from_name(sim_mode)
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    rows: List[RealizedPrologueRow] = []
    for name in names:
        graph = load_workload(name)
        for pes in pe_counts:
            machine = config.with_pes(pes)
            result = ParaConv(machine).run_at_width(graph, pes)
            executor = ScheduleExecutor(machine, mode=mode)
            trace = executor.execute(
                result, iterations=iterations, sink=NullSink()
            )
            rows.append(
                RealizedPrologueRow(
                    benchmark=name,
                    pes=pes,
                    analytic_total=trace.analytic_makespan,
                    realized_total=trace.realized_makespan,
                    prologue_time=result.prologue_time,
                    converged_round=trace.converged_round,
                )
            )
    return rows


def render_table2_realized(rows: Sequence[RealizedPrologueRow]) -> str:
    headers = [
        "benchmark", "PEs", "analytic", "realized", "prologue",
        "realized pro%", "conv round",
    ]
    body = [
        [
            r.benchmark, r.pes, r.analytic_total, r.realized_total,
            r.prologue_time, r.realized_prologue_fraction * 100.0,
            "-" if r.converged_round is None else r.converged_round,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Table 2 cross-check: realized prologue share on the "
        "discrete-event executor",
    )


def render_table2(rows: Sequence[Table2Row]) -> str:
    pe_counts = sorted(next(iter(rows)).max_retiming) if rows else []
    headers = ["benchmark"]
    for pes in pe_counts:
        headers += [f"R_max@{pes}", f"paper@{pes}", f"pro%@{pes}"]
    headers.append("average")
    body = []
    for row in rows:
        line: List[object] = [row.benchmark]
        for pes in pe_counts:
            paper = PAPER_TABLE2.get(row.benchmark, {}).get(pes, float("nan"))
            line += [
                row.max_retiming[pes],
                paper,
                row.prologue_fraction(pes) * 100.0,
            ]
        line.append(row.average)
        body.append(line)
    return format_table(
        headers,
        body,
        title="Table 2: maximum retiming value (pro% = prologue share of "
        "total execution time)",
    )
