"""Heterogeneous-array experiment: SPARTA on its home turf (extension).

The paper evaluates against SPARTA on a *homogeneous* PE array, although
SPARTA was designed for heterogeneous many-cores. This experiment levels
the field: a big.LITTLE-style PIM array (half the PEs at nominal speed,
half slower), a heterogeneity-aware (HEFT-dispatch) SPARTA, and Para-CONV
with a speed-aware kernel compactor. Both schemes map one iteration across
the full array.

Expected shape: the gap narrows relative to the homogeneous machine (the
baseline's placement intelligence finally matters) but Para-CONV still
wins -- retiming removes the demand-fetch stalls regardless of PE speeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cnn.workloads import load_workload
from repro.core.allocation import AllocationProblem, dp_allocate
from repro.core.baseline import SpartaScheduler
from repro.core.retiming import analyze_edges, solve_retiming
from repro.core.schedule import PeriodicSchedule
from repro.core.scheduler import (
    compact_kernel_schedule_heterogeneous,
    list_schedule_heterogeneous,
)
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig
from repro.pim.heterogeneous import HeterogeneousArray, big_little
from repro.pim.memory import Placement


@dataclass(frozen=True)
class HeterogeneityRow:
    benchmark: str
    little_speed: float
    paraconv_time: int
    sparta_time: int
    paraconv_period: int
    sparta_period: int
    max_retiming: int

    @property
    def improvement_percent(self) -> float:
        if self.sparta_time == 0:
            return 0.0
        return (self.sparta_time - self.paraconv_time) / self.sparta_time * 100.0


def paraconv_heterogeneous(
    graph, array: HeterogeneousArray
) -> Tuple[PeriodicSchedule, int]:
    """Full-array Para-CONV on a heterogeneous array.

    Same pipeline as :meth:`ParaConv.run_at_width`, with the speed-aware
    compactor; returns the schedule and its total time for the configured
    iteration count.
    """
    config = array.config
    kernel = compact_kernel_schedule_heterogeneous(graph, array)
    timings = analyze_edges(graph, kernel, config)
    problem = AllocationProblem.from_timings(timings, config.total_cache_slots)
    allocation = dp_allocate(problem)
    deltas = {
        key: timing.delta_for(allocation.placements[key])
        for key, timing in timings.items()
    }
    solution = solve_retiming(graph, deltas)
    schedule = PeriodicSchedule(
        graph=graph,
        kernel=kernel,
        retiming=solution.vertex_retiming,
        edge_retiming=solution.edge_retiming,
        placements=dict(allocation.placements),
        transfer_times={
            key: timing.transfer_for(allocation.placements[key])
            for key, timing in timings.items()
        },
    )
    return schedule, schedule.total_time(config.iterations)


def sparta_heterogeneous(graph, array: HeterogeneousArray) -> Tuple[int, int]:
    """Heterogeneity-aware SPARTA: HEFT dispatch with demand-fetch stalls.

    Returns ``(iteration_length, total_time)`` at full-array mapping.
    """
    config = array.config
    helper = SpartaScheduler(config)
    sensors = helper._characterize(graph)
    placements = helper._allocate_cache(
        graph, sensors, config.total_cache_slots
    )
    stalls: Dict[int, int] = {}
    for op in graph.operations():
        stall = 0
        for edge in graph.in_edges(op.op_id):
            if placements[edge.key] is Placement.CACHE:
                stall += config.cache_transfer_units(edge.size_bytes)
            else:
                stall += config.edram_transfer_units(edge.size_bytes)
        stalls[op.op_id] = stall
    kernel = list_schedule_heterogeneous(
        graph, array, extra_occupancy=stalls
    )
    return kernel.period, kernel.period * config.iterations


def run_heterogeneity(
    base_config: Optional[PimConfig] = None,
    benchmarks: Sequence[str] = ("flower", "character-1", "shortest-path"),
    pes: int = 16,
    little_speeds: Sequence[float] = (1.0, 0.5, 0.25),
) -> List[HeterogeneityRow]:
    """Sweep the big/little speed gap; 1.0 degenerates to homogeneous."""
    config = (base_config or PimConfig()).with_pes(pes)
    rows: List[HeterogeneityRow] = []
    for little in little_speeds:
        array = big_little(config, big_fraction=0.5, little_speed=little)
        for name in benchmarks:
            graph = load_workload(name)
            schedule, para_total = paraconv_heterogeneous(graph, array)
            sparta_period, sparta_total = sparta_heterogeneous(graph, array)
            rows.append(
                HeterogeneityRow(
                    benchmark=name,
                    little_speed=little,
                    paraconv_time=para_total,
                    sparta_time=sparta_total,
                    paraconv_period=schedule.period,
                    sparta_period=sparta_period,
                    max_retiming=schedule.max_retiming,
                )
            )
    return rows


def render_heterogeneity(rows: Sequence[HeterogeneityRow]) -> str:
    headers = [
        "benchmark", "little speed", "Para-CONV", "SPARTA", "IMP%",
        "Para p", "SPARTA L", "R_max",
    ]
    body = [
        [
            r.benchmark, r.little_speed, r.paraconv_time, r.sparta_time,
            r.improvement_percent, r.paraconv_period, r.sparta_period,
            r.max_retiming,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Heterogeneous big.LITTLE PIM (extension): speed-aware "
        "schemes at full-array mapping",
    )
