"""Workload census: structural statistics of every registered workload.

Backs ``python -m repro.eval workloads`` and the documentation tables:
vertex/edge counts, total work, critical path, parallelism and depth for
each named workload, including the CNN-derived ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cnn.workloads import WORKLOADS, load_workload
from repro.eval.reporting import format_table
from repro.graph.analysis import GraphStatistics, graph_statistics


def run_workload_stats(
    names: Optional[Sequence[str]] = None,
) -> List[GraphStatistics]:
    """Compute :class:`GraphStatistics` for the selected workloads."""
    selected = list(names) if names is not None else list(WORKLOADS)
    return [graph_statistics(load_workload(name)) for name in selected]


def render_workload_stats(rows: Sequence[GraphStatistics]) -> str:
    headers = [
        "workload", "|V|", "|E|", "work", "critical path",
        "max parallel", "depth", "avg out-degree",
    ]
    return format_table(
        headers,
        [row.as_row() for row in rows],
        title="Workload census (all registered workloads)",
    )
