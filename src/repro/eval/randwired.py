"""Randwired bench: compile/sim cost as a function of graph irregularity.

``python -m repro.eval randwired`` answers the question the irregular
workload set raises — *what does fan-in cost?* — and writes the answer
as a ``BENCH_randwired/v1`` trajectory file. The paper's layered
benchmarks have bounded fan-in by construction; the ER/WS/BA families
do not (BA hubs and the stitched head vertex are the stress points), so
the bench walks the named randwired registry plus a layered baseline
and records, per workload:

* structure — vertices, edges, max/mean fan-in, critical-path length;
* compile cost — wall seconds for the full pipeline (retiming + DP
  allocation + width search) and the resulting plan shape (period,
  ``R_max``, groups x width);
* serving cost — analytic total time for a fixed batch and the realized
  makespan plus wall seconds of a steady-state discrete-event run.

Rows are ordered by max fan-in so the table reads as a cost curve.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.eval.bench_io import new_report
from repro.graph.analysis import critical_path_length
from repro.graph.randwired import RANDWIRED_SPECS
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

__all__ = [
    "DEFAULT_RANDWIRED_BENCHMARKS",
    "render_randwired",
    "run_randwired_bench",
]

#: The named randwired registry plus one layered paper benchmark as the
#: bounded-fan-in baseline the cost curve starts from.
DEFAULT_RANDWIRED_BENCHMARKS = ("cat",) + tuple(RANDWIRED_SPECS)


def _bench_workload(
    name: str,
    config: PimConfig,
    iterations: int,
    num_vaults: int,
    sim_mode: SimMode,
) -> Dict[str, Any]:
    graph = load_workload(name)
    in_degrees = [graph.in_degree(op.op_id) for op in graph.operations()]
    edges = sum(in_degrees)

    t0 = time.perf_counter()
    plan = ParaConv(config, validate=False).run(graph)
    compile_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    trace = ScheduleExecutor(
        config, num_vaults=num_vaults, mode=sim_mode
    ).execute(plan, iterations=iterations, sink=NullSink())
    sim_wall_seconds = time.perf_counter() - t0

    return {
        "workload": name,
        "vertices": graph.num_vertices,
        "edges": edges,
        "max_fan_in": max(in_degrees),
        "mean_fan_in": edges / graph.num_vertices,
        "critical_path": critical_path_length(graph),
        "compile_seconds": compile_seconds,
        "period": plan.period,
        "max_retiming": plan.max_retiming,
        "num_groups": plan.num_groups,
        "group_width": plan.group_width,
        "total_time_units": plan.total_time(iterations),
        "realized_makespan": trace.realized_makespan,
        "sim_wall_seconds": sim_wall_seconds,
    }


def run_randwired_bench(
    config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    iterations: int = 200,
    num_vaults: int = 32,
    sim_mode: "SimMode | str" = SimMode.STEADY_STATE,
) -> Dict[str, Any]:
    """Run the bench and return the ``BENCH_randwired/v1`` report dict."""
    config = config or PimConfig(num_pes=16)
    names = (
        list(benchmarks) if benchmarks else list(DEFAULT_RANDWIRED_BENCHMARKS)
    )
    mode = SimMode.from_name(sim_mode)
    rows = [
        _bench_workload(name, config, iterations, num_vaults, mode)
        for name in names
    ]
    rows.sort(key=lambda row: (row["max_fan_in"], row["workload"]))
    return new_report("randwired", {
        "machine": config.describe(),
        "iterations": iterations,
        "sim_mode": mode.value,
        "rows": rows,
    })


def render_randwired(report: Dict[str, Any]) -> str:
    """Human-readable cost curve of a ``BENCH_randwired`` report."""
    lines = [
        f"Randwired workloads: compile/sim cost vs fan-in "
        f"({report['machine']}, N={report['iterations']})",
        f"{'workload':<16} {'|V|':>4} {'|E|':>4} {'fan-in':>6} "
        f"{'cpath':>5} {'period':>6} {'Rmax':>4} {'plan':>7} "
        f"{'compile':>8} {'total':>8} {'sim wall':>8}",
    ]
    for row in report["rows"]:
        plan_shape = f"{row['num_groups']}x{row['group_width']}"
        lines.append(
            f"{row['workload']:<16} {row['vertices']:>4} {row['edges']:>4} "
            f"{row['max_fan_in']:>6} {row['critical_path']:>5} "
            f"{row['period']:>6} {row['max_retiming']:>4} "
            f"{plan_shape:>7} {row['compile_seconds']:>7.3f}s "
            f"{row['total_time_units']:>8} {row['sim_wall_seconds']:>7.3f}s"
        )
    return "\n".join(lines)
