"""Figure 5: per-iteration execution time on 16/32/64 PEs.

The paper plots each benchmark's steady-state iteration time, normalized
by the baseline's on 64 PEs, and observes that it "significantly decreases
with more processing engines". The effective per-iteration time is
``p / J`` (one iteration completes every ``p / J`` time units once ``J``
groups pipeline); the figure reports that quantity normalized by SPARTA's
effective iteration time at 64 PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PAPER_PE_SWEEP, PimConfig


@dataclass(frozen=True)
class Figure5Row:
    """Effective per-iteration execution time for one benchmark."""

    benchmark: str
    #: Para-CONV effective iteration time (p / J) per PE count.
    iteration_time: Dict[int, float]
    #: SPARTA effective iteration time at the normalization point (64 PEs).
    baseline_64: float

    def normalized(self, pes: int) -> float:
        """Iteration time normalized by the 64-PE baseline (paper's y-axis)."""
        if self.baseline_64 == 0:
            return 0.0
        return self.iteration_time[pes] / self.baseline_64


def run_figure5(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pe_counts: Sequence[int] = PAPER_PE_SWEEP,
) -> List[Figure5Row]:
    config = base_config or PimConfig()
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    norm_pes = max(pe_counts)
    rows: List[Figure5Row] = []
    for name in names:
        graph = load_workload(name)
        times: Dict[int, float] = {}
        for pes in pe_counts:
            result = ParaConv(config.with_pes(pes)).run(graph)
            times[pes] = result.period / result.num_groups
        baseline = SpartaScheduler(config.with_pes(norm_pes)).run(graph)
        rows.append(
            Figure5Row(
                benchmark=name,
                iteration_time=times,
                baseline_64=baseline.effective_period,
            )
        )
    return rows


def render_figure5(rows: Sequence[Figure5Row]) -> str:
    pe_counts = sorted(next(iter(rows)).iteration_time) if rows else []
    headers = ["benchmark"] + [f"norm@{p}" for p in pe_counts]
    body = []
    for row in rows:
        body.append([row.benchmark] + [row.normalized(p) for p in pe_counts])
    return format_table(
        headers,
        body,
        title="Figure 5: Para-CONV per-iteration execution time, normalized "
        f"to the SPARTA baseline on {max(pe_counts)} PEs",
    )
