"""Experiment harness: regenerate every table and figure of Section 4.

One module per paper artifact:

* :mod:`repro.eval.table1` -- total execution time, SPARTA vs Para-CONV
  on 16/32/64 PEs with IMP%;
* :mod:`repro.eval.table2` -- maximum retiming value per configuration;
* :mod:`repro.eval.figure5` -- per-iteration execution time, normalized to
  the 64-PE baseline;
* :mod:`repro.eval.figure6` -- intermediate results allocated to on-chip
  cache per configuration;
* :mod:`repro.eval.ablation` -- allocator design-choice ablation (A1);
* :mod:`repro.eval.validation` -- discrete-event vs analytic model (A2);
* :mod:`repro.eval.energy` -- energy accounting extension (A3).

Run everything from the command line::

    python -m repro.eval all
"""

from repro.eval.table1 import Table1Row, run_table1
from repro.eval.table2 import Table2Row, run_table2
from repro.eval.figure5 import Figure5Row, run_figure5
from repro.eval.figure6 import Figure6Row, run_figure6
from repro.eval.ablation import AblationRow, run_ablation
from repro.eval.architectures import ArchitectureRow, run_architectures
from repro.eval.validation import ValidationRow, run_validation
from repro.eval.energy import EnergyRow, run_energy
from repro.eval.reporting import format_table

__all__ = [
    "AblationRow",
    "ArchitectureRow",
    "EnergyRow",
    "Figure5Row",
    "Figure6Row",
    "Table1Row",
    "Table2Row",
    "ValidationRow",
    "format_table",
    "run_ablation",
    "run_architectures",
    "run_energy",
    "run_figure5",
    "run_figure6",
    "run_table1",
    "run_table2",
    "run_validation",
]
