"""Cross-architecture experiment (paper Section 5 future work, built).

Runs the unchanged Para-CONV pipeline and the SPARTA baseline on every
architecture preset. Expected shapes: Para-CONV wins on all of them; the
margin grows with the architecture's off-PE penalty (more stall time for
the baseline to lose) and shrinks on the RRAM-style design point where
in-memory compute makes the "off-chip" path cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.workloads import load_workload
from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.presets import ARCHITECTURES, architecture


@dataclass(frozen=True)
class ArchitectureRow:
    """One (architecture, workload) comparison."""

    architecture: str
    workload: str
    edram_factor: int
    cache_bytes_per_pe: int
    paraconv_time: int
    sparta_time: int
    max_retiming: int
    num_cached: int

    @property
    def improvement_percent(self) -> float:
        if self.sparta_time == 0:
            return 0.0
        return (self.sparta_time - self.paraconv_time) / self.sparta_time * 100.0


def run_architectures(
    workloads: Sequence[str] = ("flower", "shortest-path", "protein"),
    num_pes: int = 32,
    names: Optional[Sequence[str]] = None,
) -> List[ArchitectureRow]:
    rows: List[ArchitectureRow] = []
    selected = list(names) if names is not None else list(ARCHITECTURES)
    for arch_name in selected:
        config = architecture(arch_name, num_pes=num_pes)
        for workload in workloads:
            graph = load_workload(workload)
            para = ParaConv(config).run(graph)
            sparta = SpartaScheduler(config).run(graph)
            rows.append(
                ArchitectureRow(
                    architecture=arch_name,
                    workload=workload,
                    edram_factor=config.edram_latency_factor,
                    cache_bytes_per_pe=config.cache_bytes_per_pe,
                    paraconv_time=para.total_time(),
                    sparta_time=sparta.total_time(),
                    max_retiming=para.max_retiming,
                    num_cached=para.num_cached,
                )
            )
    return rows


def average_improvement_by_architecture(
    rows: Sequence[ArchitectureRow],
) -> Dict[str, float]:
    sums: Dict[str, List[float]] = {}
    for row in rows:
        sums.setdefault(row.architecture, []).append(row.improvement_percent)
    return {name: sum(v) / len(v) for name, v in sums.items()}


def render_architectures(rows: Sequence[ArchitectureRow]) -> str:
    headers = [
        "architecture", "workload", "eDRAM x", "cache/PE",
        "Para-CONV", "SPARTA", "IMP%", "R_max", "cached",
    ]
    body = [
        [
            r.architecture, r.workload, r.edram_factor, r.cache_bytes_per_pe,
            r.paraconv_time, r.sparta_time, r.improvement_percent,
            r.max_retiming, r.num_cached,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Cross-architecture study (paper future work): same pipeline, "
        "different PIM design points",
    )
