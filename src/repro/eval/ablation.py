"""Ablation A1: cache-allocation strategy comparison.

The paper's design choice under test is the dynamic program of Section 3.3.
This experiment swaps it for the alternatives in
:mod:`repro.core.allocation` -- density-greedy, random first-fit, all-eDRAM
(no cache), the capacity-oblivious oracle and the critical-path-aware
iterative extension (:mod:`repro.core.iterative`) -- and measures total
execution time, ``R_max`` and the captured profit on each benchmark.

Expected shape: DP >= greedy >= random >= all-eDRAM in profit, with the
oracle an unreachable upper bound whenever capacity binds; the DP's profit
advantage translates into shorter prologues and (on prologue-sensitive
workloads) shorter total times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.allocation import ALLOCATORS
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig

#: Strategies compared, in presentation order.
STRATEGIES = ("dp", "iterative", "greedy", "random", "all-edram", "oracle")


@dataclass(frozen=True)
class AblationCell:
    total_time: int
    max_retiming: int
    profit: int
    num_cached: int


@dataclass(frozen=True)
class AblationRow:
    benchmark: str
    cells: Dict[str, AblationCell]

    def regression_vs_dp(self, strategy: str) -> float:
        """Relative total-time increase of ``strategy`` over the DP."""
        dp_time = self.cells["dp"].total_time
        if dp_time == 0:
            return 0.0
        return (self.cells[strategy].total_time - dp_time) / dp_time


def run_ablation(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pes: int = 32,
    strategies: Sequence[str] = STRATEGIES,
) -> List[AblationRow]:
    config = (base_config or PimConfig()).with_pes(pes)
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    unknown = set(strategies) - set(ALLOCATORS)
    if unknown:
        raise ValueError(f"unknown strategies: {sorted(unknown)}")
    rows: List[AblationRow] = []
    for name in names:
        graph = load_workload(name)
        cells: Dict[str, AblationCell] = {}
        # Fixed full-array mapping so every strategy solves the same
        # allocation instance (the width optimizer would otherwise pick
        # different operating points per strategy). The allocator-
        # independent prefix — graph validation, kernel compaction, edge
        # analysis, zero-ΔR prepass — is compiled ONCE per benchmark and
        # forked per strategy, so the sweep only re-runs the passes that
        # actually differ (dp-allocate onward). Each strategy's plan is
        # bit-identical to a from-scratch ``run_at_width`` (the prefix
        # passes are deterministic and allocator-blind).
        shared = ParaConv(config, allocator_name=strategies[0]).analysis_context(
            graph, pes
        )
        for strategy in strategies:
            result = ParaConv(config, allocator_name=strategy).run_from_context(
                shared.fork()
            )
            cells[strategy] = AblationCell(
                total_time=result.total_time(),
                max_retiming=result.max_retiming,
                profit=result.allocation.total_delta_r,
                num_cached=result.num_cached,
            )
        rows.append(AblationRow(benchmark=name, cells=cells))
    return rows


def render_ablation(rows: Sequence[AblationRow]) -> str:
    strategies = list(next(iter(rows)).cells) if rows else []
    headers = ["benchmark"]
    for strategy in strategies:
        headers += [f"{strategy}:time", f"{strategy}:R", f"{strategy}:profit"]
    body = []
    for row in rows:
        line: List[object] = [row.benchmark]
        for strategy in strategies:
            cell = row.cells[strategy]
            line += [cell.total_time, cell.max_retiming, cell.profit]
        body.append(line)
    return format_table(
        headers, body,
        title="Ablation A1: cache-allocation strategies (32 PEs)",
    )
