"""Ablation A1: cache-allocation strategy comparison.

The paper's design choice under test is the dynamic program of Section 3.3.
This experiment swaps it for the alternatives in
:mod:`repro.core.allocation` -- density-greedy, random first-fit, all-eDRAM
(no cache), the capacity-oblivious oracle and the critical-path-aware
iterative extension (:mod:`repro.core.iterative`) -- and measures total
execution time, ``R_max`` and the captured profit on each benchmark.

Expected shape: DP >= greedy >= random >= all-eDRAM in profit, with the
oracle an unreachable upper bound whenever capacity binds; the DP's profit
advantage translates into shorter prologues and (on prologue-sensitive
workloads) shorter total times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.allocation import ALLOCATORS
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig

#: Strategies compared, in presentation order.
STRATEGIES = ("dp", "iterative", "greedy", "random", "all-edram", "oracle")


@dataclass(frozen=True)
class AblationCell:
    total_time: int
    max_retiming: int
    profit: int
    num_cached: int


@dataclass(frozen=True)
class AblationRow:
    benchmark: str
    cells: Dict[str, AblationCell]

    def regression_vs_dp(self, strategy: str) -> float:
        """Relative total-time increase of ``strategy`` over the DP."""
        dp_time = self.cells["dp"].total_time
        if dp_time == 0:
            return 0.0
        return (self.cells[strategy].total_time - dp_time) / dp_time


def run_ablation(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pes: int = 32,
    strategies: Sequence[str] = STRATEGIES,
) -> List[AblationRow]:
    config = (base_config or PimConfig()).with_pes(pes)
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    unknown = set(strategies) - set(ALLOCATORS)
    if unknown:
        raise ValueError(f"unknown strategies: {sorted(unknown)}")
    rows: List[AblationRow] = []
    for name in names:
        graph = load_workload(name)
        cells: Dict[str, AblationCell] = {}
        # Fixed full-array mapping so every strategy solves the same
        # allocation instance (the width optimizer would otherwise pick
        # different operating points per strategy). The allocator-
        # independent prefix — graph validation, kernel compaction, edge
        # analysis, zero-ΔR prepass — is compiled ONCE per benchmark and
        # forked per strategy, so the sweep only re-runs the passes that
        # actually differ (dp-allocate onward). Each strategy's plan is
        # bit-identical to a from-scratch ``run_at_width`` (the prefix
        # passes are deterministic and allocator-blind).
        shared = ParaConv(config, allocator_name=strategies[0]).analysis_context(
            graph, pes
        )
        for strategy in strategies:
            result = ParaConv(config, allocator_name=strategy).run_from_context(
                shared.fork()
            )
            cells[strategy] = AblationCell(
                total_time=result.total_time(),
                max_retiming=result.max_retiming,
                profit=result.allocation.total_delta_r,
                num_cached=result.num_cached,
            )
        rows.append(AblationRow(benchmark=name, cells=cells))
    return rows


@dataclass(frozen=True)
class SearchAblationRow:
    """Search quality vs compile budget on one (benchmark, variant) pair.

    ``budget_profits`` is the *greedy-seeded* annealer's profit per ladder
    budget — the curve that shows the walk climbing from a weak start
    toward the optimum. ``anneal_profit`` is the production (DP-seeded)
    allocator at the default budget, which by the anytime lower bound
    never sits below ``dp_profit``. ``oracle_profit`` is the brute-force
    optimum when the instance is enumerable, else None.
    """

    benchmark: str
    variant: str
    num_items: int
    capacity_slots: int
    dp_profit: int
    greedy_profit: int
    anneal_profit: int
    budget_profits: Dict[int, int]
    oracle_profit: Optional[int]


def run_search_ablation(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pes: int = 32,
    budgets: Optional[Sequence[int]] = None,
    seed: int = 0,
    oracle_limit: int = 16,
) -> List[SearchAblationRow]:
    """Quality-vs-budget sweep: benchmarks x machine variants x budgets."""
    from repro.core.allocation import dp_allocate, greedy_allocate
    from repro.core.search import AnnealAllocator
    from repro.verify.differential_search import (
        DEFAULT_BUDGET_LADDER,
        allocation_instance,
        machine_variants,
    )
    from repro.verify.oracle import OracleSizeError, exhaustive_allocate

    config = (base_config or PimConfig()).with_pes(pes)
    names = (
        list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    )
    ladder = sorted(set(budgets if budgets else DEFAULT_BUDGET_LADDER))
    rows: List[SearchAblationRow] = []
    for name in names:
        graph = load_workload(name)
        for label, machine in machine_variants(config):
            problem, _ = allocation_instance(graph, machine)
            try:
                oracle_profit = exhaustive_allocate(
                    problem, limit=oracle_limit
                ).total_delta_r
            except OracleSizeError:
                oracle_profit = None
            rows.append(
                SearchAblationRow(
                    benchmark=name,
                    variant=label,
                    num_items=problem.num_items,
                    capacity_slots=problem.capacity_slots,
                    dp_profit=dp_allocate(problem).total_delta_r,
                    greedy_profit=greedy_allocate(problem).total_delta_r,
                    anneal_profit=AnnealAllocator(seed=seed)(
                        problem
                    ).total_delta_r,
                    budget_profits={
                        budget: AnnealAllocator(
                            max_evals=budget, seed=seed, seed_from="greedy"
                        )(problem).total_delta_r
                        for budget in ladder
                    },
                    oracle_profit=oracle_profit,
                )
            )
    return rows


def render_search_ablation(rows: Sequence[SearchAblationRow]) -> str:
    """Render the search quality-vs-budget table.

    The ``b=N`` columns are the greedy-seeded climb; ``anneal`` is the
    production DP-seeded allocator; ``opt`` is the brute-force optimum
    (blank when the instance is too large to enumerate).
    """
    ladder = sorted(
        {budget for row in rows for budget in row.budget_profits}
    )
    headers = (
        ["benchmark", "variant", "n", "S", "dp", "greedy"]
        + [f"b={budget}" for budget in ladder]
        + ["anneal", "opt"]
    )
    body: List[List[object]] = []
    for row in rows:
        body.append(
            [row.benchmark, row.variant, row.num_items, row.capacity_slots,
             row.dp_profit, row.greedy_profit]
            + [row.budget_profits.get(budget, "") for budget in ladder]
            + [row.anneal_profit,
               row.oracle_profit if row.oracle_profit is not None else ""]
        )
    return format_table(
        headers, body,
        title=(
            "Ablation A2: search-allocator profit vs compile budget "
            "(greedy-seeded climb; healthy/degraded/partitioned machines)"
        ),
    )


def render_ablation(rows: Sequence[AblationRow]) -> str:
    strategies = list(next(iter(rows)).cells) if rows else []
    headers = ["benchmark"]
    for strategy in strategies:
        headers += [f"{strategy}:time", f"{strategy}:R", f"{strategy}:profit"]
    body = []
    for row in rows:
        line: List[object] = [row.benchmark]
        for strategy in strategies:
            cell = row.cells[strategy]
            line += [cell.total_time, cell.max_retiming, cell.profit]
        body.append(line)
    return format_table(
        headers, body,
        title="Ablation A1: cache-allocation strategies (32 PEs)",
    )
