"""Generate a markdown experiment report from live runs.

``write_report`` runs the requested experiments and emits one markdown
document in the EXPERIMENTS.md style -- useful for regenerating the
shipped record after model changes and for CI artifacts::

    from repro.eval.report_writer import write_report
    write_report("report.md", benchmarks=["cat", "flower"])
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.eval.ablation import render_ablation, run_ablation
from repro.eval.energy import render_energy, run_energy
from repro.eval.figure5 import render_figure5, run_figure5
from repro.eval.figure6 import render_figure6, run_figure6
from repro.eval.table1 import (
    overall_average_improvement,
    render_table1,
    run_table1,
)
from repro.eval.table2 import render_table2, run_table2
from repro.eval.validation import render_validation, run_validation
from repro.pim.config import PimConfig

#: Sections in presentation order: (title, runner producing a text block).
_SECTIONS = ("table1", "table2", "figure5", "figure6", "ablation",
             "validation", "energy")


def build_report(
    config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    sections: Sequence[str] = _SECTIONS,
) -> str:
    """Run the selected experiments and return the markdown report text."""
    machine = config or PimConfig()
    unknown = set(sections) - set(_SECTIONS)
    if unknown:
        raise ValueError(f"unknown report sections: {sorted(unknown)}")
    blocks: List[str] = [
        "# Para-CONV experiment report",
        "",
        f"Machine: {machine.describe()}; N = {machine.iterations} iterations.",
        "",
    ]

    def add(title: str, body: str) -> None:
        blocks.append(f"## {title}")
        blocks.append("")
        blocks.append("```")
        blocks.append(body)
        blocks.append("```")
        blocks.append("")

    if "table1" in sections:
        rows = run_table1(machine, benchmarks=benchmarks)
        add("Table 1 — total execution time", render_table1(rows))
        blocks.append(
            f"Overall average reduction: "
            f"{overall_average_improvement(rows):.2f}% (paper: 53.42%)."
        )
        blocks.append("")
    if "table2" in sections:
        add("Table 2 — maximum retiming value",
            render_table2(run_table2(machine, benchmarks=benchmarks)))
    if "figure5" in sections:
        add("Figure 5 — per-iteration execution time",
            render_figure5(run_figure5(machine, benchmarks=benchmarks)))
    if "figure6" in sections:
        add("Figure 6 — cached intermediate results",
            render_figure6(run_figure6(machine, benchmarks=benchmarks)))
    if "ablation" in sections:
        add("A1 — allocation-strategy ablation",
            render_ablation(run_ablation(machine, benchmarks=benchmarks)))
    if "validation" in sections:
        kwargs = {"benchmarks": benchmarks} if benchmarks else {}
        add("A2 — simulator validation",
            render_validation(run_validation(machine, **kwargs)))
    if "energy" in sections:
        add("A3 — data-movement energy",
            render_energy(run_energy(machine, benchmarks=benchmarks)))
    return "\n".join(blocks)


def write_report(
    path: Union[str, Path],
    config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    sections: Sequence[str] = _SECTIONS,
) -> None:
    """Write :func:`build_report` output to ``path``."""
    Path(path).write_text(build_report(config, benchmarks, sections))
