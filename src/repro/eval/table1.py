"""Table 1: total execution time of SPARTA and Para-CONV on 16/32/64 PEs.

For every benchmark the harness runs both schemes at each PE count and
reports total execution time (prologue + N iterations) plus the reduction
IMP(%) = (SPARTA - Para-CONV) / SPARTA * 100. The shape to reproduce:
Para-CONV wins everywhere, the average reduction is roughly half (the
paper reports 53.42% overall), and both schemes scale with PE count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.workloads import PAPER_BENCHMARKS, load_workload
from repro.core.baseline import SpartaScheduler
from repro.core.paraconv import ParaConv
from repro.eval.paper_data import PAPER_TABLE1, paper_reduction
from repro.eval.reporting import format_table
from repro.pim.config import PAPER_PE_SWEEP, PimConfig


@dataclass(frozen=True)
class Table1Cell:
    """One (benchmark, PE count) measurement."""

    pes: int
    sparta_time: int
    paraconv_time: int

    @property
    def improvement_percent(self) -> float:
        """IMP(%): reduction of total execution time over SPARTA."""
        if self.sparta_time == 0:
            return 0.0
        return (self.sparta_time - self.paraconv_time) / self.sparta_time * 100.0

    @property
    def speedup(self) -> float:
        if self.paraconv_time == 0:
            return 1.0
        return self.sparta_time / self.paraconv_time


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's row across the PE sweep."""

    benchmark: str
    num_vertices: int
    num_edges: int
    cells: Dict[int, Table1Cell]


def run_table1(
    base_config: Optional[PimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    pe_counts: Sequence[int] = PAPER_PE_SWEEP,
) -> List[Table1Row]:
    """Measure every benchmark at every PE count."""
    config = base_config or PimConfig()
    names = list(benchmarks) if benchmarks is not None else list(PAPER_BENCHMARKS)
    rows: List[Table1Row] = []
    for name in names:
        graph = load_workload(name)
        cells: Dict[int, Table1Cell] = {}
        for pes in pe_counts:
            machine = config.with_pes(pes)
            para = ParaConv(machine).run(graph)
            sparta = SpartaScheduler(machine).run(graph)
            cells[pes] = Table1Cell(
                pes=pes,
                sparta_time=sparta.total_time(),
                paraconv_time=para.total_time(),
            )
        rows.append(
            Table1Row(
                benchmark=name,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                cells=cells,
            )
        )
    return rows


def average_improvement(rows: Sequence[Table1Row], pes: int) -> float:
    """Mean IMP(%) over the benchmark set for one PE count."""
    values = [row.cells[pes].improvement_percent for row in rows]
    return sum(values) / len(values) if values else 0.0


def overall_average_improvement(rows: Sequence[Table1Row]) -> float:
    """Mean IMP(%) over every (benchmark, PE) cell -- the headline number."""
    values = [
        cell.improvement_percent for row in rows for cell in row.cells.values()
    ]
    return sum(values) / len(values) if values else 0.0


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Paper-style text rendering, with paper reductions alongside."""
    pe_counts = sorted(next(iter(rows)).cells) if rows else []
    headers = ["benchmark", "|V|", "|E|"]
    for pes in pe_counts:
        headers += [f"SPARTA@{pes}", f"Para@{pes}", f"IMP%@{pes}", f"paper%@{pes}"]
    body = []
    for row in rows:
        line: List[object] = [row.benchmark, row.num_vertices, row.num_edges]
        for pes in pe_counts:
            cell = row.cells[pes]
            paper = (
                paper_reduction(row.benchmark, pes)
                if row.benchmark in PAPER_TABLE1
                else float("nan")
            )
            line += [
                cell.sparta_time,
                cell.paraconv_time,
                cell.improvement_percent,
                paper,
            ]
        body.append(line)
    avg_line: List[object] = ["AVERAGE", "", ""]
    for pes in pe_counts:
        avg_line += ["", "", average_improvement(rows, pes), ""]
    body.append(avg_line)
    return format_table(
        headers,
        body,
        title="Table 1: total execution time, SPARTA vs Para-CONV "
        "(IMP% = reduction; paper% = reduction implied by the paper's "
        "published times)",
    )
