"""Validation A2: discrete-event execution vs the analytic model.

The tables report analytic schedule lengths; this experiment executes the
same schedules on the stateful machine model (vault queueing, cache
residency, PE timelines) and reports the realized/analytic slowdown plus
the observed lateness. A slowdown of 1.0 with bounded lateness means the
closed-form numbers are trustworthy on the modelled machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

#: A representative subset (the default keeps quick runs quick; with the
#: steady-state engine the full twelve are affordable too).
DEFAULT_BENCHMARKS = (
    "cat",
    "flower",
    "character-1",
    "image-compress",
    "shortest-path",
    "protein",
)


@dataclass(frozen=True)
class ValidationRow:
    benchmark: str
    pes: int
    analytic: int
    realized: int
    slowdown: float
    max_lateness: int
    cache_spills: int
    pe_utilization: float
    #: round at which the machine fingerprint converged (None: never, or
    #: full-unroll mode).
    converged_round: Optional[int] = None
    #: converged rounds the engine replayed analytically.
    rounds_fast_forwarded: int = 0


def run_validation(
    base_config: Optional[PimConfig] = None,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    pes: int = 32,
    iterations: int = 20,
    num_vaults: int = 32,
    sim_mode: Union[str, SimMode] = SimMode.STEADY_STATE,
) -> List[ValidationRow]:
    """Execute every benchmark's schedule and compare against the model.

    ``sim_mode`` selects the engine: ``steady`` (default) fast-forwards
    converged rounds, ``full`` is the event-by-event oracle. Aggregates
    -- and hence every column here -- are identical between the two.
    """
    config = (base_config or PimConfig()).with_pes(pes)
    executor = ScheduleExecutor(
        config, num_vaults=num_vaults, mode=SimMode.from_name(sim_mode)
    )
    rows: List[ValidationRow] = []
    for name in benchmarks:
        graph = load_workload(name)
        result = ParaConv(config).run(graph)
        # The row only needs aggregates; drop per-record data.
        trace = executor.execute(result, iterations=iterations, sink=NullSink())
        rows.append(
            ValidationRow(
                benchmark=name,
                pes=pes,
                analytic=trace.analytic_makespan,
                realized=trace.realized_makespan,
                slowdown=trace.slowdown,
                max_lateness=trace.max_lateness,
                cache_spills=trace.cache_spills,
                pe_utilization=trace.pe_utilization(),
                converged_round=trace.converged_round,
                rounds_fast_forwarded=trace.rounds_fast_forwarded,
            )
        )
    return rows


def render_validation(rows: Sequence[ValidationRow]) -> str:
    headers = [
        "benchmark", "PEs", "analytic", "realized", "slowdown",
        "max lateness", "cache spills", "PE util", "conv round", "ff rounds",
    ]
    body = [
        [
            r.benchmark, r.pes, r.analytic, r.realized, r.slowdown,
            r.max_lateness, r.cache_spills, r.pe_utilization,
            "-" if r.converged_round is None else r.converged_round,
            r.rounds_fast_forwarded,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Validation A2: discrete-event execution vs analytic model",
    )
