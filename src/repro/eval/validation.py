"""Validation A2: discrete-event execution vs the analytic model.

The tables report analytic schedule lengths; this experiment executes the
same schedules on the stateful machine model (vault queueing, cache
residency, PE timelines) and reports the realized/analytic slowdown plus
the observed lateness. A slowdown of 1.0 with bounded lateness means the
closed-form numbers are trustworthy on the modelled machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.eval.reporting import format_table
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor

#: A representative subset (full set is slow under the event executor).
DEFAULT_BENCHMARKS = (
    "cat",
    "flower",
    "character-1",
    "image-compress",
    "shortest-path",
    "protein",
)


@dataclass(frozen=True)
class ValidationRow:
    benchmark: str
    pes: int
    analytic: int
    realized: int
    slowdown: float
    max_lateness: int
    cache_spills: int
    pe_utilization: float


def run_validation(
    base_config: Optional[PimConfig] = None,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    pes: int = 32,
    iterations: int = 20,
    num_vaults: int = 32,
) -> List[ValidationRow]:
    config = (base_config or PimConfig()).with_pes(pes)
    executor = ScheduleExecutor(config, num_vaults=num_vaults)
    rows: List[ValidationRow] = []
    for name in benchmarks:
        graph = load_workload(name)
        result = ParaConv(config).run(graph)
        trace = executor.execute(result, iterations=iterations)
        rows.append(
            ValidationRow(
                benchmark=name,
                pes=pes,
                analytic=trace.analytic_makespan,
                realized=trace.realized_makespan,
                slowdown=trace.slowdown,
                max_lateness=trace.max_lateness,
                cache_spills=trace.cache_spills,
                pe_utilization=trace.pe_utilization(),
            )
        )
    return rows


def render_validation(rows: Sequence[ValidationRow]) -> str:
    headers = [
        "benchmark", "PEs", "analytic", "realized", "slowdown",
        "max lateness", "cache spills", "PE util",
    ]
    body = [
        [
            r.benchmark, r.pes, r.analytic, r.realized, r.slowdown,
            r.max_lateness, r.cache_spills, r.pe_utilization,
        ]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Validation A2: discrete-event execution vs analytic model",
    )
