"""Published numbers from the paper's evaluation (for comparison only).

Transcribed from Table 1 (total execution time of SPARTA [6] and Para-CONV
on 16/32/64 PEs) and Table 2 (maximum retiming value). The paper's absolute
time units are unspecified; comparisons use ratios and trends, never the
raw magnitudes.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: benchmark -> {pes: (sparta_time, paraconv_time, imp_percent)}
PAPER_TABLE1: Dict[str, Dict[int, Tuple[float, float, float]]] = {
    "cat": {16: (4.7, 4.0, 85.13), 32: (3.3, 1.5, 46.35), 64: (1.2, 0.6, 51.06)},
    "car": {16: (15.0, 5.4, 36.02), 32: (7.5, 3.3, 44.00), 64: (3.8, 0.6, 16.00)},
    "flower": {16: (18.7, 9.9, 52.97), 32: (9.4, 4.5, 48.16), 64: (4.7, 3.3, 70.63)},
    "character-1": {16: (35.1, 17.7, 50.48), 32: (17.6, 8.7, 49.63), 64: (8.8, 3.6, 41.08)},
    "character-2": {16: (45.2, 22.2, 49.18), 32: (22.6, 12.3, 54.50), 64: (11.3, 6.3, 55.84)},
    "image-compress": {16: (56.9, 27.0, 47.54), 32: (28.5, 13.2, 46.50), 64: (14.2, 5.1, 35.96)},
    "stock-predict": {16: (64.5, 31.6, 48.94), 32: (32.3, 18.0, 55.95), 64: (16.1, 7.5, 46.62)},
    "string-matching": {16: (79.0, 42.4, 53.68), 32: (39.5, 21.4, 54.07), 64: (19.8, 12.3, 62.45)},
    "shortest-path": {16: (140.3, 81.6, 58.18), 32: (70.2, 43.4, 61.82), 64: (35.1, 21.4, 61.02)},
    "speech-1": {16: (187.2, 108.6, 58.03), 32: (93.6, 54.0, 57.70), 64: (46.8, 29.9, 63.79)},
    "speech-2": {16: (274.8, 164.5, 59.88), 32: (137.4, 87.1, 63.40), 64: (68.7, 42.1, 61.32)},
    "protein": {16: (427.8, 243.5, 56.93), 32: (213.9, 126.6, 59.19), 64: (107.0, 63.3, 59.19)},
}

#: Paper-reported per-PE-count average IMP (%), Table 1 bottom row.
PAPER_TABLE1_AVERAGE_IMP: Dict[int, float] = {16: 54.75, 32: 53.44, 64: 52.08}

#: Headline claim: average reduction in total execution time.
PAPER_AVERAGE_REDUCTION_PERCENT = 53.42

#: benchmark -> {pes: max retiming value} plus the reported row average.
PAPER_TABLE2: Dict[str, Dict[int, float]] = {
    "cat": {16: 3, 32: 3, 64: 1, 0: 2.3},
    "car": {16: 2, 32: 2, 64: 1, 0: 1.7},
    "flower": {16: 3, 32: 2, 64: 2, 0: 2.3},
    "character-1": {16: 6, 32: 3, 64: 2, 0: 3.7},
    "character-2": {16: 7, 32: 5, 64: 3, 0: 5.0},
    "image-compress": {16: 9, 32: 6, 64: 3, 0: 6.0},
    "stock-predict": {16: 11, 32: 9, 64: 3, 0: 7.7},
    "string-matching": {16: 14, 32: 8, 64: 5, 0: 9.0},
    "shortest-path": {16: 24, 32: 13, 64: 8, 0: 15.0},
    "speech-1": {16: 34, 32: 17, 64: 9, 0: 20.0},
    "speech-2": {16: 49, 32: 27, 64: 16, 0: 30.7},
    "protein": {16: 69, 32: 29, 64: 15, 0: 37.7},
}


def paper_imp(benchmark: str, pes: int) -> float:
    """IMP(%) the paper reports for one cell of Table 1."""
    return PAPER_TABLE1[benchmark][pes][2]


def paper_reduction(benchmark: str, pes: int) -> float:
    """Reduction implied by the paper's raw times (1 - para/sparta) * 100.

    The printed IMP column is internally inconsistent with the raw times
    for some rows (e.g. cat/16: 4.7 -> 4.0 is a 14.9% reduction, printed
    85.13); this helper recomputes the reduction from the times, which is
    the quantity our reproduction compares against.
    """
    sparta, para, _ = PAPER_TABLE1[benchmark][pes]
    return (1.0 - para / sparta) * 100.0
