"""Pass-based compile pipeline for Para-CONV (tentpole of PR 3).

Decomposes the monolithic Section-3 pipeline into named, individually
timed passes over an explicit :class:`~repro.compiler.context.CompileContext`,
executed by a contract-checking
:class:`~repro.compiler.manager.PassManager`. ``ParaConv`` is now a thin
front-end over this package; the width search prunes candidates via
:func:`~repro.compiler.pipeline.width_lower_bound` and reports
:class:`~repro.compiler.pipeline.CompileStats` on every result.
"""

from repro.compiler.context import ARTIFACTS, CompileContext
from repro.compiler.errors import (
    ArtifactError,
    CompilerError,
    DuplicatePassError,
    MissingPassError,
    PassContractError,
    PassInvariantError,
    PassOrderError,
    PipelineConfigError,
)
from repro.compiler.manager import PassManager
from repro.compiler.passes import (
    AllocatePass,
    AnalyzeEdgesPass,
    CompactKernelPass,
    CompilerPass,
    EmitSchedulePass,
    LivenessReweightPass,
    SolveRetimingPass,
    ValidateGraphPass,
    ValidateSchedulePass,
    ZeroDrPrepassPass,
)
from repro.compiler.pipeline import (
    PASS_REGISTRY,
    CompileStats,
    PipelineConfig,
    build_pass,
    transfer_critical_path,
    width_lower_bound,
)

__all__ = [
    "ARTIFACTS",
    "AllocatePass",
    "AnalyzeEdgesPass",
    "ArtifactError",
    "CompactKernelPass",
    "CompileContext",
    "CompileStats",
    "CompilerError",
    "CompilerPass",
    "DuplicatePassError",
    "EmitSchedulePass",
    "LivenessReweightPass",
    "MissingPassError",
    "PASS_REGISTRY",
    "PassContractError",
    "PassInvariantError",
    "PassManager",
    "PassOrderError",
    "PipelineConfig",
    "PipelineConfigError",
    "SolveRetimingPass",
    "ValidateGraphPass",
    "ValidateSchedulePass",
    "ZeroDrPrepassPass",
    "build_pass",
    "transfer_critical_path",
    "width_lower_bound",
]
