"""The explicit state that flows through the compile pipeline.

:class:`CompileContext` replaces the local variables of the old monolithic
``ParaConv.run_at_width`` with a named, contract-checked artifact store:

* **inputs** (graph, machine, group width) are fixed at construction;
* **artifacts** (kernel, edge timings, allocation, retiming, schedule) are
  write-once key/value entries produced by passes — overwriting one
  requires the producing pass to declare it in its ``replaces`` contract,
  which is how the :class:`~repro.compiler.manager.PassManager` enforces
  immutability *between* passes;
* **shared** holds width-invariant precomputation (ASAP levels, total
  work) that the width search hoists out of the per-width loop and shares
  across forked contexts.

Forking (:meth:`CompileContext.fork_for_width`) is how one validated graph
feeds many candidate widths — or, in the ablation harness, how one edge
analysis feeds many allocators — without re-running upstream passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.compiler.errors import ArtifactError
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig

#: Canonical artifact names produced by the standard pipeline, in order of
#: first appearance. Kept as one tuple so tests and docs have a single
#: source of truth.
ARTIFACTS = (
    "graph-valid",
    "kernel",
    "timings",
    "problem",
    "resolved-allocator",
    "allocation",
    "retiming",
    "schedule",
    "schedule-valid",
)


@dataclass
class CompileContext:
    """One compilation's inputs, shared precomputation and artifacts.

    Args:
        graph: the workload under compilation.
        config: machine description.
        width: PE-group width this context compiles for; ``None`` for the
            width-invariant base context the search forks from.
    """

    graph: TaskGraph
    config: PimConfig
    width: Optional[int] = None
    #: width-invariant precomputation, *shared across forks* (same dict).
    shared: Dict[str, Any] = field(default_factory=dict)
    _artifacts: Dict[str, Any] = field(default_factory=dict)
    #: names overwritten via :meth:`replace` since construction/fork —
    #: inspected by the manager to enforce per-pass ``replaces`` contracts.
    _replaced_log: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # derived machine facts
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Concurrent PE groups at this context's width."""
        if self.width is None:
            raise ArtifactError("base context has no group width")
        return max(1, self.config.num_pes // self.width)

    @property
    def capacity_slots(self) -> int:
        """Per-group share of the aggregate cache (DP capacity ``S``)."""
        return self.config.total_cache_slots // self.num_groups

    # ------------------------------------------------------------------
    # artifact store (write-once unless explicitly replaced)
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self._artifacts

    def get(self, name: str) -> Any:
        try:
            return self._artifacts[name]
        except KeyError:
            raise ArtifactError(
                f"artifact {name!r} read before any pass produced it "
                f"(available: {sorted(self._artifacts)})"
            ) from None

    def put(self, name: str, value: Any) -> None:
        """Write-once insert; a second write is a pipeline bug."""
        if name in self._artifacts:
            raise ArtifactError(
                f"artifact {name!r} already exists; passes may only "
                f"overwrite artifacts declared in their 'replaces' contract "
                f"(use CompileContext.replace)"
            )
        self._artifacts[name] = value

    def replace(self, name: str, value: Any) -> None:
        """Deliberate overwrite, recorded for contract enforcement."""
        if name not in self._artifacts:
            raise ArtifactError(
                f"artifact {name!r} cannot be replaced before it exists"
            )
        self._artifacts[name] = value
        self._replaced_log.append(name)

    def artifact_names(self) -> List[str]:
        return sorted(self._artifacts)

    def drain_replaced_log(self) -> List[str]:
        """Return and clear the replacement log (manager bookkeeping)."""
        log, self._replaced_log = self._replaced_log, []
        return log

    # ------------------------------------------------------------------
    # forking
    # ------------------------------------------------------------------
    def fork_for_width(self, width: int) -> "CompileContext":
        """Child context for one candidate width.

        Shallow-copies the artifact map (upstream artifacts are treated as
        immutable by contract) and *shares* the width-invariant ``shared``
        dict, so per-graph precomputation is paid once per search.
        """
        return CompileContext(
            graph=self.graph,
            config=self.config,
            width=width,
            shared=self.shared,
            _artifacts=dict(self._artifacts),
        )

    def fork(self) -> "CompileContext":
        """Same-width child (e.g. one per allocator in the ablation)."""
        if self.width is None:
            raise ArtifactError("cannot same-width fork a base context")
        return self.fork_for_width(self.width)

    # ------------------------------------------------------------------
    # shared precomputation helpers
    # ------------------------------------------------------------------
    def shared_total_work(self) -> int:
        if "total_work" not in self.shared:
            self.shared["total_work"] = self.graph.total_work()
        return self.shared["total_work"]

    def shared_max_execution_time(self) -> int:
        if "max_execution_time" not in self.shared:
            self.shared["max_execution_time"] = self.graph.max_execution_time()
        return self.shared["max_execution_time"]

    def shared_asap_levels(self) -> Dict[int, int]:
        if "asap_levels" not in self.shared:
            from repro.graph.analysis import asap_levels

            self.shared["asap_levels"] = asap_levels(self.graph)
        return self.shared["asap_levels"]
