"""The named passes that make up the Para-CONV compile pipeline.

Each pass wraps one stage of the paper's Section-3 construction (or one of
this reproduction's extensions) behind the uniform :class:`CompilerPass`
contract: declared ``requires``/``produces``/``replaces`` artifact sets and
a ``run(ctx)`` body that only talks to the
:class:`~repro.compiler.context.CompileContext`. The
:class:`~repro.compiler.manager.PassManager` statically validates the
contracts, times every ``run`` and fires per-pass invariant hooks.

========================= ============================================
pass                      paper stage
========================= ============================================
``validate-graph``        structural DAG preconditions (width-invariant)
``compact-kernel``        Figure 3(b) compacted steady-state kernel
``analyze-edges``         Section 3.2 extra-data-movement analysis
``zero-dr-prepass``       Section 3.2: ``ΔR = 0`` results go to eDRAM
``dp-allocate``           Section 3.3 ``B[S, m]`` (or an ablation
                          allocator resolved from the registry)
``liveness-reweight``     liveness-corrected re-allocation (extension)
``solve-retiming``        Section 2.3/3.2 minimal legal vertex retiming
``emit-schedule``         periodic schedule + placements + transfers
``validate-schedule``     full semantic validation of the emitted plan
========================= ============================================
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

from repro.compiler.context import CompileContext
from repro.core.allocation import (
    AllocationProblem,
    AllocationResult,
    resolve_allocator,
)
from repro.core.retiming import analyze_edges, solve_retiming
from repro.core.schedule import (
    PeriodicSchedule,
    ScheduleError,
    validate_kernel,
    validate_periodic_schedule,
)
from repro.core.scheduler import compact_kernel_schedule

Allocator = Callable[[AllocationProblem], AllocationResult]


class CompilerPass:
    """One named, contract-checked stage of the compile pipeline.

    Attributes:
        name: unique pass name (the observability key).
        requires: artifact names that must exist before the pass runs.
        produces: artifact names the pass must create (write-once).
        replaces: artifact names the pass is allowed to overwrite.
    """

    name: str = "<unnamed>"
    requires: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    replaces: Tuple[str, ...] = ()

    def run(self, ctx: CompileContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ValidateGraphPass(CompilerPass):
    """Structural preconditions; width-invariant, hoisted by the search.

    Also primes the shared width-invariant precomputation (ASAP levels,
    total work, max execution time) so per-width pipeline runs share it.
    """

    name = "validate-graph"
    requires = ()
    produces = ("graph-valid",)

    def run(self, ctx: CompileContext) -> None:
        ctx.graph.validate()
        # Prime the width-invariant precomputation once per search.
        ctx.shared_total_work()
        ctx.shared_max_execution_time()
        ctx.shared_asap_levels()
        ctx.put("graph-valid", True)


class CompactKernelPass(CompilerPass):
    """Paper step 2: the compacted steady-state kernel (Figure 3(b))."""

    name = "compact-kernel"
    requires = ("graph-valid",)
    produces = ("kernel",)

    def __init__(self, order: str = "topological", validate: bool = True):
        self.order = order
        self.validate = validate

    def run(self, ctx: CompileContext) -> None:
        width = ctx.width
        if width is None:
            raise ScheduleError("compact-kernel needs a group width")
        if not 1 <= width <= ctx.config.num_pes:
            raise ScheduleError(
                f"group width {width} outside [1, {ctx.config.num_pes}]"
            )
        levels = (
            ctx.shared_asap_levels() if self.order == "topological" else None
        )
        kernel = compact_kernel_schedule(
            ctx.graph, width, order=self.order, levels=levels
        )
        if self.validate:
            validate_kernel(ctx.graph, kernel, width)
        ctx.put("kernel", kernel)


class AnalyzeEdgesPass(CompilerPass):
    """Paper step 3: per-edge retiming analysis (Section 3.2)."""

    name = "analyze-edges"
    requires = ("kernel",)
    produces = ("timings",)

    def run(self, ctx: CompileContext) -> None:
        ctx.put(
            "timings",
            analyze_edges(ctx.graph, ctx.get("kernel"), ctx.config),
        )


class ZeroDrPrepassPass(CompilerPass):
    """Paper step 4: placement-indifferent results (``ΔR = 0``) to eDRAM.

    Builds the deadline-sorted :class:`AllocationProblem`; the prepass is
    the ``indifferent`` partition inside
    :meth:`AllocationProblem.from_timings`.
    """

    name = "zero-dr-prepass"
    requires = ("timings",)
    produces = ("problem",)

    def run(self, ctx: CompileContext) -> None:
        ctx.put(
            "problem",
            AllocationProblem.from_timings(
                ctx.get("timings"), ctx.capacity_slots
            ),
        )


class AllocatePass(CompilerPass):
    """Paper step 5: the ``B[S, m]`` dynamic program (or a swapped-in
    ablation allocator resolved through the registry/factory protocol)."""

    name = "dp-allocate"
    requires = ("problem", "timings")
    produces = ("resolved-allocator", "allocation")

    def __init__(self, allocator: Union[Allocator, object]):
        self.allocator = allocator

    def run(self, ctx: CompileContext) -> None:
        allocator = resolve_allocator(
            self.allocator, ctx.graph, ctx.get("timings")
        )
        ctx.put("resolved-allocator", allocator)
        ctx.put("allocation", allocator(ctx.get("problem")))


class LivenessReweightPass(CompilerPass):
    """Liveness-corrected second allocation pass (extension).

    Solves a provisional retiming for the first-pass allocation, derives
    each edge's *realized* live-instance count ``R(i) - R(j) + 1`` and
    re-runs the allocator on the liveness-weighted problem, exactly as the
    monolithic ``ParaConv(liveness_aware=True)`` did.
    """

    name = "liveness-reweight"
    requires = ("allocation", "timings", "resolved-allocator")
    produces = ()
    replaces = ("problem", "allocation")

    def run(self, ctx: CompileContext) -> None:
        from repro.core.liveness import liveness_weighted_problem

        timings = ctx.get("timings")
        allocation = ctx.get("allocation")
        deltas = {
            key: timing.delta_for(allocation.placements[key])
            for key, timing in timings.items()
        }
        provisional = solve_retiming(ctx.graph, deltas)
        realized = {
            edge.key: provisional.vertex_retiming[edge.producer]
            - provisional.vertex_retiming[edge.consumer]
            for edge in ctx.graph.edges()
        }
        problem = liveness_weighted_problem(
            timings, ctx.capacity_slots, realized
        )
        ctx.replace("problem", problem)
        ctx.replace("allocation", ctx.get("resolved-allocator")(problem))


class SolveRetimingPass(CompilerPass):
    """Paper step 6: propagate per-edge requirements into the minimal
    legal vertex retiming (``R_max``, prologue)."""

    name = "solve-retiming"
    requires = ("allocation", "timings")
    produces = ("retiming",)

    def run(self, ctx: CompileContext) -> None:
        timings = ctx.get("timings")
        allocation = ctx.get("allocation")
        deltas = {
            key: timing.delta_for(allocation.placements[key])
            for key, timing in timings.items()
        }
        ctx.put("retiming", solve_retiming(ctx.graph, deltas))


class EmitSchedulePass(CompilerPass):
    """Assemble the deployable periodic schedule from the artifacts."""

    name = "emit-schedule"
    requires = ("kernel", "timings", "allocation", "retiming")
    produces = ("schedule",)

    def run(self, ctx: CompileContext) -> None:
        timings = ctx.get("timings")
        allocation = ctx.get("allocation")
        solution = ctx.get("retiming")
        transfer_times = {
            key: timing.transfer_for(allocation.placements[key])
            for key, timing in timings.items()
        }
        ctx.put(
            "schedule",
            PeriodicSchedule(
                graph=ctx.graph,
                kernel=ctx.get("kernel"),
                retiming=solution.vertex_retiming,
                edge_retiming=solution.edge_retiming,
                placements=dict(allocation.placements),
                transfer_times=transfer_times,
            ),
        )


class ValidateSchedulePass(CompilerPass):
    """Full semantic validation of the emitted schedule."""

    name = "validate-schedule"
    requires = ("schedule",)
    produces = ("schedule-valid",)

    def run(self, ctx: CompileContext) -> None:
        validate_periodic_schedule(ctx.get("schedule"))
        ctx.put("schedule-valid", True)
