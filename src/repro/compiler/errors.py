"""Typed errors of the pass-based compile pipeline.

Every failure mode of :mod:`repro.compiler` gets its own exception class so
callers (and tests) can assert on the *kind* of pipeline misconfiguration
rather than matching message strings. All of them derive from
:class:`CompilerError`, which itself derives from
:class:`~repro.core.schedule.ScheduleError` so existing ``except
ScheduleError`` guards around the planning pipeline keep working.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.schedule import ScheduleError


class CompilerError(ScheduleError):
    """Base class for every pass-pipeline failure."""


class ArtifactError(CompilerError):
    """A context artifact was read before it existed or illegally mutated.

    Artifacts are write-once between passes: a pass may only overwrite an
    artifact it explicitly declared in its ``replaces`` contract. Anything
    else is a pipeline bug and fails loudly here.
    """


class PipelineConfigError(CompilerError):
    """Base class for statically-detectable pipeline misconfigurations."""


class MissingPassError(PipelineConfigError):
    """A pass requires an artifact that *no* pass in the pipeline produces."""

    def __init__(self, pass_name: str, artifact: str):
        self.pass_name = pass_name
        self.artifact = artifact
        super().__init__(
            f"pass {pass_name!r} requires artifact {artifact!r}, which no "
            f"pass in the pipeline produces and which is not an initial "
            f"artifact — a producing pass is missing"
        )


class DuplicatePassError(PipelineConfigError):
    """Two passes share a name, or two passes produce the same artifact."""

    def __init__(self, message: str):
        super().__init__(message)


class PassOrderError(PipelineConfigError):
    """A required artifact is produced, but only by a *later* pass."""

    def __init__(self, pass_name: str, artifact: str, producer: str):
        self.pass_name = pass_name
        self.artifact = artifact
        self.producer = producer
        super().__init__(
            f"pass {pass_name!r} requires artifact {artifact!r}, which is "
            f"only produced by the later pass {producer!r} — the pipeline "
            f"is misordered"
        )


class PassContractError(CompilerError):
    """A pass's runtime behavior diverged from its declared contract.

    Raised when a pass finishes without producing everything it declared,
    produces artifacts it never declared, or replaces artifacts outside its
    ``replaces`` set.
    """

    def __init__(self, pass_name: str, message: str):
        self.pass_name = pass_name
        super().__init__(f"pass {pass_name!r} broke its contract: {message}")


class PassInvariantError(CompilerError):
    """An invariant hook rejected the pipeline state *after* a named pass.

    This is the per-pass observability hook for :mod:`repro.verify`: when a
    registered invariant check fails, the error names the pass that
    introduced the violation instead of surfacing a generic validation
    failure at the end of the pipeline.
    """

    def __init__(
        self,
        pass_name: str,
        message: str,
        violations: Optional[Sequence[object]] = None,
    ):
        self.pass_name = pass_name
        self.violations = list(violations) if violations is not None else []
        super().__init__(
            f"invariant violated after pass {pass_name!r}: {message}"
        )
