"""Contract-checked, instrumented execution of compile passes.

:class:`PassManager` is the engine under ``ParaConv``: it statically
validates a pass pipeline (unique names, every requirement produced by an
*earlier* pass, no double production), then executes it over a
:class:`~repro.compiler.context.CompileContext` while

* timing every pass (feeding :class:`~repro.compiler.pipeline.CompileStats`
  and ultimately ``--explain``),
* enforcing each pass's artifact contract at runtime (a pass that writes
  an undeclared artifact, skips a declared one, or replaces outside its
  ``replaces`` set fails with :class:`PassContractError`),
* firing registered per-pass invariant hooks — the :mod:`repro.verify`
  integration point that lets a violation name the pass that introduced
  it (:class:`PassInvariantError`).
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.compiler.context import CompileContext
from repro.compiler.errors import (
    DuplicatePassError,
    MissingPassError,
    PassContractError,
    PassInvariantError,
    PassOrderError,
)
from repro.compiler.passes import CompilerPass

#: An invariant hook: inspects the context after its pass ran and raises
#: (any exception) on violation. The manager wraps the failure into a
#: :class:`PassInvariantError` naming the pass.
InvariantHook = Callable[[CompileContext], None]


class PassManager:
    """Validated, observable pipeline of :class:`CompilerPass` stages.

    Args:
        passes: the pipeline, in execution order.
        initial_artifacts: artifact names guaranteed present in every
            context handed to :meth:`run` (e.g. ``graph-valid`` when the
            width search hoists graph validation out of the loop). Used by
            the static order validation.
        hooks: mapping of pass name to invariant hooks fired right after
            that pass completes (see :mod:`repro.verify.hooks`). Hook
            failures raise :class:`PassInvariantError` naming the pass.
    """

    def __init__(
        self,
        passes: Sequence[CompilerPass],
        initial_artifacts: Iterable[str] = (),
        hooks: Optional[Mapping[str, Sequence[InvariantHook]]] = None,
    ):
        self.passes: List[CompilerPass] = list(passes)
        self.initial_artifacts: FrozenSet[str] = frozenset(initial_artifacts)
        self.hooks: Dict[str, List[InvariantHook]] = {
            name: list(fns) for name, fns in (hooks or {}).items()
        }
        self._validate_pipeline()

    # ------------------------------------------------------------------
    # static validation
    # ------------------------------------------------------------------
    def _validate_pipeline(self) -> None:
        seen_names: Dict[str, int] = {}
        for index, pipeline_pass in enumerate(self.passes):
            name = pipeline_pass.name
            if name in seen_names:
                raise DuplicatePassError(
                    f"duplicate pass name {name!r} at positions "
                    f"{seen_names[name]} and {index}"
                )
            seen_names[name] = index

        # Who produces what, and where.
        producer_of: Dict[str, str] = {}
        for pipeline_pass in self.passes:
            for artifact in pipeline_pass.produces:
                if artifact in producer_of:
                    raise DuplicatePassError(
                        f"artifact {artifact!r} produced by both "
                        f"{producer_of[artifact]!r} and {pipeline_pass.name!r}"
                    )
                if artifact in self.initial_artifacts:
                    raise DuplicatePassError(
                        f"artifact {artifact!r} produced by "
                        f"{pipeline_pass.name!r} is already an initial "
                        f"artifact"
                    )
                producer_of[artifact] = pipeline_pass.name

        # Ordering: every requirement satisfied by an earlier producer.
        available = set(self.initial_artifacts)
        for pipeline_pass in self.passes:
            for artifact in pipeline_pass.requires:
                if artifact in available:
                    continue
                if artifact in producer_of:
                    raise PassOrderError(
                        pipeline_pass.name, artifact, producer_of[artifact]
                    )
                raise MissingPassError(pipeline_pass.name, artifact)
            for artifact in pipeline_pass.replaces:
                if artifact not in available:
                    raise PassOrderError(
                        pipeline_pass.name,
                        artifact,
                        producer_of.get(artifact, "<nothing>"),
                    )
            available.update(pipeline_pass.produces)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def describe(self) -> str:
        """Multi-line pipeline description (used by ``--explain``)."""
        lines = []
        for pipeline_pass in self.passes:
            requires = ", ".join(pipeline_pass.requires) or "-"
            produces = ", ".join(pipeline_pass.produces) or "-"
            extra = (
                f" (replaces {', '.join(pipeline_pass.replaces)})"
                if pipeline_pass.replaces
                else ""
            )
            lines.append(
                f"{pipeline_pass.name:<18} {requires} -> {produces}{extra}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, ctx: CompileContext, stats=None) -> CompileContext:
        """Execute every pass over ``ctx``, in order.

        Args:
            ctx: the context to compile; must already hold
                ``initial_artifacts``.
            stats: optional :class:`~repro.compiler.pipeline.CompileStats`
                accumulator receiving per-pass wall times.
        """
        missing = self.initial_artifacts - set(ctx.artifact_names())
        if missing:
            raise PassContractError(
                self.passes[0].name if self.passes else "<empty>",
                f"context is missing declared initial artifacts "
                f"{sorted(missing)}",
            )
        for pipeline_pass in self.passes:
            self._run_one(pipeline_pass, ctx, stats)
        return ctx

    def _run_one(self, pipeline_pass: CompilerPass, ctx, stats) -> None:
        name = pipeline_pass.name
        before = set(ctx.artifact_names())
        ctx.drain_replaced_log()
        started = time.perf_counter()
        pipeline_pass.run(ctx)
        elapsed = time.perf_counter() - started

        # Runtime contract enforcement.
        added = set(ctx.artifact_names()) - before
        declared = set(pipeline_pass.produces)
        if added != declared:
            unexpected = sorted(added - declared)
            absent = sorted(declared - added)
            detail = []
            if unexpected:
                detail.append(f"produced undeclared artifacts {unexpected}")
            if absent:
                detail.append(f"did not produce declared artifacts {absent}")
            raise PassContractError(name, "; ".join(detail))
        replaced = set(ctx.drain_replaced_log())
        undeclared = replaced - set(pipeline_pass.replaces)
        if undeclared:
            raise PassContractError(
                name,
                f"replaced artifacts outside its contract: "
                f"{sorted(undeclared)}",
            )

        if stats is not None:
            stats.record_pass(name, elapsed)

        for hook in self.hooks.get(name, ()):
            try:
                hook(ctx)
            except PassInvariantError:
                raise
            except Exception as exc:
                raise PassInvariantError(name, str(exc)) from exc
