"""Pipeline configuration, registry and the instrumented width search.

This module is the declarative face of :mod:`repro.compiler`: a
:class:`PipelineConfig` turns the old ``ParaConv`` constructor branching
(allocator choice, kernel packing order, liveness mode, validation) into
*pipeline configuration* — an ordered list of registered passes — and
:class:`CompileStats` is the per-compilation observability record
(per-pass wall time, widths explored/pruned) that ``--explain``, the
serving runtime and the plan cache all surface.

The width search itself lives in :meth:`repro.core.paraconv.ParaConv.run`;
the pruning rule it applies is :func:`width_lower_bound`, the max of two
admissible lower bounds on ``total_time = (R_max + ceil(N/J)) * p``:

* the *load-balance* term: the prologue is non-negative and the realized
  period can never beat the load-balance bound, so
  ``total_time >= ceil(N / J) * load_balance_bound(graph, width)``;
* the *transfer-critical-path* term: for any dependency path, summing the
  schedule's data-arrival inequality ``finish(i) + c_ij <= delta*p +
  start(j)`` and telescoping ``Σ delta <= R_max`` gives ``(R_max + 1) * p
  >= Σ (e_v + c_edge)`` — one pipelined iteration cannot beat its own
  dependence chain *including transfers* — hence ``total_time >=
  cp_transfer + (ceil(N/J) - 1) * load_balance_bound`` where
  ``cp_transfer`` prices every edge at its cheapest conceivable transfer
  ``min(period_floor, cache_transfer)`` (see
  :func:`transfer_critical_path`).

Any candidate whose bound already meets or exceeds the incumbent best
total time cannot win (ties prefer wider groups, and candidates are
enumerated widest-first), so the entire per-width pipeline run is
skipped. The second term is what makes pruning effective in the
latency-oriented regime (small ``N``): narrow groups stretch the clamp on
every transfer, so their dependence chains alone already exceed a wide
incumbent's total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.compiler.errors import PipelineConfigError
from repro.compiler.manager import PassManager
from repro.compiler.passes import (
    AllocatePass,
    AnalyzeEdgesPass,
    CompactKernelPass,
    CompilerPass,
    EmitSchedulePass,
    LivenessReweightPass,
    SolveRetimingPass,
    ValidateGraphPass,
    ValidateSchedulePass,
    ZeroDrPrepassPass,
)
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig

#: Registered pass constructors by canonical name. Custom pipelines (tests,
#: experiments) assemble from here; the standard pipeline is built by
#: :meth:`PipelineConfig.build_passes`.
PASS_REGISTRY: Dict[str, Callable[..., CompilerPass]] = {
    "validate-graph": ValidateGraphPass,
    "compact-kernel": CompactKernelPass,
    "analyze-edges": AnalyzeEdgesPass,
    "zero-dr-prepass": ZeroDrPrepassPass,
    "dp-allocate": AllocatePass,
    "liveness-reweight": LivenessReweightPass,
    "solve-retiming": SolveRetimingPass,
    "emit-schedule": EmitSchedulePass,
    "validate-schedule": ValidateSchedulePass,
}


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
@dataclass
class CompileStats:
    """Per-compilation breakdown: where the compile time went.

    Attributes:
        pass_seconds: cumulative wall seconds per pass name (summed over
            every width the search explored).
        pass_runs: number of times each pass executed.
        widths_explored: candidate widths fully compiled, in search order.
        widths_pruned: candidate widths skipped by the lower-bound rule.
        per_width_seconds: wall seconds spent compiling each explored width.
        best_width: the winning group width (set by the search).
        pruning_enabled: whether the lower-bound pruning was active.
        total_seconds: end-to-end wall time of the compile entry point.
    """

    pass_seconds: Dict[str, float] = field(default_factory=dict)
    pass_runs: Dict[str, int] = field(default_factory=dict)
    widths_explored: List[int] = field(default_factory=list)
    widths_pruned: List[int] = field(default_factory=list)
    per_width_seconds: Dict[int, float] = field(default_factory=dict)
    best_width: Optional[int] = None
    pruning_enabled: bool = True
    total_seconds: float = 0.0
    #: search-allocator observability of the *winning* plan (None for
    #: non-search allocators): the :class:`repro.core.search.SearchStats`
    #: dict — budget, evals used, seed vs best profit, anytime trajectory.
    search: Optional[Dict[str, Any]] = None

    # -- recording ------------------------------------------------------
    def record_pass(self, name: str, seconds: float) -> None:
        self.pass_seconds[name] = self.pass_seconds.get(name, 0.0) + seconds
        self.pass_runs[name] = self.pass_runs.get(name, 0) + 1

    def record_width(self, width: int, seconds: float) -> None:
        self.widths_explored.append(width)
        self.per_width_seconds[width] = seconds

    def record_pruned(self, width: int) -> None:
        self.widths_pruned.append(width)

    def record_search(self, search_stats: Any) -> None:
        """Attach the winning plan's search stats (no-op for None)."""
        self.search = (
            search_stats.as_dict() if search_stats is not None else None
        )

    # -- interrogation --------------------------------------------------
    @property
    def num_explored(self) -> int:
        return len(self.widths_explored)

    @property
    def num_pruned(self) -> int:
        return len(self.widths_pruned)

    @property
    def pass_seconds_total(self) -> float:
        return sum(self.pass_seconds.values())

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump with deterministic key order."""
        return {
            "pass_seconds": {
                name: self.pass_seconds[name]
                for name in sorted(self.pass_seconds)
            },
            "pass_runs": {
                name: self.pass_runs[name] for name in sorted(self.pass_runs)
            },
            "widths_explored": list(self.widths_explored),
            "widths_pruned": list(self.widths_pruned),
            "per_width_seconds": {
                str(width): self.per_width_seconds[width]
                for width in sorted(self.per_width_seconds)
            },
            "best_width": self.best_width,
            "pruning_enabled": self.pruning_enabled,
            "total_seconds": self.total_seconds,
            "search": dict(self.search) if self.search is not None else None,
        }

    def explain(self) -> str:
        """Human-readable per-pass breakdown (the ``--explain`` body)."""
        lines = [
            f"{'pass':<20} {'runs':>5} {'total ms':>10} {'mean ms':>9}"
        ]
        for name in self.pass_seconds:  # insertion = execution order
            runs = self.pass_runs[name]
            total_ms = self.pass_seconds[name] * 1e3
            mean_ms = total_ms / runs if runs else 0.0
            lines.append(
                f"{name:<20} {runs:>5} {total_ms:>10.3f} {mean_ms:>9.3f}"
            )
        explored = ", ".join(str(w) for w in self.widths_explored) or "-"
        pruned = ", ".join(str(w) for w in self.widths_pruned) or "-"
        lines.append(
            f"widths explored     : {explored} "
            f"({self.num_explored} compiled)"
        )
        lines.append(
            f"widths pruned       : {pruned} ({self.num_pruned} skipped, "
            f"pruning {'on' if self.pruning_enabled else 'off'})"
        )
        if self.best_width is not None:
            lines.append(f"best width          : {self.best_width}")
        if self.search is not None:
            winner = self.search.get("winner")
            method = self.search.get("method", "anneal") + (
                f" (winner: {winner})" if winner else ""
            )
            lines.append(
                f"search allocator    : {method}, "
                f"{self.search.get('evals_used', 0)}/"
                f"{self.search.get('budget', 0)} evals "
                f"(seed {self.search.get('seed', 0)})"
            )
            lines.append(
                f"search profit       : seed "
                f"{self.search.get('seed_profit', 0)} "
                f"[{self.search.get('seed_method', 'dp')}] -> best "
                f"{self.search.get('best_profit', 0)} at eval "
                f"{self.search.get('best_eval', 0)} "
                f"({self.search.get('moves_accepted', 0)} accepted / "
                f"{self.search.get('moves_rejected', 0)} rejected moves)"
            )
        lines.append(
            f"compile wall time   : {self.total_seconds * 1e3:.3f} ms "
            f"({self.pass_seconds_total * 1e3:.3f} ms inside passes)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class PipelineConfig:
    """Declarative pipeline configuration (replaces constructor branching).

    Attributes:
        allocator: a plain allocator callable, an
            :class:`~repro.core.allocation.AllocatorFactory`, or a factory
            class — resolved per run by the ``dp-allocate`` pass.
        kernel_order: kernel packing order (``topological`` or ``lpt``).
        liveness_aware: insert the ``liveness-reweight`` pass.
        validate: run kernel/schedule validation passes.
    """

    allocator: Union[Callable, object]
    kernel_order: str = "topological"
    liveness_aware: bool = False
    validate: bool = True

    def build_width_passes(self) -> List[CompilerPass]:
        """The per-width pipeline (everything after ``validate-graph``)."""
        passes: List[CompilerPass] = [
            CompactKernelPass(order=self.kernel_order, validate=self.validate),
            AnalyzeEdgesPass(),
            ZeroDrPrepassPass(),
            AllocatePass(self.allocator),
        ]
        if self.liveness_aware:
            passes.append(LivenessReweightPass())
        passes.append(SolveRetimingPass())
        passes.append(EmitSchedulePass())
        if self.validate:
            passes.append(ValidateSchedulePass())
        return passes

    def build_passes(self) -> List[CompilerPass]:
        """The full pipeline, ``validate-graph`` included."""
        return [ValidateGraphPass(), *self.build_width_passes()]

    def build_manager(
        self,
        full: bool = True,
        hooks=None,
    ) -> PassManager:
        """A validated :class:`PassManager` for this configuration.

        Args:
            full: include ``validate-graph``; when false, the manager
                expects contexts forked from a validated base (the width
                search's hoisted mode) and declares ``graph-valid`` as an
                initial artifact.
            hooks: optional per-pass invariant hooks (see
                :mod:`repro.verify.hooks`).
        """
        if full:
            return PassManager(self.build_passes(), hooks=hooks)
        return PassManager(
            self.build_width_passes(),
            initial_artifacts=("graph-valid",),
            hooks=hooks,
        )


def build_pass(name: str, **kwargs) -> CompilerPass:
    """Instantiate a registered pass by name (typed error on unknowns)."""
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise PipelineConfigError(
            f"unknown pass {name!r}; registered: {known}"
        ) from None
    return factory(**kwargs)


# ----------------------------------------------------------------------
# width-search pruning
# ----------------------------------------------------------------------
def transfer_critical_path(
    graph: TaskGraph,
    config: PimConfig,
    period_floor: int,
) -> int:
    """Longest dependency chain priced with best-case transfers.

    Classic DAG longest-path DP where a vertex contributes its execution
    time and an edge contributes ``min(period_floor, cache_transfer)`` —
    the cheapest transfer the schedule could conceivably realize for that
    intermediate result, since the emitted transfer time is
    ``min(p, t_placement)`` with ``p >= period_floor`` and ``t_placement
    >= t_cache`` (cache is the fast tier). The returned value therefore
    lower-bounds ``(R_max + 1) * p`` for *any* legal schedule whose
    period is at least ``period_floor``: summing the data-arrival
    inequality ``finish(i) + c_ij <= delta * p + start(j)`` along the
    path and telescoping ``sum(delta) <= R_max`` leaves ``(R_max + 1) *
    p >= sum(e_v + c_edge)``.

    Args:
        graph: validated task graph.
        config: machine description (prices the cache transfers).
        period_floor: an admissible lower bound on the schedule period at
            the candidate width (the load-balance bound).

    Returns:
        The maximum over all dependency paths of
        ``sum(execution_time) + sum(min(period_floor, cache_transfer))``.
    """
    longest: Dict[int, int] = {}
    for op_id in graph.topological_order():
        exec_time = graph.operation(op_id).execution_time
        incoming = 0
        for edge in graph.in_edges(op_id):
            price = min(
                period_floor,
                config.cache_transfer_units(edge.size_bytes),
            )
            incoming = max(incoming, longest[edge.producer] + price)
        longest[op_id] = incoming + exec_time
    return max(longest.values()) if longest else 0


def width_lower_bound(
    graph: TaskGraph,
    width: int,
    num_groups: int,
    iterations: int,
    total_work: Optional[int] = None,
    max_execution_time: Optional[int] = None,
    config: Optional[PimConfig] = None,
    cp_transfer: Optional[int] = None,
) -> int:
    """Lower bound on ``total_time`` at one candidate width.

    ``total_time = R_max * p + ceil(N / J) * p`` with ``R_max >= 0`` and
    ``p >= load_balance_bound``, so the *load-balance* term
    ``ceil(N / J) * max(ceil(W / width), c_max)`` is always admissible.

    When a machine ``config`` is supplied the bound is sharpened with the
    *transfer-critical-path* term: ``(R_max + 1) * p`` dominates every
    dependency chain priced at best-case transfers (see
    :func:`transfer_critical_path`), hence ``total_time = (R_max + 1) * p
    + (ceil(N / J) - 1) * p >= cp + (ceil(N / J) - 1) *
    load_balance_bound``. The final bound is the max of both terms.

    ``total_work``/``max_execution_time``/``cp_transfer`` may be passed
    precomputed (the search hoists and memoizes them) to keep the bound
    O(1) per candidate.
    """
    work = graph.total_work() if total_work is None else total_work
    cmax = (
        graph.max_execution_time()
        if max_execution_time is None
        else max_execution_time
    )
    if width < 1 or num_groups < 1 or iterations < 1:
        raise PipelineConfigError(
            "width, num_groups and iterations must all be >= 1"
        )
    bound_period = max(math.ceil(work / width), cmax)
    groups_rounds = math.ceil(iterations / num_groups)
    bound = groups_rounds * bound_period
    if cp_transfer is None and config is not None:
        cp_transfer = transfer_critical_path(graph, config, bound_period)
    if cp_transfer is not None:
        bound = max(
            bound, cp_transfer + (groups_rounds - 1) * bound_period
        )
    return bound
