"""GoogLeNet (Inception v1) builder -- the paper's benchmark source [16].

The structure follows Szegedy et al., "Going deeper with convolutions"
(CVPR'15), Table 1: a 224x224x3 input, the conv/pool stem, nine inception
modules (3a-3b, 4a-4e, 5a-5b) separated by max-pooling, global average
pooling and a 1000-way classifier. Auxiliary classifiers are omitted (they
are training-only).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cnn.layers import (
    AvgPool2D,
    Concat,
    Conv2D,
    Flatten,
    FullyConnected,
    InputLayer,
    LocalResponseNorm,
    MaxPool2D,
    TensorShape,
)
from repro.cnn.network import Network

#: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj) filter counts per
#: inception module, from Szegedy et al. Table 1.
INCEPTION_PARAMS: dict = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def inception_module(
    net: Network,
    tag: str,
    source: str,
    params: Tuple[int, int, int, int, int, int],
) -> str:
    """Append one inception module; returns the concat layer's name.

    Four parallel branches over the same input -- 1x1, 1x1->3x3, 1x1->5x5
    and 3x3 maxpool -> 1x1 projection -- concatenated channel-wise. This
    branch-and-merge shape is exactly the "deterministic convolutional
    connection" structure Para-CONV exploits.
    """
    n1, n3r, n3, n5r, n5, proj = params
    b1 = net.add(f"inc{tag}/1x1", Conv2D(n1, 1), [source])
    r3 = net.add(f"inc{tag}/3x3_reduce", Conv2D(n3r, 1), [source])
    b3 = net.add(f"inc{tag}/3x3", Conv2D(n3, 3, padding=1), [r3])
    r5 = net.add(f"inc{tag}/5x5_reduce", Conv2D(n5r, 1), [source])
    b5 = net.add(f"inc{tag}/5x5", Conv2D(n5, 5, padding=2), [r5])
    pool = net.add(
        f"inc{tag}/pool", MaxPool2D(3, stride=1, padding=1), [source]
    )
    bp = net.add(f"inc{tag}/pool_proj", Conv2D(proj, 1), [pool])
    return net.add(f"inc{tag}/concat", Concat(), [b1, b3, b5, bp])


def build_googlenet(input_size: int = 224) -> Network:
    """Construct the full inference-time GoogLeNet."""
    net = Network(name="googlenet")
    x = net.add("input", InputLayer(TensorShape(3, input_size, input_size)))
    x = net.add("conv1/7x7_s2", Conv2D(64, 7, stride=2, padding=3), [x])
    x = net.add("pool1/3x3_s2", MaxPool2D(3, stride=2, padding=1), [x])
    x = net.add("pool1/norm1", LocalResponseNorm(), [x])
    x = net.add("conv2/3x3_reduce", Conv2D(64, 1), [x])
    x = net.add("conv2/3x3", Conv2D(192, 3, padding=1), [x])
    x = net.add("conv2/norm2", LocalResponseNorm(), [x])
    x = net.add("pool2/3x3_s2", MaxPool2D(3, stride=2, padding=1), [x])

    x = inception_module(net, "3a", x, INCEPTION_PARAMS["3a"])
    x = inception_module(net, "3b", x, INCEPTION_PARAMS["3b"])
    x = net.add("pool3/3x3_s2", MaxPool2D(3, stride=2, padding=1), [x])

    for tag in ("4a", "4b", "4c", "4d", "4e"):
        x = inception_module(net, tag, x, INCEPTION_PARAMS[tag])
    x = net.add("pool4/3x3_s2", MaxPool2D(3, stride=2, padding=1), [x])

    for tag in ("5a", "5b"):
        x = inception_module(net, tag, x, INCEPTION_PARAMS[tag])
    x = net.add("pool5/7x7_s1", AvgPool2D(7), [x])
    x = net.add("flatten", Flatten(), [x])
    net.add("loss3/classifier", FullyConnected(1000), [x])
    return net


def googlenet_prefix(num_inception: int) -> Network:
    """A truncated GoogLeNet keeping the stem plus the first modules.

    Small prefixes give CNN-derived task graphs of controllable size for
    experiments and examples (the paper's small benchmarks are exactly
    sub-application graphs of this flavor).
    """
    if not 0 <= num_inception <= len(INCEPTION_PARAMS):
        raise ValueError(
            f"num_inception must be in [0, {len(INCEPTION_PARAMS)}]"
        )
    net = Network(name=f"googlenet-prefix-{num_inception}")
    x = net.add("input", InputLayer(TensorShape(3, 224, 224)))
    x = net.add("conv1/7x7_s2", Conv2D(64, 7, stride=2, padding=3), [x])
    x = net.add("pool1/3x3_s2", MaxPool2D(3, stride=2, padding=1), [x])
    x = net.add("conv2/3x3_reduce", Conv2D(64, 1), [x])
    x = net.add("conv2/3x3", Conv2D(192, 3, padding=1), [x])
    x = net.add("pool2/3x3_s2", MaxPool2D(3, stride=2, padding=1), [x])
    tags: List[str] = list(INCEPTION_PARAMS)[:num_inception]
    pool_after = {"3b": "pool3", "4e": "pool4"}
    for tag in tags:
        x = inception_module(net, tag, x, INCEPTION_PARAMS[tag])
        if tag in pool_after:
            x = net.add(
                f"{pool_after[tag]}/3x3_s2",
                MaxPool2D(3, stride=2, padding=1),
                [x],
            )
    return net
