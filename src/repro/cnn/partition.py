"""Partition a CNN into the periodic task-graph form (paper Section 4.1).

"These CNN applications are further partitioned based on the functionality
(i.e., convolution, or pooling) to obtain CNN graphs." Each compute layer
becomes one or more task-graph operations (large layers split into parallel
channel groups -- the data-level parallelism Para-CONV exploits); the data
flowing between layers becomes intermediate processing results.

Quantization: execution times are MAC counts scaled to small integer time
units, and intermediate-result sizes are clamped into the range the machine
model expects (a whole feature map never sits in one PE's cache; what moves
between operations are channel-group slices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cnn.layers import Conv2D, FullyConnected, MaxPool2D, AvgPool2D
from repro.cnn.network import LayerInfo, Network, NetworkError
from repro.graph.taskgraph import OperationKind, TaskGraph


@dataclass(frozen=True)
class PartitionConfig:
    """Partitioning knobs.

    Attributes:
        macs_per_task: target MAC count of one task; layers above it split
            into channel groups.
        max_splits: cap on how many tasks one layer may become.
        macs_per_time_unit: scale from MACs to schedule time units.
        max_execution_time: clamp on per-task execution time (keeps the
            periodic model's time units coarse, as the paper's examples do).
        min_ir_bytes / max_ir_bytes: clamp on intermediate-result sizes so
            transfer times respect the Theorem 3.1 premise ``c_ij <= p``.
    """

    macs_per_task: int = 30_000_000
    max_splits: int = 8
    macs_per_time_unit: int = 12_000_000
    max_execution_time: int = 4
    min_ir_bytes: int = 256
    max_ir_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.macs_per_task < 1 or self.macs_per_time_unit < 1:
            raise NetworkError("MAC scales must be positive")
        if self.max_splits < 1:
            raise NetworkError("max_splits must be >= 1")
        if self.max_execution_time < 1:
            raise NetworkError("max_execution_time must be >= 1")
        if not 0 < self.min_ir_bytes <= self.max_ir_bytes:
            raise NetworkError("invalid intermediate-result size clamp")


def _kind_of(layer) -> OperationKind:
    if isinstance(layer, Conv2D):
        return OperationKind.CONV
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        return OperationKind.POOL
    if isinstance(layer, FullyConnected):
        return OperationKind.FC
    return OperationKind.GENERIC


# ----------------------------------------------------------------------
# fused-layer lowering (ROADMAP item 4a, PIMfused-style)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusionSpec:
    """Which runs of adjacent layers lower into single fused stages.

    A run's *internal* intermediate results never become task-graph edges
    — fused stages keep them cache-resident by construction — while the
    run's *boundary* IRs keep their ordinary eDRAM-vs-cache placement
    choice. That trades eDRAM traffic for cache pressure: a genuinely
    different ΔR profile for the same network.

    Attributes:
        runs: explicit runs of layer names, each lowered to one stage.
        auto: additionally discover maximal chains of adjacent ``Conv2D``
            layers (each feeding only the next) and fuse them too.
        max_run: cap on auto-discovered run length.
    """

    runs: Tuple[Tuple[str, ...], ...] = ()
    auto: bool = False
    max_run: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "runs",
            tuple(tuple(str(m) for m in run) for run in self.runs),
        )
        if self.max_run < 2:
            raise NetworkError("max_run must be >= 2")

    @classmethod
    def of(cls, *runs: Sequence[str]) -> "FusionSpec":
        """Explicit runs: ``FusionSpec.of(["c1", "s2"], ["c3", "s4"])``."""
        return cls(runs=tuple(tuple(run) for run in runs))

    @classmethod
    def auto_chains(cls, max_run: int = 2) -> "FusionSpec":
        """Greedy conv-chain fusion up to ``max_run`` layers per stage."""
        return cls(auto=True, max_run=max_run)

    def resolve(
        self, network: Network, info: Mapping[str, LayerInfo]
    ) -> Tuple[Tuple[str, ...], ...]:
        """Validated runs for ``network``: explicit first, then auto.

        Every run must be a chain of compute layers in which each
        non-last member's output is consumed (resolving through
        pass-through layers) by exactly the next member — otherwise the
        internal IR would escape the fused stage, and the run is
        rejected with :class:`NetworkError` rather than mis-lowered.
        """
        assigned: Dict[str, int] = {}
        resolved: List[Tuple[str, ...]] = []
        for run in self.runs:
            if len(run) < 2:
                raise NetworkError(f"fusion run needs >= 2 layers: {run}")
            for member in run:
                if member not in info:
                    raise NetworkError(
                        f"fusion run names unknown layer {member!r}"
                    )
                if not info[member].layer.is_compute:
                    raise NetworkError(
                        f"fusion run member {member!r} is not a compute layer"
                    )
                if member in assigned:
                    raise NetworkError(
                        f"layer {member!r} appears in more than one fusion run"
                    )
                assigned[member] = len(resolved)
            for earlier, later in zip(run, run[1:]):
                consumers, dead_end = _resolved_consumers(
                    network, info, earlier
                )
                if dead_end or consumers != [later]:
                    raise NetworkError(
                        f"cannot fuse {earlier!r}->{later!r}: {earlier!r} "
                        f"feeds {consumers or 'nothing'}"
                        + (" and a non-compute sink" if dead_end else "")
                        + "; its intermediate result would escape the run"
                    )
            resolved.append(run)
        if self.auto:
            for run in self._auto_runs(network, info, assigned):
                for member in run:
                    assigned[member] = len(resolved)
                resolved.append(run)
        return tuple(resolved)

    def _auto_runs(
        self,
        network: Network,
        info: Mapping[str, LayerInfo],
        assigned: Mapping[str, int],
    ) -> List[Tuple[str, ...]]:
        taken = set(assigned)
        runs: List[Tuple[str, ...]] = []
        for name in network.layer_names():
            if name in taken or not isinstance(info[name].layer, Conv2D):
                continue
            run = [name]
            while len(run) < self.max_run:
                consumers, dead_end = _resolved_consumers(
                    network, info, run[-1]
                )
                if dead_end or len(consumers) != 1:
                    break
                succ = consumers[0]
                if (
                    succ in taken
                    or not isinstance(info[succ].layer, Conv2D)
                    or _resolved_producers(network, info, succ) != [run[-1]]
                ):
                    break
                run.append(succ)
            if len(run) >= 2:
                taken.update(run)
                runs.append(tuple(run))
        return runs


def _resolved_consumers(
    network: Network, info: Mapping[str, LayerInfo], name: str
) -> Tuple[List[str], bool]:
    """Compute layers consuming ``name``'s output, through pass-throughs.

    Returns the consumer names (first-reached order, deduplicated) and
    whether any path dead-ends in a non-compute sink (data leaving the
    graph without a compute consumer — an escape for fusion purposes).
    """
    consumers: List[str] = []
    dead_end = False
    for consumer in network.consumers_of(name):
        if info[consumer].layer.is_compute:
            if consumer not in consumers:
                consumers.append(consumer)
        else:
            if not network.consumers_of(consumer):
                dead_end = True
            sub, sub_dead = _resolved_consumers(network, info, consumer)
            dead_end |= sub_dead
            for c in sub:
                if c not in consumers:
                    consumers.append(c)
    return consumers, dead_end


def _resolved_producers(
    network: Network, info: Mapping[str, LayerInfo], name: str
) -> List[str]:
    """Compute layers feeding ``name``'s inputs, through pass-throughs."""
    producers: List[str] = []
    for src in info[name].inputs:
        if info[src].layer.is_compute:
            if src not in producers:
                producers.append(src)
        else:
            for p in _resolved_producers(network, info, src):
                if p not in producers:
                    producers.append(p)
    return producers


FusionArg = Union[None, str, FusionSpec, Iterable[Sequence[str]]]


def _as_fusion_spec(fusion: FusionArg) -> Optional[FusionSpec]:
    if fusion is None:
        return None
    if isinstance(fusion, FusionSpec):
        return fusion
    if isinstance(fusion, str):
        if fusion == "auto":
            return FusionSpec.auto_chains()
        raise NetworkError(
            f"unknown fusion spec {fusion!r}; expected 'auto', a "
            "FusionSpec, or explicit runs of layer names"
        )
    return FusionSpec.of(*fusion)


def partition_network(
    network: Network,
    config: PartitionConfig = PartitionConfig(),
    fusion: FusionArg = None,
) -> TaskGraph:
    """Lower ``network`` into a :class:`TaskGraph`.

    Non-compute layers (inputs, concats, flattens) do not become tasks;
    edges route through them, so an inception concat feeding a convolution
    yields direct edges from every branch's tasks to the convolution's
    tasks -- the fan-in the paper's graphs exhibit.

    With ``fusion`` (a :class:`FusionSpec`, ``"auto"``, or explicit runs
    of layer names), each named run of adjacent layers lowers into a
    *single* fused stage: its channel-group tasks carry the run's exact
    summed MACs (conserved to the unit), its internal IRs never become
    edges, and only the run-boundary IRs remain placement candidates.
    Unfused layers lower exactly as before — an empty fusion spec is
    byte-identical to no spec at all.
    """
    info = network.infer_shapes()
    spec = _as_fusion_spec(fusion)
    runs = spec.resolve(network, info) if spec is not None else ()
    run_of: Dict[str, int] = {}
    for run_idx, run in enumerate(runs):
        for member in run:
            run_of[member] = run_idx

    # Lowering units in network order: singleton units are single compute
    # layers (the legacy path, bit-identical to pre-fusion lowering so
    # every existing fingerprint survives); fused units are whole runs.
    units: List[Tuple[str, ...]] = []
    for name in network.layer_names():
        if not info[name].layer.is_compute:
            continue
        if name in run_of:
            run = runs[run_of[name]]
            if run[0] == name:
                units.append(run)
            continue
        units.append((name,))

    # Pass 1: create tasks, one group per unit.
    graph = TaskGraph(name=network.name)
    next_id = 0
    tasks_of: Dict[str, List[int]] = {}
    for unit in units:
        if len(unit) == 1:
            rec = info[unit[0]]
            splits = min(
                config.max_splits,
                max(1, math.ceil(rec.macs / config.macs_per_task)),
            )
            per_task_macs = rec.macs / splits if splits else 0
            exec_time = min(
                config.max_execution_time,
                max(1, round(per_task_macs / config.macs_per_time_unit)),
            )
            works = [int(per_task_macs)] * splits
            kind = _kind_of(rec.layer)
            label = unit[0]
            fused_count = 1
        else:
            total_macs = sum(info[m].macs for m in unit)
            splits = min(
                config.max_splits,
                max(1, math.ceil(total_macs / config.macs_per_task)),
            )
            per_task_macs = total_macs / splits
            # A fused stage stands for len(unit) layers, so its time
            # clamp scales with the run: fusing must not let a stage
            # dodge the coarse-time model by summing past the cap.
            time_clamp = config.max_execution_time * len(unit)
            exec_time = min(
                time_clamp,
                max(1, round(per_task_macs / config.macs_per_time_unit)),
            )
            # Exact integer distribution: the stage's tasks sum to the
            # run's total MACs to the unit (the conservation property
            # the fused verify stage asserts).
            base, extra = divmod(total_macs, splits)
            works = [base + (1 if part < extra else 0) for part in range(splits)]
            kind = _kind_of(info[unit[0]].layer)
            label = "+".join(unit)
            fused_count = len(unit)
        ids = []
        for part in range(splits):
            suffix = f"#{part}" if splits > 1 else ""
            graph.add_op(
                next_id,
                execution_time=exec_time,
                name=f"{label}{suffix}",
                kind=kind,
                work=works[part],
                fused_count=fused_count,
            )
            ids.append(next_id)
            next_id += 1
        for member in unit:
            tasks_of[member] = ids

    # Pass 2: resolve producers through pass-through layers.
    def terminal_producers(name: str) -> List[Tuple[int, int]]:
        """Task ids feeding out of ``name``, with their slice sizes."""
        rec = info[name]
        if rec.layer.is_compute:
            ids = tasks_of[name]
            slice_bytes = max(1, rec.output_bytes // len(ids))
            return [(task_id, slice_bytes) for task_id in ids]
        if not rec.inputs:  # an InputLayer: external data, no producer task
            return []
        producers: List[Tuple[int, int]] = []
        for src in rec.inputs:
            producers.extend(terminal_producers(src))
        return producers

    def clamp(size: int) -> int:
        return max(config.min_ir_bytes, min(config.max_ir_bytes, size))

    # Pass 3: connect producers to consumers, unit by unit. For a fused
    # unit, producers internal to the unit are skipped (those IRs are
    # cache-resident inside the fused stage); external producers of any
    # member (e.g. a skip connection into the middle of the run) become
    # boundary edges into the fused stage.
    for unit in units:
        own_ids = set(tasks_of[unit[0]])
        producers: List[Tuple[int, int]] = []
        for member in unit:
            for src in info[member].inputs:
                for producer in terminal_producers(src):
                    if producer[0] not in own_ids:
                        producers.append(producer)
        consumers = tasks_of[unit[0]]
        pool_like = (
            len(unit) == 1
            and _kind_of(info[unit[0]].layer) is OperationKind.POOL
        )
        for c_index, consumer in enumerate(consumers):
            if pool_like and len(producers) >= len(consumers):
                # Pooling is per-channel: each task reads its own slice(s).
                chosen = [
                    producers[p]
                    for p in range(c_index, len(producers), len(consumers))
                ]
            else:
                # Convolutions reduce over all input channels: full fan-in.
                chosen = producers
            for producer, slice_bytes in chosen:
                if not graph.has_edge(producer, consumer):
                    graph.connect(
                        producer, consumer, size_bytes=clamp(slice_bytes)
                    )

    graph.validate()
    return graph
