"""Partition a CNN into the periodic task-graph form (paper Section 4.1).

"These CNN applications are further partitioned based on the functionality
(i.e., convolution, or pooling) to obtain CNN graphs." Each compute layer
becomes one or more task-graph operations (large layers split into parallel
channel groups -- the data-level parallelism Para-CONV exploits); the data
flowing between layers becomes intermediate processing results.

Quantization: execution times are MAC counts scaled to small integer time
units, and intermediate-result sizes are clamped into the range the machine
model expects (a whole feature map never sits in one PE's cache; what moves
between operations are channel-group slices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cnn.layers import Conv2D, FullyConnected, MaxPool2D, AvgPool2D
from repro.cnn.network import Network, NetworkError
from repro.graph.taskgraph import OperationKind, TaskGraph


@dataclass(frozen=True)
class PartitionConfig:
    """Partitioning knobs.

    Attributes:
        macs_per_task: target MAC count of one task; layers above it split
            into channel groups.
        max_splits: cap on how many tasks one layer may become.
        macs_per_time_unit: scale from MACs to schedule time units.
        max_execution_time: clamp on per-task execution time (keeps the
            periodic model's time units coarse, as the paper's examples do).
        min_ir_bytes / max_ir_bytes: clamp on intermediate-result sizes so
            transfer times respect the Theorem 3.1 premise ``c_ij <= p``.
    """

    macs_per_task: int = 30_000_000
    max_splits: int = 8
    macs_per_time_unit: int = 12_000_000
    max_execution_time: int = 4
    min_ir_bytes: int = 256
    max_ir_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.macs_per_task < 1 or self.macs_per_time_unit < 1:
            raise NetworkError("MAC scales must be positive")
        if self.max_splits < 1:
            raise NetworkError("max_splits must be >= 1")
        if self.max_execution_time < 1:
            raise NetworkError("max_execution_time must be >= 1")
        if not 0 < self.min_ir_bytes <= self.max_ir_bytes:
            raise NetworkError("invalid intermediate-result size clamp")


def _kind_of(layer) -> OperationKind:
    if isinstance(layer, Conv2D):
        return OperationKind.CONV
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        return OperationKind.POOL
    if isinstance(layer, FullyConnected):
        return OperationKind.FC
    return OperationKind.GENERIC


def partition_network(
    network: Network, config: PartitionConfig = PartitionConfig()
) -> TaskGraph:
    """Lower ``network`` into a :class:`TaskGraph`.

    Non-compute layers (inputs, concats, flattens) do not become tasks;
    edges route through them, so an inception concat feeding a convolution
    yields direct edges from every branch's tasks to the convolution's
    tasks -- the fan-in the paper's graphs exhibit.
    """
    info = network.infer_shapes()

    # Pass 1: create tasks for compute layers.
    graph = TaskGraph(name=network.name)
    next_id = 0
    tasks_of: Dict[str, List[int]] = {}
    for name in network.layer_names():
        rec = info[name]
        if not rec.layer.is_compute:
            continue
        splits = min(
            config.max_splits,
            max(1, math.ceil(rec.macs / config.macs_per_task)),
        )
        per_task_macs = rec.macs / splits if splits else 0
        exec_time = min(
            config.max_execution_time,
            max(1, round(per_task_macs / config.macs_per_time_unit)),
        )
        ids = []
        for part in range(splits):
            suffix = f"#{part}" if splits > 1 else ""
            graph.add_op(
                next_id,
                execution_time=exec_time,
                name=f"{name}{suffix}",
                kind=_kind_of(rec.layer),
                work=int(per_task_macs),
            )
            ids.append(next_id)
            next_id += 1
        tasks_of[name] = ids

    # Pass 2: resolve producers through pass-through layers.
    def terminal_producers(name: str) -> List[Tuple[int, int]]:
        """Task ids feeding out of ``name``, with their slice sizes."""
        rec = info[name]
        if rec.layer.is_compute:
            ids = tasks_of[name]
            slice_bytes = max(1, rec.output_bytes // len(ids))
            return [(task_id, slice_bytes) for task_id in ids]
        if not rec.inputs:  # an InputLayer: external data, no producer task
            return []
        producers: List[Tuple[int, int]] = []
        for src in rec.inputs:
            producers.extend(terminal_producers(src))
        return producers

    def clamp(size: int) -> int:
        return max(config.min_ir_bytes, min(config.max_ir_bytes, size))

    # Pass 3: connect producers to consumers.
    for name in network.layer_names():
        rec = info[name]
        if not rec.layer.is_compute:
            continue
        producers: List[Tuple[int, int]] = []
        for src in rec.inputs:
            producers.extend(terminal_producers(src))
        consumers = tasks_of[name]
        pool_like = _kind_of(rec.layer) is OperationKind.POOL
        for c_index, consumer in enumerate(consumers):
            if pool_like and len(producers) >= len(consumers):
                # Pooling is per-channel: each task reads its own slice(s).
                chosen = [
                    producers[p]
                    for p in range(c_index, len(producers), len(consumers))
                ]
            else:
                # Convolutions reduce over all input channels: full fan-in.
                chosen = producers
            for producer, slice_bytes in chosen:
                if not graph.has_edge(producer, consumer):
                    graph.connect(
                        producer, consumer, size_bytes=clamp(slice_bytes)
                    )

    graph.validate()
    return graph
