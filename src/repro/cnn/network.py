"""Network container: a named-layer DAG with shape inference.

Layers are added in topological order by name; :meth:`Network.infer_shapes`
propagates tensor shapes from the input layer through every branch and
memoizes per-layer output shapes, MAC counts and footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cnn.layers import InputLayer, Layer, LayerError, TensorShape


class NetworkError(ValueError):
    """Raised for malformed network structure."""


@dataclass(frozen=True)
class LayerInfo:
    """Inferred facts about one layer instance."""

    name: str
    layer: Layer
    inputs: Tuple[str, ...]
    output_shape: TensorShape
    macs: int
    weight_bytes: int
    output_bytes: int


class Network:
    """A DAG of named layers.

    Layers must be added after all of their inputs (construction order is a
    topological order); this keeps shape inference a single forward pass
    and matches how CNN definitions read.
    """

    def __init__(self, name: str = "network", element_bytes: int = 2):
        if element_bytes < 1:
            raise NetworkError("element_bytes must be >= 1")
        self.name = name
        self.element_bytes = element_bytes
        self._layers: Dict[str, Layer] = {}
        self._inputs: Dict[str, Tuple[str, ...]] = {}
        self._order: List[str] = []
        self._info: Optional[Dict[str, LayerInfo]] = None

    # ------------------------------------------------------------------
    def add(self, name: str, layer: Layer,
            inputs: Sequence[str] = ()) -> str:
        """Add a layer; returns its name for chaining."""
        if name in self._layers:
            raise NetworkError(f"duplicate layer name {name!r}")
        for src in inputs:
            if src not in self._layers:
                raise NetworkError(
                    f"layer {name!r} references unknown input {src!r} "
                    "(layers must be added after their inputs)"
                )
        if isinstance(layer, InputLayer):
            if inputs:
                raise NetworkError(f"input layer {name!r} takes no inputs")
        elif not inputs:
            raise NetworkError(f"non-input layer {name!r} needs inputs")
        self._layers[name] = layer
        self._inputs[name] = tuple(inputs)
        self._order.append(name)
        self._info = None  # invalidate memoized inference
        return name

    # ------------------------------------------------------------------
    def layer_names(self) -> List[str]:
        return list(self._order)

    def layer(self, name: str) -> Layer:
        try:
            return self._layers[name]
        except KeyError:
            raise NetworkError(f"unknown layer {name!r}") from None

    def inputs_of(self, name: str) -> Tuple[str, ...]:
        return self._inputs[name]

    def consumers_of(self, name: str) -> List[str]:
        return [n for n in self._order if name in self._inputs[n]]

    def sinks(self) -> List[str]:
        consumed = {src for ins in self._inputs.values() for src in ins}
        return [n for n in self._order if n not in consumed]

    def __len__(self) -> int:
        return len(self._order)

    # ------------------------------------------------------------------
    def infer_shapes(self) -> Dict[str, LayerInfo]:
        """Forward shape/work inference over the whole network (memoized)."""
        if self._info is not None:
            return self._info
        if not self._order:
            raise NetworkError(f"network {self.name!r} is empty")
        info: Dict[str, LayerInfo] = {}
        for name in self._order:
            layer = self._layers[name]
            in_shapes = [info[src].output_shape for src in self._inputs[name]]
            try:
                out_shape = layer.output_shape(in_shapes)
                macs = layer.macs(in_shapes)
                weights = layer.weight_bytes(in_shapes, self.element_bytes)
            except LayerError as exc:
                raise NetworkError(f"layer {name!r}: {exc}") from exc
            info[name] = LayerInfo(
                name=name,
                layer=layer,
                inputs=self._inputs[name],
                output_shape=out_shape,
                macs=macs,
                weight_bytes=weights,
                output_bytes=out_shape.bytes(self.element_bytes),
            )
        self._info = info
        return info

    # ------------------------------------------------------------------
    def total_macs(self) -> int:
        return sum(i.macs for i in self.infer_shapes().values())

    def total_weight_bytes(self) -> int:
        return sum(i.weight_bytes for i in self.infer_shapes().values())

    def conv_mac_fraction(self) -> float:
        """Fraction of MACs in convolutional layers.

        The paper cites about 90% for real CNNs; GoogLeNet reproduces that
        here (a sanity check in the test suite).
        """
        from repro.cnn.layers import Conv2D  # local to avoid cycle at import

        info = self.infer_shapes()
        total = sum(i.macs for i in info.values())
        conv = sum(i.macs for i in info.values() if isinstance(i.layer, Conv2D))
        return conv / total if total else 0.0

    def describe(self) -> str:
        """Multi-line structural summary (name, type, shape, MMACs)."""
        info = self.infer_shapes()
        lines = [f"Network {self.name!r}: {len(self)} layers, "
                 f"{self.total_macs() / 1e6:.1f} MMACs, "
                 f"{self.total_weight_bytes() / 1e6:.1f} MB weights"]
        for name in self._order:
            rec = info[name]
            lines.append(
                f"  {name:<24} {type(rec.layer).__name__:<18} "
                f"out={str(rec.output_shape):<14} macs={rec.macs:>12,}"
            )
        return "\n".join(lines)
