"""CNN layer algebra with shape and work inference.

Each layer maps input tensor shapes to an output shape and reports its
computational work (multiply-accumulates), weight footprint and output
footprint. The partitioner uses these numbers to derive task execution
times and intermediate-result sizes; no actual tensor arithmetic runs here
(Para-CONV schedules the dataflow, it does not compute inferences).

Shapes are channels-first ``(channels, height, width)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class LayerError(ValueError):
    """Raised for inconsistent layer parameters or shape mismatches."""


@dataclass(frozen=True)
class TensorShape:
    """A 3D feature-map shape: channels x height x width."""

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if min(self.channels, self.height, self.width) < 1:
            raise LayerError(f"non-positive tensor shape {self}")

    @property
    def elements(self) -> int:
        return self.channels * self.height * self.width

    def bytes(self, element_bytes: int = 2) -> int:
        """Footprint, defaulting to 16-bit fixed point (Neurocube-style)."""
        return self.elements * element_bytes

    def __str__(self) -> str:
        return f"{self.channels}x{self.height}x{self.width}"


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise LayerError(
            f"kernel {kernel}/stride {stride}/padding {padding} collapses a "
            f"dimension of size {size}"
        )
    return out


class Layer:
    """Base class: shape inference plus work/footprint accounting."""

    #: how many input tensors the layer takes (-1 for variadic).
    arity: int = 1

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        raise NotImplementedError

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        """Multiply-accumulate count for one inference."""
        raise NotImplementedError

    def weight_bytes(self, inputs: Sequence[TensorShape],
                     element_bytes: int = 2) -> int:
        """Filter/weight storage footprint."""
        return 0

    def check_arity(self, inputs: Sequence[TensorShape]) -> None:
        if self.arity >= 0 and len(inputs) != self.arity:
            raise LayerError(
                f"{type(self).__name__} expects {self.arity} input(s), "
                f"got {len(inputs)}"
            )
        if self.arity < 0 and not inputs:
            raise LayerError(f"{type(self).__name__} needs at least one input")

    @property
    def is_compute(self) -> bool:
        """Whether the layer becomes a task-graph operation when partitioned."""
        return True


@dataclass(frozen=True)
class InputLayer(Layer):
    """Graph source carrying the network's input shape."""

    shape: TensorShape
    arity: int = 0

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        return self.shape

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        return 0

    @property
    def is_compute(self) -> bool:
        return False


@dataclass(frozen=True)
class Conv2D(Layer):
    """2D convolution: ``out_channels`` filters of ``kernel x kernel``."""

    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if self.out_channels < 1 or self.kernel < 1 or self.stride < 1:
            raise LayerError(f"bad convolution parameters {self}")
        if self.padding < 0:
            raise LayerError("padding must be >= 0")

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        src = inputs[0]
        return TensorShape(
            self.out_channels,
            _conv_out(src.height, self.kernel, self.stride, self.padding),
            _conv_out(src.width, self.kernel, self.stride, self.padding),
        )

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        src = inputs[0]
        out = self.output_shape(inputs)
        return out.elements * src.channels * self.kernel * self.kernel

    def weight_bytes(self, inputs: Sequence[TensorShape],
                     element_bytes: int = 2) -> int:
        src = inputs[0]
        return (
            self.out_channels * src.channels * self.kernel * self.kernel
            * element_bytes
        )


@dataclass(frozen=True)
class _Pool2D(Layer):
    """Shared pooling geometry; subclasses fix the reduction operator."""

    kernel: int
    stride: int = 0  # 0 means stride == kernel
    padding: int = 0

    def __post_init__(self) -> None:
        if self.kernel < 1:
            raise LayerError("pool kernel must be >= 1")
        if self.stride < 0 or self.padding < 0:
            raise LayerError("pool stride/padding must be >= 0")

    @property
    def effective_stride(self) -> int:
        return self.stride or self.kernel

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        src = inputs[0]
        return TensorShape(
            src.channels,
            _conv_out(src.height, self.kernel, self.effective_stride, self.padding),
            _conv_out(src.width, self.kernel, self.effective_stride, self.padding),
        )

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        # One comparison/add per pooled element: cheap relative to conv.
        out = self.output_shape(inputs)
        return out.elements * self.kernel * self.kernel


@dataclass(frozen=True)
class MaxPool2D(_Pool2D):
    """Maximum pooling."""


@dataclass(frozen=True)
class AvgPool2D(_Pool2D):
    """Average pooling."""


@dataclass(frozen=True)
class LocalResponseNorm(Layer):
    """Local response normalization (shape-preserving, light work)."""

    size: int = 5

    def __post_init__(self) -> None:
        if self.size < 1:
            raise LayerError("LRN size must be >= 1")

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        return inputs[0]

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        return inputs[0].elements * self.size


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation (inception branch merge)."""

    arity: int = -1

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        first = inputs[0]
        for shape in inputs[1:]:
            if (shape.height, shape.width) != (first.height, first.width):
                raise LayerError(
                    f"concat spatial mismatch: {shape} vs {first}"
                )
        return TensorShape(
            sum(s.channels for s in inputs), first.height, first.width
        )

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        return 0

    @property
    def is_compute(self) -> bool:
        return False


@dataclass(frozen=True)
class Flatten(Layer):
    """Collapse a feature map to a vector (1 x 1 x elements)."""

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        return TensorShape(inputs[0].elements, 1, 1)

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        return 0

    @property
    def is_compute(self) -> bool:
        return False


@dataclass(frozen=True)
class FullyConnected(Layer):
    """Inner product layer -- "a special kind of convolutional layer"."""

    out_features: int

    def __post_init__(self) -> None:
        if self.out_features < 1:
            raise LayerError("out_features must be >= 1")

    def output_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(inputs)
        return TensorShape(self.out_features, 1, 1)

    def macs(self, inputs: Sequence[TensorShape]) -> int:
        return inputs[0].elements * self.out_features

    def weight_bytes(self, inputs: Sequence[TensorShape],
                     element_bytes: int = 2) -> int:
        return inputs[0].elements * self.out_features * element_bytes
