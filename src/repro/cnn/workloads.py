"""Workload registry: every benchmark the evaluation runs.

The paper's twelve applications (Table 1) are regenerated as seeded
synthetic graphs with the published vertex/edge counts; the CNN-derived
entries additionally expose real GoogLeNet partitions for users who want
structure that comes from an actual network rather than a generator.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cnn.googlenet import build_googlenet, googlenet_prefix
from repro.cnn.models import MODEL_BUILDERS
from repro.cnn.partition import PartitionConfig, partition_network
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.graph.taskgraph import GraphValidationError, TaskGraph

GraphBuilder = Callable[[], TaskGraph]


def _googlenet_graph() -> TaskGraph:
    return partition_network(build_googlenet(), PartitionConfig())


def _googlenet_small_graph() -> TaskGraph:
    return partition_network(googlenet_prefix(3), PartitionConfig())


def _synthetic(name: str) -> GraphBuilder:
    def build() -> TaskGraph:
        return synthetic_benchmark(name)

    return build


def _model_graph(name: str) -> GraphBuilder:
    def build() -> TaskGraph:
        return partition_network(MODEL_BUILDERS[name](), PartitionConfig())

    return build


#: Every named workload; the first twelve are the paper's Table 1 rows.
WORKLOADS: Dict[str, GraphBuilder] = {
    **{name: _synthetic(name) for name in BENCHMARK_SIZES},
    "googlenet": _googlenet_graph,
    "googlenet-small": _googlenet_small_graph,
    **{name: _model_graph(name) for name in MODEL_BUILDERS},
}

#: The paper's evaluation set, in Table 1 row order.
PAPER_BENCHMARKS: List[str] = list(BENCHMARK_SIZES)


def load_workload(name: str) -> TaskGraph:
    """Build the named workload's task graph (deterministic per name)."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise GraphValidationError(
            f"unknown workload {name!r}; known workloads: {known}"
        ) from None
    return builder()
