"""Workload registry: every benchmark the evaluation runs.

The paper's twelve applications (Table 1) are regenerated as seeded
synthetic graphs with the published vertex/edge counts; the CNN-derived
entries additionally expose real GoogLeNet partitions for users who want
structure that comes from an actual network rather than a generator; and
the ``randwired-*`` entries are randomly-wired DAGs (ER/WS/BA families,
:mod:`repro.graph.randwired`) that stress the stack with irregular
high-fan-in dataflow the layered benchmarks never produce.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cnn.googlenet import build_googlenet, googlenet_prefix
from repro.cnn.models import MODEL_BUILDERS
from repro.cnn.partition import PartitionConfig, partition_network
from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark
from repro.graph.randwired import RANDWIRED_SPECS, randwired_benchmark
from repro.graph.taskgraph import GraphValidationError, TaskGraph

GraphBuilder = Callable[[], TaskGraph]


class UnknownWorkloadError(GraphValidationError):
    """A workload name matched nothing in the registry.

    Mirrors :class:`~repro.core.allocation.UnknownAllocatorError`: carries
    the offending ``name`` and the sorted registry ``choices`` so CLIs and
    error paths can enumerate what *would* have worked. Subclasses
    :class:`GraphValidationError` (itself a ``ValueError``) so existing
    guards keep catching it.
    """

    def __init__(self, name: str):
        self.name = name
        self.choices = sorted(WORKLOADS)
        super().__init__(
            f"unknown workload {name!r}; known workloads: "
            f"{', '.join(self.choices)}"
        )


def _googlenet_graph() -> TaskGraph:
    return partition_network(build_googlenet(), PartitionConfig())


def _googlenet_small_graph() -> TaskGraph:
    return partition_network(googlenet_prefix(3), PartitionConfig())


def _synthetic(name: str) -> GraphBuilder:
    def build() -> TaskGraph:
        return synthetic_benchmark(name)

    return build


def _model_graph(name: str) -> GraphBuilder:
    def build() -> TaskGraph:
        return partition_network(MODEL_BUILDERS[name](), PartitionConfig())

    return build


def _randwired(name: str) -> GraphBuilder:
    def build() -> TaskGraph:
        return randwired_benchmark(name)

    return build


#: Every named workload; the first twelve are the paper's Table 1 rows.
WORKLOADS: Dict[str, GraphBuilder] = {
    **{name: _synthetic(name) for name in BENCHMARK_SIZES},
    "googlenet": _googlenet_graph,
    "googlenet-small": _googlenet_small_graph,
    **{name: _model_graph(name) for name in MODEL_BUILDERS},
    **{name: _randwired(name) for name in RANDWIRED_SPECS},
}

#: The paper's evaluation set, in Table 1 row order.
PAPER_BENCHMARKS: List[str] = list(BENCHMARK_SIZES)

#: The randomly-wired stress set, in registry order.
RANDWIRED_BENCHMARKS: List[str] = list(RANDWIRED_SPECS)


def load_workload(name: str) -> TaskGraph:
    """Build the named workload's task graph (deterministic per name).

    Raises :class:`UnknownWorkloadError` — a typed
    :class:`GraphValidationError` enumerating the registry — when the
    name matches nothing.
    """
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise UnknownWorkloadError(name) from None
    return builder()
