"""CNN application model (paper Section 2.2) and workload registry.

A CNN is a stack of convolutional, pooling and fully-connected layers;
convolutions dominate (about 90% of operations). This package provides a
small layer algebra with shape/work inference, a GoogLeNet (Inception v1)
builder -- the network the paper's benchmarks derive from -- and the
partitioner that lowers a network into the periodic task-graph form that
Para-CONV schedules.
"""

from repro.cnn.layers import (
    AvgPool2D,
    Concat,
    Conv2D,
    Flatten,
    FullyConnected,
    InputLayer,
    Layer,
    LayerError,
    LocalResponseNorm,
    MaxPool2D,
    TensorShape,
)
from repro.cnn.network import Network, NetworkError
from repro.cnn.googlenet import build_googlenet, inception_module
from repro.cnn.partition import FusionSpec, PartitionConfig, partition_network
from repro.cnn.workloads import WORKLOADS, load_workload

__all__ = [
    "AvgPool2D",
    "Concat",
    "Conv2D",
    "Flatten",
    "FullyConnected",
    "FusionSpec",
    "InputLayer",
    "Layer",
    "LayerError",
    "LocalResponseNorm",
    "MaxPool2D",
    "Network",
    "NetworkError",
    "PartitionConfig",
    "TensorShape",
    "WORKLOADS",
    "build_googlenet",
    "inception_module",
    "load_workload",
    "partition_network",
]
