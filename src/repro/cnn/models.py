"""Additional classic CNN builders beyond GoogLeNet.

The paper's framework is network-agnostic; these builders give users (and
our experiments) structurally different dataflows to schedule:

* :func:`build_lenet5` -- the tiny sequential pioneer (LeCun et al.); a
  nearly pure pipeline, the worst case for intra-iteration parallelism and
  therefore the best showcase for retiming.
* :func:`build_alexnet` -- the 2012 ImageNet winner; wide convolutions,
  heavy fully-connected tail.
* :func:`build_vgg16` -- deep homogeneous 3x3 stacks; large uniform
  per-layer work, dominated by convolution as the paper assumes.

All are inference-time graphs (no dropout / training heads).
"""

from __future__ import annotations

from typing import Sequence

from repro.cnn.layers import (
    AvgPool2D,
    Conv2D,
    Flatten,
    FullyConnected,
    InputLayer,
    LocalResponseNorm,
    MaxPool2D,
    TensorShape,
)
from repro.cnn.network import Network


def build_lenet5() -> Network:
    """LeNet-5 on 32x32 grayscale input (LeCun et al., 1998 geometry)."""
    net = Network(name="lenet5")
    x = net.add("input", InputLayer(TensorShape(1, 32, 32)))
    x = net.add("c1", Conv2D(6, 5), [x])            # 6 x 28 x 28
    x = net.add("s2", AvgPool2D(2), [x])            # 6 x 14 x 14
    x = net.add("c3", Conv2D(16, 5), [x])           # 16 x 10 x 10
    x = net.add("s4", AvgPool2D(2), [x])            # 16 x 5 x 5
    x = net.add("c5", Conv2D(120, 5), [x])          # 120 x 1 x 1
    x = net.add("flatten", Flatten(), [x])
    x = net.add("f6", FullyConnected(84), [x])
    net.add("output", FullyConnected(10), [x])
    return net


def build_alexnet(num_classes: int = 1000) -> Network:
    """AlexNet (single-tower inference variant, Krizhevsky et al. 2012)."""
    net = Network(name="alexnet")
    x = net.add("input", InputLayer(TensorShape(3, 227, 227)))
    x = net.add("conv1", Conv2D(96, 11, stride=4), [x])        # 96 x 55 x 55
    x = net.add("norm1", LocalResponseNorm(), [x])
    x = net.add("pool1", MaxPool2D(3, stride=2), [x])          # 96 x 27 x 27
    x = net.add("conv2", Conv2D(256, 5, padding=2), [x])       # 256 x 27 x 27
    x = net.add("norm2", LocalResponseNorm(), [x])
    x = net.add("pool2", MaxPool2D(3, stride=2), [x])          # 256 x 13 x 13
    x = net.add("conv3", Conv2D(384, 3, padding=1), [x])
    x = net.add("conv4", Conv2D(384, 3, padding=1), [x])
    x = net.add("conv5", Conv2D(256, 3, padding=1), [x])
    x = net.add("pool5", MaxPool2D(3, stride=2), [x])          # 256 x 6 x 6
    x = net.add("flatten", Flatten(), [x])
    x = net.add("fc6", FullyConnected(4096), [x])
    x = net.add("fc7", FullyConnected(4096), [x])
    net.add("fc8", FullyConnected(num_classes), [x])
    return net


#: VGG-16 configuration "D": (block, out_channels, conv count).
_VGG16_BLOCKS: Sequence = (
    (1, 64, 2), (2, 128, 2), (3, 256, 3), (4, 512, 3), (5, 512, 3)
)


def build_vgg16(num_classes: int = 1000) -> Network:
    """VGG-16 (configuration D, Simonyan & Zisserman 2014)."""
    net = Network(name="vgg16")
    x = net.add("input", InputLayer(TensorShape(3, 224, 224)))
    for block, channels, count in _VGG16_BLOCKS:
        for index in range(1, count + 1):
            x = net.add(
                f"conv{block}_{index}", Conv2D(channels, 3, padding=1), [x]
            )
        x = net.add(f"pool{block}", MaxPool2D(2), [x])
    x = net.add("flatten", Flatten(), [x])
    x = net.add("fc6", FullyConnected(4096), [x])
    x = net.add("fc7", FullyConnected(4096), [x])
    net.add("fc8", FullyConnected(num_classes), [x])
    return net


#: All auxiliary model builders keyed by name (GoogLeNet lives in
#: :mod:`repro.cnn.googlenet`).
MODEL_BUILDERS = {
    "lenet5": build_lenet5,
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
}
