"""Differential verification of the steady-state simulation engine.

The steady-state engine (:class:`~repro.sim.modes.SimMode.STEADY_STATE`)
claims a strong equivalence: for any plan and any iteration count, its
fast-forwarded run produces *exactly* the same aggregate measurements as
the event-by-event full unroll -- identical traffic counters, energy,
spills, lateness and realized makespan. This module machine-checks that
claim the same way :mod:`repro.verify.oracle` checks the DP allocator:
run both engines on the same plan and compare their
:meth:`~repro.sim.executor.ExecutionTrace.aggregate_signature` mappings
field by field.

A mismatch is a *simulator* bug, not a schedule bug -- it means the
fingerprint convergence rule accepted a machine state that was not
actually periodic, or the O(1) splice replayed the wrong per-round
deltas. Either would silently corrupt every simulation-backed experiment,
which is why this check rides in the ``python -m repro.verify`` CI gate
(``--sim``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.paraconv import ParaConvResult
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

#: iteration counts exercised by default: trivial (no steady state can
#: engage), short (transient-dominated) and paper-scale (fast-forward
#: dominates when the workload converges).
DEFAULT_SIM_ITERATIONS: Tuple[int, ...] = (1, 20, 1000)


@dataclass(frozen=True)
class SimMismatch:
    """One aggregate field where the two engines disagreed."""

    field: str
    full_value: object
    steady_value: object

    def describe(self) -> str:
        return (
            f"{self.field}: full={self.full_value!r} "
            f"steady={self.steady_value!r}"
        )


@dataclass
class SimDifferentialReport:
    """Outcome of one full-vs-steady comparison on one plan."""

    workload: str
    iterations: int
    mismatches: List[SimMismatch] = field(default_factory=list)
    #: steady-engine observability (None converged_round: the engine ran
    #: the whole horizon event by event, which is still a valid -- if
    #: unaccelerated -- outcome).
    converged_round: Optional[int] = None
    converged_period: Optional[int] = None
    rounds_fast_forwarded: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "iterations": self.iterations,
            "ok": self.ok,
            "mismatches": [
                {
                    "field": m.field,
                    "full": repr(m.full_value),
                    "steady": repr(m.steady_value),
                }
                for m in self.mismatches
            ],
            "converged_round": self.converged_round,
            "converged_period": self.converged_period,
            "rounds_fast_forwarded": self.rounds_fast_forwarded,
        }

    def describe(self) -> str:
        ff = (
            f"converged@{self.converged_round}"
            f"(q={self.converged_period}) "
            f"ff={self.rounds_fast_forwarded}"
            if self.converged_round is not None
            else "no-convergence"
        )
        if self.ok:
            return f"{self.workload} N={self.iterations}: ok [{ff}]"
        details = "; ".join(m.describe() for m in self.mismatches)
        return f"{self.workload} N={self.iterations}: MISMATCH [{ff}] {details}"


def differential_simulate(
    plan: ParaConvResult,
    config: Optional[PimConfig] = None,
    iterations: int = 1000,
    num_vaults: int = 32,
) -> SimDifferentialReport:
    """Compare full-unroll and steady-state aggregates on one plan.

    Both engines run from a fresh machine with a :class:`NullSink` (the
    signature is sink-independent by construction). Every field of
    :meth:`~repro.sim.executor.ExecutionTrace.aggregate_signature` must
    match exactly -- no tolerance: the fast-forward splice is integer
    arithmetic, so any deviation at all is a bug.
    """
    machine = config or plan.config
    full = ScheduleExecutor(
        machine, num_vaults=num_vaults, mode=SimMode.FULL_UNROLL
    ).execute(plan, iterations=iterations, sink=NullSink())
    steady_trace = ScheduleExecutor(
        machine, num_vaults=num_vaults, mode=SimMode.STEADY_STATE
    ).execute(plan, iterations=iterations, sink=NullSink())
    report = SimDifferentialReport(
        workload=plan.graph.name,
        iterations=iterations,
        converged_round=steady_trace.converged_round,
        converged_period=steady_trace.converged_period,
        rounds_fast_forwarded=steady_trace.rounds_fast_forwarded,
    )
    reference = full.aggregate_signature()
    candidate = steady_trace.aggregate_signature()
    for key in sorted(set(reference) | set(candidate)):
        lhs = reference.get(key)
        rhs = candidate.get(key)
        if lhs != rhs:
            report.mismatches.append(
                SimMismatch(field=key, full_value=lhs, steady_value=rhs)
            )
    return report


def sim_differential_battery(
    plan: ParaConvResult,
    config: Optional[PimConfig] = None,
    iteration_counts: Sequence[int] = DEFAULT_SIM_ITERATIONS,
    num_vaults: int = 32,
) -> List[SimDifferentialReport]:
    """One plan across several batch sizes (transient and steady regimes)."""
    return [
        differential_simulate(
            plan, config=config, iterations=n, num_vaults=num_vaults
        )
        for n in iteration_counts
    ]
