"""Differential verification of the steady-state simulation engine.

The steady-state engine (:class:`~repro.sim.modes.SimMode.STEADY_STATE`)
claims a strong equivalence: for any plan and any iteration count, its
fast-forwarded run produces *exactly* the same aggregate measurements as
the event-by-event full unroll -- identical traffic counters, energy,
spills, lateness and realized makespan. This module machine-checks that
claim the same way :mod:`repro.verify.oracle` checks the DP allocator:
run both engines on the same plan and compare their
:meth:`~repro.sim.executor.ExecutionTrace.aggregate_signature` mappings
field by field.

A mismatch is a *simulator* bug, not a schedule bug -- it means the
fingerprint convergence rule accepted a machine state that was not
actually periodic, or the O(1) splice replayed the wrong per-round
deltas. Either would silently corrupt every simulation-backed experiment,
which is why this check rides in the ``python -m repro.verify`` CI gate
(``--sim``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.paraconv import ParaConvResult
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

#: iteration counts exercised by default: trivial (no steady state can
#: engage), short (transient-dominated) and paper-scale (fast-forward
#: dominates when the workload converges).
DEFAULT_SIM_ITERATIONS: Tuple[int, ...] = (1, 20, 1000)

#: candidate engines held to the full-unroll oracle, by mode name. The
#: columnar pair must match not only the aggregate signature but also
#: the steady engine's convergence observables (round, period,
#: fingerprint digest) -- the array engine re-derives them from its own
#: canonical form, so equality is a real cross-implementation check.
DEFAULT_CANDIDATE_MODES: Tuple[str, ...] = (
    "steady", "columnar", "columnar_steady",
)


@dataclass(frozen=True)
class SimMismatch:
    """One aggregate field where the two engines disagreed."""

    field: str
    full_value: object
    steady_value: object

    def describe(self) -> str:
        return (
            f"{self.field}: full={self.full_value!r} "
            f"steady={self.steady_value!r}"
        )


@dataclass
class SimDifferentialReport:
    """Outcome of one full-vs-steady comparison on one plan."""

    workload: str
    iterations: int
    mismatches: List[SimMismatch] = field(default_factory=list)
    #: steady-engine observability (None converged_round: the engine ran
    #: the whole horizon event by event, which is still a valid -- if
    #: unaccelerated -- outcome).
    converged_round: Optional[int] = None
    converged_period: Optional[int] = None
    rounds_fast_forwarded: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "iterations": self.iterations,
            "ok": self.ok,
            "mismatches": [
                {
                    "field": m.field,
                    "full": repr(m.full_value),
                    "steady": repr(m.steady_value),
                }
                for m in self.mismatches
            ],
            "converged_round": self.converged_round,
            "converged_period": self.converged_period,
            "rounds_fast_forwarded": self.rounds_fast_forwarded,
        }

    def describe(self) -> str:
        ff = (
            f"converged@{self.converged_round}"
            f"(q={self.converged_period}) "
            f"ff={self.rounds_fast_forwarded}"
            if self.converged_round is not None
            else "no-convergence"
        )
        if self.ok:
            return f"{self.workload} N={self.iterations}: ok [{ff}]"
        details = "; ".join(m.describe() for m in self.mismatches)
        return f"{self.workload} N={self.iterations}: MISMATCH [{ff}] {details}"


def differential_simulate(
    plan: ParaConvResult,
    config: Optional[PimConfig] = None,
    iterations: int = 1000,
    num_vaults: int = 32,
    modes: Sequence[str] = DEFAULT_CANDIDATE_MODES,
) -> SimDifferentialReport:
    """Hold every candidate engine to the full-unroll oracle on one plan.

    All engines run from a fresh machine with a :class:`NullSink` (the
    signature is sink-independent by construction). Every field of
    :meth:`~repro.sim.executor.ExecutionTrace.aggregate_signature` must
    match exactly -- no tolerance: both the fast-forward splice and the
    columnar timelines are integer arithmetic, so any deviation at all
    is a bug. Mismatch fields from non-``steady`` candidates are
    prefixed with the mode name (e.g. ``columnar:events_processed``).

    Beyond the signature, the two steady-detecting engines must agree on
    their convergence observables (round, period, fast-forwarded round
    count and fingerprint digest): the columnar engine computes its
    canonical form from timeline arrays, so this equality is a genuine
    cross-implementation check of the convergence rule itself.
    """
    machine = config or plan.config

    def run(mode: str):
        return ScheduleExecutor(
            machine, num_vaults=num_vaults, mode=SimMode.from_name(mode)
        ).execute(plan, iterations=iterations, sink=NullSink())

    full = run("full")
    reference = full.aggregate_signature()
    traces = {mode: run(mode) for mode in modes}
    steady_trace = traces.get("steady")
    report = SimDifferentialReport(
        workload=plan.graph.name,
        iterations=iterations,
        converged_round=(
            steady_trace.converged_round if steady_trace else None
        ),
        converged_period=(
            steady_trace.converged_period if steady_trace else None
        ),
        rounds_fast_forwarded=(
            steady_trace.rounds_fast_forwarded if steady_trace else 0
        ),
    )
    for mode, trace in traces.items():
        prefix = "" if mode == "steady" else f"{mode}:"
        candidate = trace.aggregate_signature()
        for key in sorted(set(reference) | set(candidate)):
            lhs = reference.get(key)
            rhs = candidate.get(key)
            if lhs != rhs:
                report.mismatches.append(SimMismatch(
                    field=f"{prefix}{key}", full_value=lhs, steady_value=rhs
                ))
    columnar_steady = traces.get("columnar_steady")
    if steady_trace is not None and columnar_steady is not None:
        for observable in (
            "converged_round", "converged_period",
            "rounds_fast_forwarded", "steady_fingerprint",
            "rounds_simulated",
        ):
            lhs = getattr(steady_trace, observable)
            rhs = getattr(columnar_steady, observable)
            if lhs != rhs:
                report.mismatches.append(SimMismatch(
                    field=f"columnar_steady:{observable}",
                    full_value=lhs,
                    steady_value=rhs,
                ))
    return report


def sim_differential_battery(
    plan: ParaConvResult,
    config: Optional[PimConfig] = None,
    iteration_counts: Sequence[int] = DEFAULT_SIM_ITERATIONS,
    num_vaults: int = 32,
) -> List[SimDifferentialReport]:
    """One plan across several batch sizes (transient and steady regimes)."""
    return [
        differential_simulate(
            plan, config=config, iterations=n, num_vaults=num_vaults
        )
        for n in iteration_counts
    ]
