"""Structured verification outcomes.

Every invariant check in :mod:`repro.verify.validator` reports its findings
as :class:`Violation` records collected into a :class:`VerificationReport`
instead of raising on the first problem. A report distinguishes *errors*
(the schedule breaks a paper invariant — the plan must not be served) from
*warnings* (a documented model gap, e.g. the paper's single-charge cache
accounting admitting transient liveness overflows) so callers can gate on
exactly the guarantees they need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a violation is.

    ``ERROR`` — a hard invariant of the paper (or of this reproduction's
    schedule semantics) is broken; the plan is not safe to execute.
    ``WARNING`` — a soft/model-gap finding: the plan matches the paper's
    own accounting but a stricter analysis (e.g. liveness-exact cache
    occupancy) disagrees. Warnings do not fail a report unless the caller
    opts into strict mode.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributed to a named check.

    Attributes:
        check: catalog name of the check that fired (see
            :data:`repro.verify.validator.CHECK_CATALOG`).
        severity: :class:`Severity` of the finding.
        message: human-readable description with the observed values.
        subject: optional locus — an ``op_id``, an edge key tuple, or any
            JSON-able identifier of the offending schedule element.
    """

    check: str
    severity: Severity
    message: str
    subject: Optional[Any] = None

    def as_dict(self) -> Dict[str, Any]:
        subject = self.subject
        if isinstance(subject, tuple):
            subject = list(subject)
        return {
            "check": self.check,
            "severity": self.severity.value,
            "message": self.message,
            "subject": subject,
        }

    def __str__(self) -> str:
        where = f" @ {self.subject}" if self.subject is not None else ""
        return f"[{self.severity.value}:{self.check}]{where} {self.message}"


class VerificationError(ValueError):
    """Raised by :meth:`VerificationReport.raise_if_failed` on errors.

    Carries the failing report so programmatic callers (the serving
    runtime, the CLI) can still inspect every violation.
    """

    def __init__(self, report: "VerificationReport"):
        self.report = report
        errors = report.errors()
        preview = "; ".join(str(v) for v in errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        super().__init__(
            f"schedule verification failed with {len(errors)} error(s): "
            f"{preview}{more}"
        )


@dataclass
class VerificationReport:
    """Outcome of running the full check catalog against one plan.

    Attributes:
        subject: label of what was verified (workload / plan identity).
        checks_run: catalog names executed, in order.
        checks_skipped: checks intentionally not applied (with the reason),
            e.g. capacity feasibility under a capacity-oblivious allocator.
        violations: every finding, errors and warnings alike.
    """

    subject: str = ""
    checks_run: List[str] = field(default_factory=list)
    checks_skipped: Dict[str, str] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    # -- recording -----------------------------------------------------
    def add(
        self,
        check: str,
        message: str,
        subject: Optional[Any] = None,
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.violations.append(Violation(check, severity, message, subject))

    def skip(self, check: str, reason: str) -> None:
        self.checks_skipped[check] = reason

    def merge(self, other: "VerificationReport") -> None:
        """Fold another report's findings into this one."""
        self.checks_run.extend(other.checks_run)
        self.checks_skipped.update(other.checks_skipped)
        self.violations.extend(other.violations)

    # -- interrogation -------------------------------------------------
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]

    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity violation was found."""
        return not self.errors()

    @property
    def clean(self) -> bool:
        """True when no violation of any severity was found."""
        return not self.violations

    def by_check(self) -> Dict[str, List[Violation]]:
        grouped: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.check, []).append(violation)
        return grouped

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` when the report has errors."""
        if not self.ok:
            raise VerificationError(self)

    # -- rendering -----------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "checks_skipped": dict(self.checks_skipped),
            "num_errors": len(self.errors()),
            "num_warnings": len(self.warnings()),
            "violations": [v.as_dict() for v in self.violations],
        }

    def summary(self, max_violations: int = 10) -> str:
        head = (
            f"{self.subject or 'schedule'}: "
            f"{len(self.checks_run)} checks, "
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"
        )
        lines = [head]
        for violation in self.violations[:max_violations]:
            lines.append(f"  {violation}")
        hidden = len(self.violations) - max_violations
        if hidden > 0:
            lines.append(f"  ... {hidden} more")
        for check, reason in self.checks_skipped.items():
            lines.append(f"  [skipped:{check}] {reason}")
        return "\n".join(lines)


def worst_of(reports: Sequence[VerificationReport]) -> VerificationReport:
    """Aggregate many reports into one (used by the sweep runner)."""
    merged = VerificationReport(subject="aggregate")
    for report in reports:
        merged.merge(report)
    return merged
