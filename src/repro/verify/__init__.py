"""Machine verification of Para-CONV schedules and allocations.

Three independent instruments, designed to be composed:

* :class:`ScheduleValidator` — checks a compiled plan against the paper's
  structural invariants (dependency order across retimed iteration
  instances, PE exclusion, cache capacity, prologue shape, profit
  accounting) and returns a structured :class:`VerificationReport`.
* :func:`exhaustive_allocate` / :func:`differential_check` — a brute-force
  subset oracle that pins the DP allocator to the true optimum on small
  instances and to dominance relations on large ones.
* :func:`inject_faults` / :func:`fault_detection_report` — a seeded
  mutation corpus that scores the validator's ability to catch every
  class of planted invariant violation.

:func:`verify_workload` and :func:`run_verification_sweep` drive all three
over the paper's benchmarks; ``python -m repro.verify`` is the CLI front
end and CI gate.
"""

from repro.verify.differential_failover import (
    FailoverDifferentialReport,
    FailoverMismatch,
    failover_differential,
)
from repro.verify.differential_fleet import (
    FleetDifferentialReport,
    FleetReplayMismatch,
    fleet_differential,
)
from repro.verify.differential_rewire import (
    RandwiredPropertyReport,
    RewireCaseReport,
    RewireDifferentialReport,
    RewireMismatch,
    randwired_property_battery,
    rewire_case,
    rewire_differential,
)
from repro.verify.differential_tenancy import (
    TENANCY_SCENARIOS,
    TenancyDifferentialReport,
    TenancyMismatch,
    TenancyScenarioReport,
    tenancy_differential,
)
from repro.verify.differential_sim import (
    DEFAULT_SIM_ITERATIONS,
    SimDifferentialReport,
    SimMismatch,
    differential_simulate,
    sim_differential_battery,
)
from repro.verify.hooks import (
    check_allocation_feasible,
    check_kernel_feasible,
    check_retiming_legal,
    check_schedule_semantics,
    check_theorem_bounds,
    compile_invariant_hooks,
)
from repro.verify.mutation import (
    MUTATORS,
    FaultDetectionReport,
    InjectedFault,
    clone_result,
    fault_detection_report,
    inject_faults,
)
from repro.verify.oracle import (
    DEFAULT_EXHAUSTIVE_LIMIT,
    DifferentialReport,
    OracleSizeError,
    differential_check,
    exhaustive_allocate,
)
from repro.verify.runner import (
    SweepOutcome,
    WorkloadVerification,
    run_verification_sweep,
    verify_workload,
)
from repro.verify.validator import (
    CAPACITY_OBLIVIOUS_METHODS,
    CHECK_CATALOG,
    ScheduleValidator,
    verify_result,
)
from repro.verify.violations import (
    Severity,
    VerificationError,
    VerificationReport,
    Violation,
    worst_of,
)

__all__ = [
    "CAPACITY_OBLIVIOUS_METHODS",
    "CHECK_CATALOG",
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "DEFAULT_SIM_ITERATIONS",
    "DifferentialReport",
    "FailoverDifferentialReport",
    "FailoverMismatch",
    "FleetDifferentialReport",
    "FleetReplayMismatch",
    "RandwiredPropertyReport",
    "RewireCaseReport",
    "RewireDifferentialReport",
    "RewireMismatch",
    "SimDifferentialReport",
    "SimMismatch",
    "TENANCY_SCENARIOS",
    "TenancyDifferentialReport",
    "TenancyMismatch",
    "TenancyScenarioReport",
    "FaultDetectionReport",
    "InjectedFault",
    "MUTATORS",
    "OracleSizeError",
    "ScheduleValidator",
    "Severity",
    "SweepOutcome",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "WorkloadVerification",
    "check_allocation_feasible",
    "check_kernel_feasible",
    "check_retiming_legal",
    "check_schedule_semantics",
    "check_theorem_bounds",
    "clone_result",
    "compile_invariant_hooks",
    "differential_check",
    "differential_simulate",
    "exhaustive_allocate",
    "failover_differential",
    "fault_detection_report",
    "fleet_differential",
    "inject_faults",
    "randwired_property_battery",
    "rewire_case",
    "rewire_differential",
    "run_verification_sweep",
    "sim_differential_battery",
    "tenancy_differential",
    "verify_result",
    "verify_workload",
    "worst_of",
]
