"""Fleet differential: sharded serving must equal single-server serving.

The fleet tier claims it adds *distribution* without changing *results*:
routing, admission, failover and the shared plan store are orthogonal to
what each request computes. This module machine-checks three properties
end to end on a real traced run (including a mid-trace worker kill):

1. **Per-request replay equivalence** — every batch a shard executed is
   replayed, with identical composition, on a fresh standalone
   :class:`~repro.runtime.server.BatchingServer` over the same logical
   machine; each request's ``sim_latency`` and batch size must match
   exactly. The fleet adds queueing *delay*, never different *service*.
2. **Request conservation** — accounting closes (``lost == 0``) and every
   served fleet id is unique: worker death re-routes, never drops or
   duplicates.
3. **Warm everywhere** — with plan-affinity routing over a shared store,
   the whole fleet compiles each distinct plan exactly once (the store
   holds exactly one artifact per workload), and a cold replica shard
   bound to the same store serves every workload with *zero* compiles —
   every miss in its memory tier is a disk hit.

A mismatch is a fleet bug (routing broke plan identity, failover spliced
a queue, the store published a torn artifact), which is why this check
rides in ``python -m repro.verify --fleet``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.pim.config import PimConfig
from repro.runtime.server import BatchingServer, RequestResult
from repro.fleet.loadgen import FleetLoadGenerator
from repro.fleet.router import FleetRouter
from repro.fleet.slo import SloClass
from repro.fleet.store import SharedPlanStore
from repro.fleet.worker import FleetWorker

__all__ = [
    "FleetDifferentialReport",
    "FleetReplayMismatch",
    "fleet_differential",
]

#: Default workloads: paper models whose steady-state sim converges, so
#: the differential runs in seconds (mirrors the fleet bench defaults).
DEFAULT_FLEET_WORKLOADS = (
    "flower",
    "lenet5",
    "stock-predict",
    "string-matching",
)


@dataclass(frozen=True)
class FleetReplayMismatch:
    """One divergence between a fleet batch and its standalone replay."""

    worker_id: str
    batch_id: int
    request_id: int
    fleet_field: str
    fleet_value: object
    baseline_value: object

    def describe(self) -> str:
        return (
            f"{self.worker_id} batch {self.batch_id} request "
            f"{self.request_id}: {self.fleet_field} fleet="
            f"{self.fleet_value!r} baseline={self.baseline_value!r}"
        )


@dataclass
class FleetDifferentialReport:
    """Outcome of one fleet-vs-single-server differential run."""

    workloads: List[str]
    num_workers: int
    requests: int
    killed_worker: Optional[str] = None
    rerouted: int = 0
    accounting: Dict[str, int] = field(default_factory=dict)
    #: fleet batches replayed on the standalone baseline.
    replayed_batches: int = 0
    mismatches: List[FleetReplayMismatch] = field(default_factory=list)
    #: served fleet ids seen more than once (must be empty).
    duplicate_fleet_ids: List[int] = field(default_factory=list)
    #: admitted fleet ids never served (must be empty).
    missing_fleet_ids: List[int] = field(default_factory=list)
    #: plans published in the shared store (must equal len(workloads)).
    store_plans: int = 0
    #: compiles across every shard cache (must equal len(workloads):
    #: affinity + the shared store mean one compile per plan, fleet-wide,
    #: worker death included).
    fleet_compiles: int = 0
    #: compiles a cold replica shard needed (must be 0: warm everywhere).
    cold_replica_compiles: int = 0
    #: the cold replica's disk hits (every workload, served from store).
    cold_replica_disk_hits: int = 0
    #: unexpected exception text (None on a clean run).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None or self.mismatches:
            return False
        if self.duplicate_fleet_ids or self.missing_fleet_ids:
            return False
        if self.accounting.get("lost", 1) != 0:
            return False
        if self.store_plans != len(self.workloads):
            return False
        if self.fleet_compiles != len(self.workloads):
            return False
        if self.cold_replica_compiles != 0:
            return False
        return self.cold_replica_disk_hits == len(self.workloads)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workloads": list(self.workloads),
            "num_workers": self.num_workers,
            "requests": self.requests,
            "killed_worker": self.killed_worker,
            "rerouted": self.rerouted,
            "ok": self.ok,
            "accounting": dict(self.accounting),
            "replayed_batches": self.replayed_batches,
            "mismatches": [m.describe() for m in self.mismatches],
            "duplicate_fleet_ids": list(self.duplicate_fleet_ids),
            "missing_fleet_ids": list(self.missing_fleet_ids),
            "store_plans": self.store_plans,
            "fleet_compiles": self.fleet_compiles,
            "cold_replica_compiles": self.cold_replica_compiles,
            "cold_replica_disk_hits": self.cold_replica_disk_hits,
            "error": self.error,
        }

    def describe(self) -> str:
        tag = (
            f"fleet[{self.num_workers}w x {len(self.workloads)}wl "
            f"N={self.requests}"
            + (f" kill={self.killed_worker}" if self.killed_worker else "")
            + "]"
        )
        if self.ok:
            return (
                f"{tag}: ok [{self.replayed_batches} batches replayed, "
                f"{self.fleet_compiles} compiles fleet-wide, cold replica "
                f"0 compiles / {self.cold_replica_disk_hits} disk hits]"
            )
        if self.error is not None:
            return f"{tag}: ERROR {self.error}"
        details = "; ".join(m.describe() for m in self.mismatches[:5])
        return (
            f"{tag}: FAIL lost={self.accounting.get('lost')} "
            f"dupes={len(self.duplicate_fleet_ids)} "
            f"missing={len(self.missing_fleet_ids)} "
            f"compiles={self.fleet_compiles}/{len(self.workloads)} "
            f"cold={self.cold_replica_compiles}rc {details}"
        )


def _replay_worker(
    worker: FleetWorker,
    batch_window: int,
    allocator: str,
    report: FleetDifferentialReport,
) -> None:
    """Replay one shard's batch history on a standalone baseline server.

    The fleet's batch composition is taken as given (grouped by
    ``batch_id`` from the shard's retained results); each batch is
    re-submitted to a fresh private-cache server over the same logical
    machine and executed as one batch. Same composition in, same
    per-request ``sim_latency`` out — or the fleet changed *what* was
    computed, not just when.
    """
    results = worker.server.results
    if not results:
        return
    baseline = BatchingServer(
        worker.serving_config,
        batch_window=batch_window,
        max_queue=max(batch_window, worker.server.max_queue),
        allocator=allocator,
        num_vaults=worker.num_vaults,
    )
    batches: Dict[int, List[RequestResult]] = {}
    for res in results:
        batches.setdefault(res.batch_id, []).append(res)
    for batch_id in sorted(batches):
        fleet_batch = batches[batch_id]
        for res in fleet_batch:
            baseline.submit(
                res.request.workload, iterations=res.request.iterations
            )
        replay = baseline.step()
        report.replayed_batches += 1
        if len(replay) != len(fleet_batch):  # pragma: no cover - defensive
            report.mismatches.append(
                FleetReplayMismatch(
                    worker_id=worker.worker_id,
                    batch_id=batch_id,
                    request_id=-1,
                    fleet_field="batch_size",
                    fleet_value=len(fleet_batch),
                    baseline_value=len(replay),
                )
            )
            continue
        for fleet_res, base_res in zip(fleet_batch, replay):
            for field_name in ("sim_latency", "batch_size"):
                fleet_value = getattr(fleet_res, field_name)
                base_value = getattr(base_res, field_name)
                if fleet_value != base_value:
                    report.mismatches.append(
                        FleetReplayMismatch(
                            worker_id=worker.worker_id,
                            batch_id=batch_id,
                            request_id=fleet_res.request.request_id,
                            fleet_field=field_name,
                            fleet_value=fleet_value,
                            baseline_value=base_value,
                        )
                    )


def fleet_differential(
    workloads: Sequence[str] = DEFAULT_FLEET_WORKLOADS,
    num_workers: int = 4,
    num_pes: int = 64,
    num_vaults: int = 32,
    requests: int = 400,
    batch_window: int = 16,
    seed: int = 0,
    kill_worker: bool = True,
    allocator: str = "dp",
    store_dir: Optional[str] = None,
) -> FleetDifferentialReport:
    """Run the fleet-vs-single-server differential.

    Drives a deterministic trace through a sharded fleet over one
    physical machine (killing the last shard mid-trace when
    ``kill_worker``), then checks replay equivalence, request
    conservation and the warm-everywhere property. ``store_dir`` may pin
    the shared store to a caller-owned directory; a temp dir is used and
    cleaned up otherwise.
    """
    report = FleetDifferentialReport(
        workloads=list(workloads),
        num_workers=num_workers,
        requests=requests,
    )
    if num_pes % num_workers != 0:
        # Unequal shards have different logical shapes and therefore
        # different plan identities — the warm-everywhere property only
        # holds between shape-identical shards.
        report.error = (
            f"num_pes ({num_pes}) must divide evenly into "
            f"{num_workers} workers"
        )
        return report
    owned_tmp: Optional[tempfile.TemporaryDirectory] = None
    if store_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="fleet-diff-")
        store_dir = owned_tmp.name
    try:
        store = SharedPlanStore(store_dir)
        machine = PimConfig(num_pes=num_pes)
        shards = machine.split(num_workers, num_vaults=num_vaults)
        workers = [
            FleetWorker(
                f"worker-{index}",
                shard,
                store=store,
                batch_window=batch_window,
                max_queue=max(4 * requests, 64),
                allocator=allocator,
            )
            for index, shard in enumerate(shards)
        ]
        router = FleetRouter(workers)
        generator = FleetLoadGenerator(list(workloads), seed=seed)

        served_ids: List[int] = []
        admitted = 0
        kill_at = requests // 2 if kill_worker and num_workers > 1 else None
        victim = workers[-1].worker_id if kill_at is not None else None
        for trace in generator.requests(requests):
            router.advance_to(trace.arrival_units)
            if admitted == kill_at and victim is not None:
                report.killed_worker = victim
                report.rerouted = router.kill_worker(victim)
            router.submit(trace.workload, slo=trace.slo)
            admitted += 1
            if admitted % batch_window == 0:
                served_ids.extend(r.fleet_id for r in router.pump())
        served_ids.extend(r.fleet_id for r in router.drain())
        report.accounting = router.accounting()

        # 2. conservation: unique fleet ids, none missing.
        seen: Dict[int, int] = {}
        for fleet_id in served_ids:
            seen[fleet_id] = seen.get(fleet_id, 0) + 1
        report.duplicate_fleet_ids = sorted(
            fleet_id for fleet_id, count in seen.items() if count > 1
        )
        report.missing_fleet_ids = sorted(
            fleet_id for fleet_id in range(1, admitted + 1)
            if fleet_id not in seen
        )

        # 1. per-request replay equivalence, shard by shard.
        for worker in workers:
            _replay_worker(worker, batch_window, allocator, report)

        # 3. warm everywhere: one compile per plan fleet-wide, and a
        # cold replica shard served entirely from the shared store.
        report.store_plans = len(store)
        # A disk hit counts as a cache *hit* (hydrated, not compiled),
        # so misses count exactly the compiles a shard performed.
        report.fleet_compiles = sum(w.cache.stats.misses for w in workers)
        replica = FleetWorker(
            "cold-replica",
            shards[0],
            store=store,
            batch_window=batch_window,
            allocator=allocator,
        )
        for index, workload in enumerate(workloads):
            replica.submit(
                workload,
                iterations=1,
                slo=SloClass.STANDARD,
                arrival_units=0,
                fleet_id=-(index + 1),
            )
            replica.pump(0)
        report.cold_replica_compiles = replica.cache.stats.misses
        report.cold_replica_disk_hits = replica.cache.stats.disk_hits
    except Exception as exc:  # noqa: BLE001 — differential must report, not crash
        report.error = f"{type(exc).__name__}: {exc}"
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    return report
