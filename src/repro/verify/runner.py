"""Benchmark x allocator verification sweeps.

Ties the three verification instruments together over the paper's
workloads: for every (benchmark, allocator) pair the full pipeline is run
and the resulting plan pushed through the :class:`ScheduleValidator`; per
benchmark the allocation instance is differentially checked against the
brute-force oracle (or dominance on large instances); and per benchmark a
seeded fault-injection corpus scores the validator's detection rate.

Used by ``python -m repro.verify`` and by the acceptance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cnn.workloads import load_workload
from repro.core.allocation import ALLOCATORS, AllocationProblem
from repro.core.paraconv import ParaConv, ParaConvResult
from repro.core.retiming import analyze_edges
from repro.graph.generators import BENCHMARK_SIZES
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.verify.differential_failover import (
    FailoverDifferentialReport,
    failover_differential,
)
from repro.verify.differential_search import (
    SearchDifferentialReport,
    search_differential,
)
from repro.verify.differential_sim import (
    DEFAULT_SIM_ITERATIONS,
    SimDifferentialReport,
    sim_differential_battery,
)
from repro.verify.mutation import FaultDetectionReport, fault_detection_report
from repro.verify.oracle import DifferentialReport, differential_check
from repro.verify.validator import ScheduleValidator
from repro.verify.violations import VerificationReport


@dataclass
class WorkloadVerification:
    """Everything verified about one workload on one machine."""

    workload: str
    reports: Dict[str, VerificationReport] = field(default_factory=dict)
    differential: Optional[DifferentialReport] = None
    faults: Optional[FaultDetectionReport] = None
    #: full-unroll vs steady-state engine comparisons, keyed by allocator
    #: (empty when the simulation stage was not requested).
    simulation: Dict[str, List[SimDifferentialReport]] = field(
        default_factory=dict
    )
    #: runtime failover differential: faulted-then-failed-over serving
    #: must equal a cold compile on the degraded machine (None when the
    #: failover stage was not requested).
    failover: Optional[FailoverDifferentialReport] = None
    #: search-allocator battery: oracle equality, DP lower bound, anytime
    #: monotonicity and plan validity per machine variant (empty when the
    #: search stage was not requested).
    search: List[SearchDifferentialReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if any(not report.ok for report in self.reports.values()):
            return False
        if self.differential is not None and not self.differential.ok:
            return False
        if self.faults is not None and not self.faults.ok:
            return False
        if self.failover is not None and not self.failover.ok:
            return False
        if any(not report.ok for report in self.search):
            return False
        for battery in self.simulation.values():
            if any(not report.ok for report in battery):
                return False
        return True

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "ok": self.ok,
            "validator": {
                name: report.as_dict() for name, report in self.reports.items()
            },
            "differential": (
                self.differential.as_dict() if self.differential else None
            ),
            "faults": self.faults.as_dict() if self.faults else None,
            "failover": self.failover.as_dict() if self.failover else None,
            "search": [report.as_dict() for report in self.search],
            "simulation": {
                name: [report.as_dict() for report in battery]
                for name, battery in self.simulation.items()
            },
        }


@dataclass
class SweepOutcome:
    """Aggregate of a whole verification sweep."""

    config: PimConfig
    allocators: List[str]
    workloads: List[WorkloadVerification] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(w.ok for w in self.workloads)

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "allocators": list(self.allocators),
            "ok": self.ok,
            "workloads": [w.as_dict() for w in self.workloads],
        }

    def summary(self) -> str:
        lines = [
            f"verification sweep on {self.config.describe()}",
            f"allocators: {', '.join(self.allocators)}",
        ]
        for workload in self.workloads:
            status = "ok" if workload.ok else "FAIL"
            errors = sum(
                len(r.errors()) for r in workload.reports.values()
            )
            warnings = sum(
                len(r.warnings()) for r in workload.reports.values()
            )
            extras = []
            if workload.differential is not None:
                mode = (
                    "exhaustive"
                    if workload.differential.exhaustive_checked
                    else "dominance"
                )
                verdict = "ok" if workload.differential.ok else "FAIL"
                extras.append(f"oracle[{mode}]={verdict}")
            if workload.faults is not None:
                extras.append(
                    f"faults={len(workload.faults.detected)}/"
                    f"{len(workload.faults.detected) + len(workload.faults.missed)}"
                )
            if workload.failover is not None:
                verdict = "ok" if workload.failover.ok else "FAIL"
                warm = (
                    f",warm={workload.failover.warm_recompiles}rc"
                    if workload.failover.warm_recompiles is not None
                    else ""
                )
                extras.append(
                    f"failover[{workload.failover.unit}"
                    f"{workload.failover.unit_id}"
                    f"@{workload.failover.fault_iteration}{warm}]={verdict}"
                )
            if workload.simulation:
                batteries = [
                    report
                    for battery in workload.simulation.values()
                    for report in battery
                ]
                passed = sum(1 for r in batteries if r.ok)
                verdict = "ok" if passed == len(batteries) else "FAIL"
                extras.append(f"sim[{passed}/{len(batteries)}]={verdict}")
            if workload.search:
                passed = sum(1 for r in workload.search if r.ok)
                verdict = "ok" if passed == len(workload.search) else "FAIL"
                extras.append(
                    f"search[{passed}/{len(workload.search)}]={verdict}"
                )
            lines.append(
                f"  {workload.workload:<16} {status:<5} "
                f"errors={errors} warnings={warnings} "
                + " ".join(extras)
            )
        lines.append(f"overall: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def verify_workload(
    graph: TaskGraph,
    config: PimConfig,
    allocators: Optional[List[str]] = None,
    validator: Optional[ScheduleValidator] = None,
    oracle_limit: int = 16,
    with_differential: bool = True,
    with_faults: bool = True,
    fault_seed: int = 0,
    with_simulation: bool = False,
    sim_iterations: Optional[List[int]] = None,
    with_failover: bool = False,
    failover_unit: str = "pe",
    failover_unit_id: int = 0,
    failover_iteration: int = 3,
    failover_batch: int = 20,
    with_search: bool = False,
    search_budgets: Optional[List[int]] = None,
) -> WorkloadVerification:
    """Run the full verification battery for one workload.

    The DP plan's width is reused for the other allocators so all of them
    are validated on the same kernel/grouping decision (isolating the
    allocation policy, exactly like the ablation experiments).
    ``with_failover`` adds the runtime fault-injection differential: a
    served batch that hits a fault and fails over must produce the same
    aggregates as a cold compile on the degraded machine, and a warm
    repeat of the same fault must not recompile.
    """
    names = allocators if allocators is not None else sorted(ALLOCATORS)
    validator = validator or ScheduleValidator()
    outcome = WorkloadVerification(workload=graph.name)

    # The DP pipeline picks the operating width; the other allocators are
    # validated at the same width so the sweep isolates allocation policy.
    # The DP compile runs under the per-pass invariant hooks, so a pipeline
    # regression surfaces as a PassInvariantError *naming the broken pass*
    # (the whole-plan validator below only sees the end product).
    from repro.verify.hooks import compile_invariant_hooks

    dp_plan: ParaConvResult = ParaConv(
        config, validate=False, invariant_hooks=compile_invariant_hooks()
    ).run(graph)
    plans: Dict[str, ParaConvResult] = {}
    for name in names:
        if name == "dp":
            plan = dp_plan
        else:
            plan = ParaConv(
                config, allocator_name=name, validate=False
            ).run_at_width(graph, dp_plan.group_width)
        plans[name] = plan
        outcome.reports[name] = validator.validate(plan)

    if with_simulation:
        counts = (
            list(sim_iterations)
            if sim_iterations is not None
            else list(DEFAULT_SIM_ITERATIONS)
        )
        for name, plan in plans.items():
            outcome.simulation[name] = sim_differential_battery(
                plan, config=config, iteration_counts=counts
            )

    if with_differential:
        kernel = dp_plan.schedule.kernel
        timings = analyze_edges(graph, kernel, config)
        capacity = config.total_cache_slots // dp_plan.num_groups
        problem = AllocationProblem.from_timings(timings, capacity)
        outcome.differential = differential_check(
            problem, exhaustive_limit=oracle_limit
        )
    if with_faults:
        outcome.faults = fault_detection_report(
            dp_plan, validator=validator, seed=fault_seed
        )
    if with_failover:
        outcome.failover = failover_differential(
            graph,
            config,
            unit=failover_unit,
            unit_id=failover_unit_id,
            fault_iteration=failover_iteration,
            iterations=failover_batch,
            validator=validator,
        )
    if with_search:
        outcome.search = search_differential(
            graph,
            config,
            budgets=search_budgets,
            validator=validator,
            oracle_limit=oracle_limit,
            seed=fault_seed,
        )
    return outcome


def run_verification_sweep(
    config: Optional[PimConfig] = None,
    benchmarks: Optional[List[str]] = None,
    allocators: Optional[List[str]] = None,
    validator: Optional[ScheduleValidator] = None,
    oracle_limit: int = 16,
    with_differential: bool = True,
    with_faults: bool = True,
    fault_seed: int = 0,
    with_simulation: bool = False,
    sim_iterations: Optional[List[int]] = None,
    with_failover: bool = False,
    failover_unit: str = "pe",
    failover_unit_id: int = 0,
    failover_iteration: int = 3,
    failover_batch: int = 20,
    with_search: bool = False,
    search_budgets: Optional[List[int]] = None,
) -> SweepOutcome:
    """Verify benchmarks x allocators on one machine configuration.

    ``benchmarks`` accepts any name in the workload registry — the 12
    paper benchmarks (the default sweep), the CNN-derived partitions and
    the ``randwired-*`` irregular-graph stress set all go through the
    identical battery.
    """
    config = config or PimConfig()
    names = benchmarks if benchmarks is not None else list(BENCHMARK_SIZES)
    allocator_names = (
        allocators if allocators is not None else sorted(ALLOCATORS)
    )
    outcome = SweepOutcome(config=config, allocators=allocator_names)
    for name in names:
        graph = load_workload(name)
        outcome.workloads.append(
            verify_workload(
                graph,
                config,
                allocators=allocator_names,
                validator=validator,
                oracle_limit=oracle_limit,
                with_differential=with_differential,
                with_faults=with_faults,
                fault_seed=fault_seed,
                with_simulation=with_simulation,
                sim_iterations=sim_iterations,
                with_failover=with_failover,
                failover_unit=failover_unit,
                failover_unit_id=failover_unit_id,
                failover_iteration=failover_iteration,
                failover_batch=failover_batch,
                with_search=with_search,
                search_budgets=search_budgets,
            )
        )
    return outcome
