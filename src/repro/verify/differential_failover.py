"""Fault-injection differential for the runtime failover path.

The serving stack claims a strong recovery property: when a unit dies
mid-batch, the session degrades the machine to the survivors, recompiles
and replays the batch from iteration zero — and the result is *exactly*
what a cold compile on the degraded configuration would have produced.
No spliced partial work, no drift. This module machine-checks that claim
end to end:

1. serve a batch through an :class:`~repro.runtime.session.InferenceSession`
   carrying a single-event :class:`~repro.pim.faults.FaultModel` (the unit
   dies at a chosen iteration boundary, the session fails over);
2. independently build the degraded machine with
   :meth:`~repro.pim.config.PimConfig.degraded`, compile it from scratch
   and execute the same batch on the full-unroll oracle engine;
3. compare the two :meth:`~repro.sim.executor.ExecutionTrace.aggregate_signature`
   mappings field by field (exact match — the replay is deterministic);
4. push the degraded plan through the full
   :class:`~repro.verify.validator.ScheduleValidator` battery (a degraded
   machine is a smaller-but-ordinary machine; every paper invariant must
   still hold);
5. serve the same faulted batch through a *second* session sharing the
   plan cache and require ``failover_recompiles == 0`` — repeat faults
   must hit the warm degraded plan, or production failover would pay a
   full compile on every strike.

A mismatch is a *failover* bug (stale executor state, mis-compacted
fault trace, wrong cache key), which is why this check rides in
``python -m repro.verify --faults``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.paraconv import ParaConv
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT, FaultModel
from repro.runtime.plan_cache import PlanCache
from repro.runtime.session import InferenceSession
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink
from repro.verify.validator import ScheduleValidator

__all__ = [
    "FailoverDifferentialReport",
    "FailoverMismatch",
    "failover_differential",
]


@dataclass(frozen=True)
class FailoverMismatch:
    """One aggregate field where failover and cold compile disagreed."""

    field: str
    failover_value: object
    cold_value: object

    def describe(self) -> str:
        return (
            f"{self.field}: failover={self.failover_value!r} "
            f"cold={self.cold_value!r}"
        )


@dataclass
class FailoverDifferentialReport:
    """Outcome of one faulted-run vs cold-degraded-compile comparison."""

    workload: str
    unit: str
    unit_id: int
    fault_iteration: int
    iterations: int
    mismatches: List[FailoverMismatch] = field(default_factory=list)
    #: faults the first (cold) session observed — must be exactly 1.
    faults_observed: int = 0
    #: failovers the first session performed — must be exactly 1.
    failovers: int = 0
    #: recompiles the *warm* repeat session needed — must be 0 (the
    #: degraded plan is already in the shared cache).
    warm_recompiles: Optional[int] = None
    #: faults the warm session observed — must be 1 (the trace replays).
    warm_faults: Optional[int] = None
    #: validator errors found in the degraded plan (must be 0).
    validator_errors: int = 0
    #: unexpected exception text (None on a clean run).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None or self.mismatches:
            return False
        if self.faults_observed != 1 or self.failovers != 1:
            return False
        if self.warm_recompiles not in (None, 0):
            return False
        if self.warm_faults not in (None, 1):
            return False
        return self.validator_errors == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "unit": self.unit,
            "unit_id": self.unit_id,
            "fault_iteration": self.fault_iteration,
            "iterations": self.iterations,
            "ok": self.ok,
            "mismatches": [
                {
                    "field": m.field,
                    "failover": repr(m.failover_value),
                    "cold": repr(m.cold_value),
                }
                for m in self.mismatches
            ],
            "faults_observed": self.faults_observed,
            "failovers": self.failovers,
            "warm_recompiles": self.warm_recompiles,
            "warm_faults": self.warm_faults,
            "validator_errors": self.validator_errors,
            "error": self.error,
        }

    def describe(self) -> str:
        tag = (
            f"{self.workload} {self.unit}{self.unit_id}"
            f"@{self.fault_iteration} N={self.iterations}"
        )
        if self.ok:
            warm = (
                f" warm={self.warm_recompiles}rc"
                if self.warm_recompiles is not None
                else ""
            )
            return f"{tag}: ok [1 failover{warm}]"
        if self.error is not None:
            return f"{tag}: ERROR {self.error}"
        details = "; ".join(m.describe() for m in self.mismatches)
        return (
            f"{tag}: FAIL faults={self.faults_observed} "
            f"failovers={self.failovers} warm={self.warm_recompiles} "
            f"validator_errors={self.validator_errors} {details}"
        )


def _degraded_reference(
    config: PimConfig, unit: str, unit_id: int, num_vaults: int
) -> "tuple[PimConfig, int]":
    """The degraded machine built *independently* of the session."""
    if unit == FAULT_UNIT_PE:
        survivors = [p for p in range(config.num_pes) if p != unit_id]
        return config.degraded(survivors), num_vaults
    surviving_vaults = [v for v in range(num_vaults) if v != unit_id]
    return (
        config.degraded(list(range(config.num_pes)), surviving_vaults),
        len(surviving_vaults),
    )


def failover_differential(
    graph: TaskGraph,
    config: PimConfig,
    unit: str = FAULT_UNIT_PE,
    unit_id: int = 0,
    fault_iteration: int = 3,
    iterations: int = 20,
    allocator: str = "dp",
    num_vaults: int = 32,
    cache: Optional[PlanCache] = None,
    validator: Optional[ScheduleValidator] = None,
    check_warm: bool = True,
) -> FailoverDifferentialReport:
    """Assert faulted-then-failed-over == cold compile on degraded config.

    ``cache`` may be shared across calls; a fresh private cache is used
    when omitted so the warm-repeat check is self-contained either way.
    """
    if unit not in (FAULT_UNIT_PE, FAULT_UNIT_VAULT):
        raise ValueError(f"unit must be 'pe' or 'vault', got {unit!r}")
    report = FailoverDifferentialReport(
        workload=graph.name,
        unit=unit,
        unit_id=unit_id,
        fault_iteration=fault_iteration,
        iterations=iterations,
    )
    cache = cache if cache is not None else PlanCache()
    fault_model = FaultModel.single(unit, unit_id, fault_iteration)
    try:
        session = InferenceSession(
            graph,
            config,
            allocator=allocator,
            cache=cache,
            num_vaults=num_vaults,
            fault_model=fault_model,
        )
        session.run(iterations)
        report.faults_observed = session.faults_observed
        report.failovers = session.failovers
        assert session.last_trace is not None

        # Independent cold reference: degrade, compile, full unroll.
        degraded_config, degraded_vaults = _degraded_reference(
            config, unit, unit_id, num_vaults
        )
        cold_plan = ParaConv(degraded_config, allocator_name=allocator).run(
            graph
        )
        cold_trace = ScheduleExecutor(
            degraded_config, num_vaults=degraded_vaults,
            mode=SimMode.FULL_UNROLL,
        ).execute(cold_plan, iterations=iterations, sink=NullSink())

        reference = cold_trace.aggregate_signature()
        candidate = session.last_trace.aggregate_signature()
        for key in sorted(set(reference) | set(candidate)):
            cold_value = reference.get(key)
            failover_value = candidate.get(key)
            if cold_value != failover_value:
                report.mismatches.append(
                    FailoverMismatch(
                        field=key,
                        failover_value=failover_value,
                        cold_value=cold_value,
                    )
                )
        # The session must be serving exactly the reference machine.
        if session.active_config.fingerprint() != degraded_config.fingerprint():
            report.mismatches.append(
                FailoverMismatch(
                    field="config_fingerprint",
                    failover_value=session.active_config.fingerprint(),
                    cold_value=degraded_config.fingerprint(),
                )
            )

        # Degraded plans are ordinary plans: the full invariant battery
        # must pass on the cold reference compile.
        battery = (validator or ScheduleValidator()).validate(cold_plan)
        report.validator_errors = len(battery.errors())

        if check_warm:
            warm = InferenceSession(
                graph,
                config,
                allocator=allocator,
                cache=cache,
                num_vaults=num_vaults,
                fault_model=fault_model,
            )
            warm.run(iterations)
            report.warm_recompiles = warm.failover_recompiles
            report.warm_faults = warm.faults_observed
    except Exception as exc:  # noqa: BLE001 — differential must report, not crash
        report.error = f"{type(exc).__name__}: {exc}"
    return report
