"""Seeded schedule mutation / fault injection.

A validator that accepts everything proves nothing. This module takes a
*valid* compiled plan, applies targeted corruptions — each one seeded and
deterministic — and hands the mutants to :class:`ScheduleValidator`. Every
mutator is constructed to break at least one cataloged invariant, so a
validator that misses any mutant has a hole in its catalog; the
fault-detection score over the corpus must be 1.0.

The corpus deliberately spans every check family: kernel resource faults
(overlapping, stretched, dropped, swapped operations), retiming faults
(negative values, dropped edges, flattened producers), placement faults
(transfer inflation, placement flips), allocation-accounting faults
(profit corruption, cache overfill), and search-candidate faults modeling
a buggy search allocator (phantom cached profit, an internally consistent
but capacity-violating candidate).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.paraconv import ParaConvResult
from repro.core.schedule import PlacedOp
from repro.pim.memory import Placement

EdgeKey = Tuple[int, int]
Mutator = Callable[[ParaConvResult, random.Random], Optional[str]]


def clone_result(result: ParaConvResult) -> ParaConvResult:
    """Deep-enough copy of a plan: every mutable container is duplicated.

    Graph and config are shared (mutators never touch them); the schedule,
    kernel and allocation are copied so mutations cannot leak back into
    the pristine plan.
    """
    schedule = copy.copy(result.schedule)
    schedule.kernel = copy.copy(result.schedule.kernel)
    schedule.kernel.placements = dict(result.schedule.kernel.placements)
    schedule.retiming = dict(result.schedule.retiming)
    schedule.edge_retiming = dict(result.schedule.edge_retiming)
    schedule.placements = dict(result.schedule.placements)
    schedule.transfer_times = dict(result.schedule.transfer_times)
    allocation = copy.copy(result.allocation)
    allocation.placements = dict(result.allocation.placements)
    allocation.cached = list(result.allocation.cached)
    return ParaConvResult(
        graph=result.graph,
        config=result.config,
        schedule=schedule,
        allocation=allocation,
        case_histogram=dict(result.case_histogram),
        group_width=result.group_width,
        num_groups=result.num_groups,
    )


# ----------------------------------------------------------------------
# mutators: each corrupts the (already cloned) result in place and
# returns a description, or None when not applicable to this plan.
# ----------------------------------------------------------------------
def _mutate_overlap_ops(result: ParaConvResult, rng: random.Random) -> Optional[str]:
    """Slide one op onto a colleague's window on the same PE."""
    kernel = result.schedule.kernel
    by_pe: Dict[int, List[PlacedOp]] = {}
    for placement in kernel.placements.values():
        by_pe.setdefault(placement.pe, []).append(placement)
    crowded = [ops for ops in by_pe.values() if len(ops) >= 2]
    if not crowded:
        return None
    ops = rng.choice(crowded)
    ops = sorted(ops, key=lambda p: p.start)
    first, second = ops[0], ops[1]
    kernel.placements[second.op_id] = PlacedOp(
        second.op_id, first.pe, first.start, first.start + second.duration
    )
    return (
        f"moved op {second.op_id} onto op {first.op_id}'s window on PE "
        f"{first.pe}"
    )


def _mutate_swap_dependent_ops(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Swap the start offsets of an intra-iteration producer/consumer pair."""
    schedule = result.schedule
    kernel = schedule.kernel
    candidates = []
    for edge in result.graph.edges():
        r_i = schedule.retiming.get(edge.producer, 0)
        r_j = schedule.retiming.get(edge.consumer, 0)
        if r_i != r_j:
            continue  # dependency crosses iterations; swap may stay legal
        if kernel.finish(edge.producer) <= kernel.start(edge.consumer):
            candidates.append(edge.key)
    if not candidates:
        return None
    producer, consumer = candidates[rng.randrange(len(candidates))]
    p = kernel.placements[producer]
    c = kernel.placements[consumer]
    kernel.placements[producer] = PlacedOp(
        producer, p.pe, c.start, c.start + p.duration
    )
    kernel.placements[consumer] = PlacedOp(
        consumer, c.pe, p.start, p.start + c.duration
    )
    return f"swapped start offsets of dependent ops {producer} -> {consumer}"


def _mutate_stretch_op(result: ParaConvResult, rng: random.Random) -> Optional[str]:
    """Inflate one op's occupancy past its execution time."""
    kernel = result.schedule.kernel
    op_id = rng.choice(sorted(kernel.placements))
    placement = kernel.placements[op_id]
    kernel.placements[op_id] = PlacedOp(
        op_id, placement.pe, placement.start, placement.finish + 1
    )
    return f"stretched op {op_id} by one unit"


def _mutate_drop_op(result: ParaConvResult, rng: random.Random) -> Optional[str]:
    """Remove one operation from the kernel entirely."""
    kernel = result.schedule.kernel
    op_id = rng.choice(sorted(kernel.placements))
    del kernel.placements[op_id]
    return f"dropped op {op_id} from the kernel"


def _mutate_drop_edge(result: ParaConvResult, rng: random.Random) -> Optional[str]:
    """Erase one intermediate result's retiming + placement records."""
    schedule = result.schedule
    if not schedule.edge_retiming:
        return None
    key = rng.choice(sorted(schedule.edge_retiming))
    del schedule.edge_retiming[key]
    schedule.placements.pop(key, None)
    schedule.transfer_times.pop(key, None)
    return f"dropped edge {key} from retiming/placement maps"


def _mutate_flatten_retiming(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Collapse a loaded producer's retiming onto its consumer's level."""
    schedule = result.schedule
    kernel = schedule.kernel
    loaded = [
        edge.key
        for edge in result.graph.edges()
        if schedule.retiming[edge.producer] > schedule.retiming[edge.consumer]
        and kernel.finish(edge.producer)
        + schedule.transfer_times[edge.key]
        > kernel.start(edge.consumer)
    ]
    if not loaded:
        return None
    producer, consumer = loaded[rng.randrange(len(loaded))]
    schedule.retiming[producer] = schedule.retiming[consumer]
    # keep R(i,j) inside the band so only the arrival check can object
    schedule.edge_retiming[(producer, consumer)] = schedule.retiming[consumer]
    return f"flattened retiming of producer {producer} to consumer {consumer}"


def _mutate_negative_retiming(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Push one operation's retiming below zero."""
    schedule = result.schedule
    op_id = rng.choice(sorted(schedule.retiming))
    schedule.retiming[op_id] = -1 - rng.randrange(3)
    return f"set retiming of op {op_id} to {schedule.retiming[op_id]}"


def _mutate_break_edge_band(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Push one R(i,j) far outside the legal [R(j), R(i)] band."""
    schedule = result.schedule
    if not schedule.edge_retiming:
        return None
    key = rng.choice(sorted(schedule.edge_retiming))
    schedule.edge_retiming[key] = 10_000
    return f"set R{key} = 10000, outside its legal band"


def _mutate_inflate_transfer(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Blow one transfer time past the period (breaks Theorem 3.1 premise)."""
    schedule = result.schedule
    if not schedule.transfer_times:
        return None
    key = rng.choice(sorted(schedule.transfer_times))
    schedule.transfer_times[key] = schedule.period + 1 + rng.randrange(3)
    return f"inflated transfer of {key} to {schedule.transfer_times[key]}"


def _mutate_flip_placement(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Flip a placement without updating its transfer time."""
    schedule = result.schedule
    candidates = [
        key
        for key, transfer in schedule.transfer_times.items()
        if key in schedule.placements
    ]
    # only edges whose two placements differ in transfer time can be caught
    from repro.core.retiming import analyze_edges

    try:
        timings = analyze_edges(result.graph, schedule.kernel, result.config)
    except Exception:
        return None
    candidates = [
        key
        for key in candidates
        if key in timings
        and timings[key].transfer_cache != timings[key].transfer_edram
    ]
    if not candidates:
        return None
    key = candidates[rng.randrange(len(candidates))]
    old = schedule.placements[key]
    new = Placement.EDRAM if old is Placement.CACHE else Placement.CACHE
    schedule.placements[key] = new
    result.allocation.placements[key] = new
    if new is Placement.CACHE:
        result.allocation.cached.append(key)
    else:
        result.allocation.cached = [
            cached for cached in result.allocation.cached if cached != key
        ]
    return f"flipped placement of {key} to {new.value} without retiming it"


def _mutate_overfill_cache(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Shrink the claimed capacity below what the allocation charges."""
    allocation = result.allocation
    if allocation.slots_used > 0:
        allocation.capacity_slots = allocation.slots_used - 1
        return (
            f"shrank capacity to {allocation.capacity_slots} slots below the "
            f"{allocation.slots_used} charged"
        )
    # nothing cached: fabricate a charge with no backing cached set
    allocation.slots_used = allocation.capacity_slots + 1
    return (
        f"charged {allocation.slots_used} slots against capacity "
        f"{allocation.capacity_slots} with nothing cached"
    )


def _mutate_corrupt_profit(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Misreport the achieved profit Sum DR(m)."""
    result.allocation.total_delta_r += 1 + rng.randrange(5)
    return (
        f"inflated total_delta_r to {result.allocation.total_delta_r}"
    )


def _mutate_search_overstate_profit(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Claim search profit for a result that was never actually cached.

    Models the characteristic failure of a buggy search allocator: a
    candidate's bookkeeping says an intermediate result is cached (and
    banks its ``DR(m)``) while the emitted placements still send it to
    eDRAM. The cached list then disagrees with the CACHE placements and
    the profit accounting no longer sums over the cached set — both
    allocation-check violations.
    """
    allocation = result.allocation
    phantom = sorted(
        key
        for key, placement in allocation.placements.items()
        if placement is Placement.EDRAM
    )
    if not phantom:
        return None
    key = phantom[rng.randrange(len(phantom))]
    allocation.cached.append(key)
    allocation.total_delta_r += 1 + rng.randrange(5)
    return (
        f"claimed eDRAM-placed {key} as cached and banked phantom profit "
        f"(total_delta_r={allocation.total_delta_r})"
    )


def _mutate_search_overfill_candidate(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Emit an internally consistent candidate that overflows the cache.

    Models a search walk that accepts an infeasible neighbor: extra
    results are flipped to CACHE *consistently* — placements, cached
    list, transfer times, profit and slot accounting all updated
    honestly — until the charged slots exceed the capacity. Every
    allocation-consistency check stays green by construction; only the
    cache-capacity invariant can catch it, so a miss here is a hole in
    that specific check.
    """
    from repro.core.retiming import analyze_edges

    schedule = result.schedule
    allocation = result.allocation
    try:
        timings = analyze_edges(result.graph, schedule.kernel, result.config)
    except Exception:
        return None
    flippable = sorted(
        key
        for key, placement in allocation.placements.items()
        if placement is Placement.EDRAM and key in timings
    )
    rng.shuffle(flippable)
    flipped = []
    for key in flippable:
        if allocation.slots_used > allocation.capacity_slots:
            break
        timing = timings[key]
        schedule.placements[key] = Placement.CACHE
        allocation.placements[key] = Placement.CACHE
        allocation.cached.append(key)
        if key in schedule.transfer_times:
            schedule.transfer_times[key] = timing.transfer_for(Placement.CACHE)
        allocation.slots_used += timing.slots
        allocation.total_delta_r += timing.delta_r
        flipped.append(key)
    if allocation.slots_used <= allocation.capacity_slots:
        return None  # even caching everything fits: no overflow to model
    return (
        f"flipped {len(flipped)} results to CACHE with honest accounting, "
        f"charging {allocation.slots_used} slots against capacity "
        f"{allocation.capacity_slots}"
    )


def _mutate_shrink_period(
    result: ParaConvResult, rng: random.Random
) -> Optional[str]:
    """Cut the kernel period below its makespan."""
    kernel = result.schedule.kernel
    if kernel.makespan() <= 0:
        return None
    kernel.period = kernel.makespan() - 1
    return f"shrank period to {kernel.period}, below the kernel makespan"


#: The full mutation corpus, name -> mutator.
MUTATORS: Dict[str, Mutator] = {
    "overlap-ops": _mutate_overlap_ops,
    "swap-dependent-ops": _mutate_swap_dependent_ops,
    "stretch-op": _mutate_stretch_op,
    "drop-op": _mutate_drop_op,
    "drop-edge": _mutate_drop_edge,
    "flatten-retiming": _mutate_flatten_retiming,
    "negative-retiming": _mutate_negative_retiming,
    "break-edge-band": _mutate_break_edge_band,
    "inflate-transfer": _mutate_inflate_transfer,
    "flip-placement": _mutate_flip_placement,
    "overfill-cache": _mutate_overfill_cache,
    "corrupt-profit": _mutate_corrupt_profit,
    "shrink-period": _mutate_shrink_period,
    "search-overstate-profit": _mutate_search_overstate_profit,
    "search-overfill-candidate": _mutate_search_overfill_candidate,
}


@dataclass
class InjectedFault:
    """One seeded corruption of a valid plan."""

    mutator: str
    description: str
    mutant: ParaConvResult


@dataclass
class FaultDetectionReport:
    """Validator performance over one injected-fault corpus."""

    injected: List[InjectedFault] = field(default_factory=list)
    detected: List[str] = field(default_factory=list)
    missed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def detection_rate(self) -> float:
        total = len(self.detected) + len(self.missed)
        return len(self.detected) / total if total else 1.0

    @property
    def ok(self) -> bool:
        return not self.missed

    def as_dict(self) -> Dict[str, object]:
        return {
            "injected": len(self.injected),
            "detected": list(self.detected),
            "missed": list(self.missed),
            "skipped": list(self.skipped),
            "detection_rate": self.detection_rate,
        }


def inject_faults(
    result: ParaConvResult,
    seed: int = 0,
    mutators: Optional[List[str]] = None,
) -> List[InjectedFault]:
    """Apply every (applicable) mutator to fresh clones of ``result``."""
    names = mutators if mutators is not None else sorted(MUTATORS)
    faults: List[InjectedFault] = []
    for index, name in enumerate(names):
        rng = random.Random((seed << 8) ^ index)
        mutant = clone_result(result)
        description = MUTATORS[name](mutant, rng)
        if description is None:
            continue
        faults.append(InjectedFault(name, description, mutant))
    return faults


def fault_detection_report(
    result: ParaConvResult,
    validator=None,
    seed: int = 0,
    mutators: Optional[List[str]] = None,
) -> FaultDetectionReport:
    """Inject the corpus and score the validator's detection rate.

    The pristine plan is validated first: a baseline that is itself
    rejected would make detection trivially meaningless, so it is a
    prerequisite failure (reported via ``missed`` as ``baseline``).
    """
    from repro.verify.validator import ScheduleValidator

    validator = validator or ScheduleValidator()
    report = FaultDetectionReport()
    baseline = validator.validate(result)
    if not baseline.ok:
        report.missed.append("baseline")
        return report
    names = mutators if mutators is not None else sorted(MUTATORS)
    applied = inject_faults(result, seed=seed, mutators=names)
    applied_names = {fault.mutator for fault in applied}
    report.skipped = [name for name in names if name not in applied_names]
    report.injected = applied
    for fault in applied:
        verdict = validator.validate(fault.mutant)
        if verdict.ok:
            report.missed.append(fault.mutator)
        else:
            report.detected.append(fault.mutator)
    return report
