"""Per-pass invariant hooks for the compile pipeline (PR 3).

The :class:`~repro.compiler.manager.PassManager` fires registered hooks
right after each pass completes; a hook that raises is wrapped into a
:class:`~repro.compiler.errors.PassInvariantError` *naming the pass* —
so a broken invariant points at the stage that introduced it instead of
surfacing as a downstream validation failure three passes later.

:func:`compile_invariant_hooks` builds the standard hook set, one per
checkable stage:

========================= ============================================
pass                      invariant checked after it runs
========================= ============================================
``compact-kernel``        kernel resource feasibility (exclusive PEs,
                          placements inside the period)
``analyze-edges``         Theorem 3.1: every per-edge retiming
                          requirement in ``{0, 1, 2}`` and
                          cache-vs-eDRAM monotonicity
``dp-allocate``           capacity feasibility and profit accounting of
                          the allocation
``liveness-reweight``     same allocation invariants on the re-weighted
                          outcome
``solve-retiming``        Definition 3.1 legality of the vertex/edge
                          retiming
``emit-schedule``         full semantic validation of the emitted
                          periodic schedule
========================= ============================================

Wire them in with ``ParaConv(..., invariant_hooks=compile_invariant_hooks())``
or hand them to :class:`~repro.compiler.manager.PassManager` directly.
The sweep runner (:func:`repro.verify.runner.verify_workload`) compiles
the DP plan under these hooks so a pipeline regression is attributed at
the pass level.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compiler.context import CompileContext

__all__ = [
    "compile_invariant_hooks",
    "check_kernel_feasible",
    "check_theorem_bounds",
    "check_allocation_feasible",
    "check_retiming_legal",
    "check_schedule_semantics",
]

#: Matches :data:`repro.compiler.manager.InvariantHook`.
Hook = Callable[[CompileContext], None]


def check_kernel_feasible(ctx: CompileContext) -> None:
    """After ``compact-kernel``: resource-feasible kernel for the width."""
    from repro.core.schedule import validate_kernel

    width = ctx.width
    if width is None:
        raise ValueError("kernel invariant hook needs a width-bound context")
    validate_kernel(ctx.graph, ctx.get("kernel"), width)


def check_theorem_bounds(ctx: CompileContext) -> None:
    """After ``analyze-edges``: Theorem 3.1 bounds on every edge timing.

    ``delta_cache``/``delta_edram`` must lie in ``{0, 1, 2}``, caching can
    never *increase* the requirement (``ΔR >= 0``), and transfers are
    clamped to the kernel period.
    """
    period = ctx.get("kernel").period
    for key, timing in ctx.get("timings").items():
        for label, delta in (
            ("cache", timing.delta_cache),
            ("eDRAM", timing.delta_edram),
        ):
            if not 0 <= delta <= 2:
                raise ValueError(
                    f"edge {key}: {label} retiming requirement {delta} "
                    f"outside the Theorem 3.1 bound [0, 2]"
                )
        if timing.delta_r < 0:
            raise ValueError(
                f"edge {key}: caching increases the retiming requirement "
                f"(ΔR = {timing.delta_r} < 0)"
            )
        if timing.transfer_cache > period or timing.transfer_edram > period:
            raise ValueError(
                f"edge {key}: transfer time exceeds the period {period}"
            )
        if timing.transfer_cache > timing.transfer_edram:
            raise ValueError(
                f"edge {key}: cache transfer slower than eDRAM "
                "(inverted memory hierarchy)"
            )


def check_allocation_feasible(ctx: CompileContext) -> None:
    """After ``dp-allocate``/``liveness-reweight``: capacity + accounting."""
    allocation = ctx.get("allocation")
    timings = ctx.get("timings")
    if allocation.slots_used > allocation.capacity_slots:
        raise ValueError(
            f"allocation uses {allocation.slots_used} slots, capacity is "
            f"{allocation.capacity_slots}"
        )
    placed = set(allocation.placements)
    edges = set(timings)
    if placed != edges:
        raise ValueError(
            f"allocation places {len(placed)} edges, graph has {len(edges)}"
        )
    for key in allocation.cached:
        if key not in edges:
            raise ValueError(f"allocation caches unknown edge {key}")
    expected_profit = sum(timings[key].delta_r for key in allocation.cached)
    if allocation.total_delta_r != expected_profit:
        raise ValueError(
            f"allocation claims profit {allocation.total_delta_r}, cached "
            f"set earns {expected_profit}"
        )


def check_retiming_legal(ctx: CompileContext) -> None:
    """After ``solve-retiming``: Definition 3.1 legality of the solution."""
    solution = ctx.get("retiming")
    vertex = solution.vertex_retiming
    for op_id, value in vertex.items():
        if value < 0:
            raise ValueError(f"negative retiming R({op_id}) = {value}")
    for key, value in solution.edge_retiming.items():
        producer, consumer = key
        if not vertex[consumer] <= value <= vertex[producer]:
            raise ValueError(
                f"edge retiming R{key} = {value} outside the legal band "
                f"[{vertex[consumer]}, {vertex[producer]}]"
            )


def check_schedule_semantics(ctx: CompileContext) -> None:
    """After ``emit-schedule``: the full periodic-schedule validation."""
    from repro.core.schedule import validate_periodic_schedule

    validate_periodic_schedule(ctx.get("schedule"))


def compile_invariant_hooks() -> Dict[str, List[Hook]]:
    """The standard pass-name → invariant-hook wiring (see module docs)."""
    return {
        "compact-kernel": [check_kernel_feasible],
        "analyze-edges": [check_theorem_bounds],
        "dp-allocate": [check_allocation_feasible],
        "liveness-reweight": [check_allocation_feasible],
        "solve-retiming": [check_retiming_legal],
        "emit-schedule": [check_schedule_semantics],
    }
