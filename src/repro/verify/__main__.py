"""Verification CLI.

Usage::

    python -m repro.verify                       # full battery, 12 benchmarks
    python -m repro.verify --benchmarks cat car  # subset
    python -m repro.verify --allocators dp greedy --pes 32
    python -m repro.verify --strict-liveness     # escalate liveness warnings
    python -m repro.verify --no-oracle --no-mutations
    python -m repro.verify --sim --sim-iterations 1 20 1000  # engine check
    python -m repro.verify --faults                     # failover differential
    python -m repro.verify --fleet                      # fleet differential
    python -m repro.verify --search                     # search-allocator battery
    python -m repro.verify --search --search-budgets 0 100 2000
    python -m repro.verify --tenancy                    # multi-tenant isolation
    python -m repro.verify --rewire                     # live-rewiring differential
    python -m repro.verify --all                        # every battery at once
    python -m repro.verify --list-checks         # print the check catalog
    python -m repro.verify --json                # machine-readable output

Exit status is non-zero when any validator error, oracle mismatch or
missed injected fault is found — suitable as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cnn.workloads import WORKLOADS
from repro.core.allocation import ALLOCATORS
from repro.pim.config import PimConfig
from repro.verify.differential_fleet import fleet_differential
from repro.verify.differential_rewire import rewire_differential
from repro.verify.differential_tenancy import tenancy_differential
from repro.verify.validator import CHECK_CATALOG, ScheduleValidator
from repro.verify.runner import run_verification_sweep


def positive_int(text: str) -> int:
    """argparse type: strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Machine-check Para-CONV schedules against the paper's "
            "invariants, differentially verify the DP allocator against a "
            "brute-force oracle, and score the validator on an injected-"
            "fault corpus."
        ),
    )
    parser.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        choices=sorted(WORKLOADS),
        help="workloads to sweep — any registry name, including the "
             "randwired-* irregular graphs (default: all 12 paper "
             "benchmarks)",
    )
    parser.add_argument(
        "--allocators", nargs="+", metavar="NAME", default=None,
        choices=sorted(ALLOCATORS),
        help="allocators to validate (default: every registered allocator)",
    )
    parser.add_argument("--pes", type=positive_int, default=16,
                        help="PE count of the machine (default 16)")
    parser.add_argument("--iterations", type=positive_int, default=1000,
                        help="width-search iteration count N (default 1000)")
    parser.add_argument("--strict-liveness", action="store_true",
                        help="treat liveness-point cache overflows as errors")
    parser.add_argument("--unroll", type=positive_int, default=3,
                        help="steady-state iterations to unroll (default 3)")
    parser.add_argument("--oracle-limit", type=positive_int, default=16,
                        help="max competing results for exhaustive "
                             "enumeration (default 16)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (default 0)")
    parser.add_argument("--no-oracle", action="store_true",
                        help="skip the oracle-differential stage")
    parser.add_argument("--no-mutations", action="store_true",
                        help="skip the fault-injection stage")
    parser.add_argument("--sim", action="store_true",
                        help="differentially verify the steady-state and "
                             "columnar simulation engines against the full "
                             "unroll (every aggregate must match exactly, "
                             "and the columnar-steady engine must converge "
                             "at the same round/period/fingerprint)")
    parser.add_argument("--faults", action="store_true",
                        help="differentially verify runtime failover: a "
                             "batch that hits an injected unit failure and "
                             "fails over must match a cold compile on the "
                             "degraded machine, and a warm repeat of the "
                             "same fault must not recompile")
    parser.add_argument("--fault-unit", choices=("pe", "vault"),
                        default="pe",
                        help="unit type the --faults stage kills "
                             "(default pe)")
    parser.add_argument("--fault-unit-id", type=int, default=0,
                        help="unit id the --faults stage kills (default 0)")
    parser.add_argument("--fault-iteration", type=int, default=3,
                        help="iteration boundary at which the unit dies "
                             "(default 3)")
    parser.add_argument("--fleet", action="store_true",
                        help="differentially verify the fleet tier: every "
                             "batch a shard served must replay identically "
                             "on a standalone server, request accounting "
                             "must close across a mid-trace worker kill, "
                             "and a cold replica must serve every plan "
                             "from the shared store with zero compiles")
    parser.add_argument("--fleet-workers", type=positive_int, default=4,
                        help="shard count for the --fleet stage (default 4)")
    parser.add_argument("--fleet-requests", type=positive_int, default=400,
                        help="trace length for the --fleet stage "
                             "(default 400)")
    parser.add_argument("--sim-iterations", type=positive_int, nargs="+",
                        metavar="N", default=None,
                        help="batch sizes for the --sim stage "
                             "(default: 1 20 1000)")
    parser.add_argument("--search", action="store_true",
                        help="differentially verify the search allocators: "
                             "oracle equality on enumerable instances, the "
                             "DP lower bound and anytime monotonicity at "
                             "every ladder budget, full plan validation "
                             "on healthy, degraded and partitioned machines, "
                             "and columnar/object engine bit-identity "
                             "(allocation and SearchStats)")
    parser.add_argument("--search-budgets", type=int, nargs="+",
                        metavar="N", default=None,
                        help="budget ladder for the --search stage "
                             "(default: 0 100 500 2000)")
    parser.add_argument("--tenancy", action="store_true",
                        help="differentially verify multi-tenant isolation: "
                             "on 2-tenant, 3-tenant and degraded-partition "
                             "co-residency scenarios, every batch a tenant's "
                             "server executed must replay identically on an "
                             "isolated server over the same partition, "
                             "aggregate counters must equal the sum of "
                             "isolated runs, every tenant plan must pass the "
                             "full validator, and fused-dataflow lowerings "
                             "must conserve work and pass the sim and search "
                             "differentials unchanged")
    parser.add_argument("--tenancy-requests", type=positive_int, default=12,
                        help="requests per tenant for the --tenancy stage "
                             "(default 12)")
    parser.add_argument("--rewire", action="store_true",
                        help="differentially verify live rewiring: "
                             "post-swap serving must match a cold compile "
                             "of the new graph field by field, queued "
                             "requests must cross the cut-point with zero "
                             "loss (single server and fleet), repeat swaps "
                             "must not recompile, and the seeded ER/WS/BA "
                             "randwired battery must be deterministic and "
                             "validator-clean")
    parser.add_argument("--rewire-seeds", type=positive_int, default=3,
                        help="seeds per family for the --rewire randwired "
                             "battery (default 3)")
    parser.add_argument("--all", action="store_true", dest="all_batteries",
                        help="run every differential battery (--sim --faults "
                             "--search --fleet --tenancy) and print a "
                             "per-battery ok/FAIL summary")
    parser.add_argument("--json", action="store_true",
                        help="emit the full outcome as JSON")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the invariant-check catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checks:
        width = max(len(name) for name in CHECK_CATALOG)
        for name, description in CHECK_CATALOG.items():
            print(f"{name:<{width}}  {description}")
        return 0

    if args.all_batteries:
        args.sim = True
        args.faults = True
        args.search = True
        args.fleet = True
        args.tenancy = True
        args.rewire = True

    config = PimConfig(num_pes=args.pes, iterations=args.iterations)
    validator = ScheduleValidator(
        strict_liveness=args.strict_liveness, unroll_iterations=args.unroll
    )
    outcome = run_verification_sweep(
        config=config,
        benchmarks=args.benchmarks,
        allocators=args.allocators,
        validator=validator,
        oracle_limit=args.oracle_limit,
        with_differential=not args.no_oracle,
        with_faults=not args.no_mutations,
        fault_seed=args.seed,
        with_simulation=args.sim,
        sim_iterations=args.sim_iterations,
        with_failover=args.faults,
        failover_unit=args.fault_unit,
        failover_unit_id=args.fault_unit_id,
        failover_iteration=args.fault_iteration,
        with_search=args.search,
        search_budgets=args.search_budgets,
    )
    fleet_report = None
    if args.fleet:
        fleet_report = fleet_differential(
            num_workers=args.fleet_workers,
            requests=args.fleet_requests,
            seed=args.seed,
        )
    tenancy_report = None
    if args.tenancy:
        tenancy_report = tenancy_differential(
            requests_per_tenant=args.tenancy_requests,
            validator=validator,
        )
    rewire_report = None
    if args.rewire:
        rewire_report = rewire_differential(
            config=PimConfig(num_pes=args.pes, iterations=args.iterations),
            seeds=args.rewire_seeds,
            validator=validator,
        )
    ok = (
        outcome.ok
        and (fleet_report is None or fleet_report.ok)
        and (tenancy_report is None or tenancy_report.ok)
        and (rewire_report is None or rewire_report.ok)
    )
    if args.json:
        payload = outcome.as_dict()
        payload["fleet"] = (
            fleet_report.as_dict() if fleet_report is not None else None
        )
        payload["tenancy"] = (
            tenancy_report.as_dict() if tenancy_report is not None else None
        )
        payload["rewire"] = (
            rewire_report.as_dict() if rewire_report is not None else None
        )
        payload["ok"] = ok
        print(json.dumps(payload, indent=2))
    else:
        print(outcome.summary())
        if fleet_report is not None:
            print(fleet_report.describe())
        if tenancy_report is not None:
            print(tenancy_report.describe())
        if rewire_report is not None:
            print(rewire_report.describe())
        if args.all_batteries:
            sweep = outcome.workloads
            batteries = [
                ("schedule", all(
                    r.ok for w in sweep for r in w.reports.values()
                ) and all(
                    w.differential is None or w.differential.ok for w in sweep
                )),
                ("sim", all(
                    r.ok
                    for w in sweep
                    for battery in w.simulation.values()
                    for r in battery
                )),
                ("search", all(r.ok for w in sweep for r in w.search)),
                ("faults", all(
                    (w.faults is None or w.faults.ok)
                    and (w.failover is None or w.failover.ok)
                    for w in sweep
                )),
                ("fleet", fleet_report.ok),
                ("tenancy", tenancy_report.ok),
                ("rewire", rewire_report.ok),
            ]
            for name, passed in batteries:
                print(f"battery {name:<8} {'ok' if passed else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
