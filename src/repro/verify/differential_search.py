"""Search-allocator differential verification.

The anytime search allocators (:mod:`repro.core.search`) come with three
machine-checkable promises, and this module is the instrument that holds
them to all three on real compiled instances:

1. **Oracle equality** — on instances small enough to enumerate
   (``num_items <= oracle_limit``), the DP-seeded annealer and the
   portfolio must return *exactly* the brute-force optimum of
   :func:`repro.verify.oracle.exhaustive_allocate`. The DP is optimal on
   the clean knapsack and the walk never returns worse than its seed, so
   any deviation is a real bug, not noise.
2. **DP lower bound (anytime/monotone)** — at *every* budget on the
   ladder, search profit must be at least the DP's, and profit must be
   monotone non-decreasing in the budget (budget ``b2 > b1`` replays the
   ``b1`` evaluations exactly and then continues).
3. **Plan validity** — a full pipeline compile under the search allocator
   must pass the complete :class:`repro.verify.validator.ScheduleValidator`
   battery, on the healthy machine *and* on degraded
   (:meth:`repro.pim.config.PimConfig.degraded`) and partitioned
   (:meth:`~repro.pim.config.PimConfig.split`) variants.
4. **Engine bit-identity** — the production ``columnar`` scorer
   (:class:`repro.core.profit.ProfitTable`) must reproduce the ``object``
   walk *byte for byte* on every variant: identical allocation
   (placements, cached set, profit, slots) and identical
   :class:`~repro.core.search.SearchStats` (same RNG trajectory, same
   accept/reject counts), plus columnar-vs-object equality of the
   exhaustive oracle where the instance is enumerable.

Surfaced by ``python -m repro.verify --search`` and pinned by
``tests/verify/test_differential_search.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import AllocationProblem, dp_allocate
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges
from repro.core.search import AllocatorPortfolio, AnnealAllocator
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.verify.oracle import (
    DEFAULT_EXHAUSTIVE_LIMIT,
    OracleSizeError,
    exhaustive_allocate,
)
from repro.verify.validator import ScheduleValidator

#: Budget ladder exercised by the monotonicity stage: includes the
#: degenerate 0-eval run (must return the DP seed verbatim) and the
#: default production budget.
DEFAULT_BUDGET_LADDER: Tuple[int, ...] = (0, 100, 500, 2000)


@dataclass
class SearchDifferentialReport:
    """Outcome of the search battery on one (workload, variant) pair.

    Attributes:
        workload: graph name.
        variant: machine variant label (``healthy``, ``degraded``,
            ``shard-0`` ...).
        num_items: competing intermediate results in the instance.
        capacity_slots: per-group cache capacity of the instance.
        profits: achieved profit per method (``dp``, ``anneal``,
            ``portfolio``; plus ``exhaustive`` when enumerable).
        exhaustive_checked: whether oracle equality was enforced.
        budget_profits: anneal profit at every ladder budget, in ladder
            order — the anytime curve the monotone check walks.
        validator_errors: errors from the full validator battery on the
            compiled ``anneal`` plan (empty means the plan is valid).
        failures: human-readable description of every broken promise.
    """

    workload: str
    variant: str
    num_items: int
    capacity_slots: int
    profits: Dict[str, int] = field(default_factory=dict)
    exhaustive_checked: bool = False
    #: whether the columnar-vs-object engine bit-identity stage ran.
    engines_checked: bool = False
    budget_profits: Dict[int, int] = field(default_factory=dict)
    validator_errors: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.validator_errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "variant": self.variant,
            "num_items": self.num_items,
            "capacity_slots": self.capacity_slots,
            "profits": dict(self.profits),
            "exhaustive_checked": self.exhaustive_checked,
            "engines_checked": self.engines_checked,
            "budget_profits": {
                str(budget): profit
                for budget, profit in self.budget_profits.items()
            },
            "validator_errors": list(self.validator_errors),
            "ok": self.ok,
            "failures": list(self.failures),
        }

    def describe(self) -> str:
        mode = "exhaustive" if self.exhaustive_checked else "dominance"
        curve = " -> ".join(
            f"{budget}:{profit}"
            for budget, profit in self.budget_profits.items()
        )
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{self.workload}/{self.variant}: {verdict} "
            f"[{mode}] dp={self.profits.get('dp')} "
            f"anneal={self.profits.get('anneal')} "
            f"portfolio={self.profits.get('portfolio')} "
            f"ladder {curve}"
        )


def machine_variants(
    config: PimConfig, shards: int = 2
) -> List[Tuple[str, PimConfig]]:
    """The machine views the search battery sweeps.

    ``healthy`` is the config itself; ``degraded`` drops the highest-id PE
    (the canonical single-fault view); ``shard-i`` are the contiguous
    :meth:`~repro.pim.config.PimConfig.split` partitions. Degenerate
    machines (a single PE cannot lose one, nor be split) contribute only
    the views that exist.
    """
    variants: List[Tuple[str, PimConfig]] = [("healthy", config)]
    if config.num_pes > 1:
        variants.append(
            ("degraded", config.degraded(list(range(config.num_pes - 1))))
        )
    if config.num_pes >= shards:
        for index, shard in enumerate(config.split(shards)):
            variants.append((f"shard-{index}", shard))
    return variants


def allocation_instance(
    graph: TaskGraph, config: PimConfig
) -> Tuple[AllocationProblem, int]:
    """Compile the DP plan and rebuild its allocation instance.

    Mirrors the oracle-differential stage of the verification runner: the
    instance the allocators are compared on is the one the *pipeline*
    actually solved (same kernel, same per-group capacity), not a
    synthetic stand-in. Returns ``(problem, group_width)``.
    """
    plan = ParaConv(config, validate=False).run(graph)
    kernel = plan.schedule.kernel
    timings = analyze_edges(graph, kernel, config)
    capacity = config.total_cache_slots // plan.num_groups
    return AllocationProblem.from_timings(timings, capacity), plan.group_width


def search_differential(
    graph: TaskGraph,
    config: PimConfig,
    budgets: Optional[Sequence[int]] = None,
    validator: Optional[ScheduleValidator] = None,
    oracle_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    seed: int = 0,
    variants: Optional[List[Tuple[str, PimConfig]]] = None,
    with_validator: bool = True,
) -> List[SearchDifferentialReport]:
    """Run the full search battery for one workload, all machine variants."""
    ladder = sorted(set(budgets if budgets is not None
                        else DEFAULT_BUDGET_LADDER))
    validator = validator or ScheduleValidator()
    views = variants if variants is not None else machine_variants(config)
    reports: List[SearchDifferentialReport] = []
    for label, machine in views:
        problem, width = allocation_instance(graph, machine)
        report = SearchDifferentialReport(
            workload=graph.name,
            variant=label,
            num_items=problem.num_items,
            capacity_slots=problem.capacity_slots,
        )

        dp = dp_allocate(problem)
        anneal = AnnealAllocator(seed=seed)(problem)
        portfolio = AllocatorPortfolio(seed=seed)(problem)
        report.profits["dp"] = dp.total_delta_r
        report.profits["anneal"] = anneal.total_delta_r
        report.profits["portfolio"] = portfolio.total_delta_r

        for name, result in (("anneal", anneal), ("portfolio", portfolio)):
            if result.slots_used > problem.capacity_slots:
                report.failures.append(
                    f"{name} is capacity-infeasible: {result.slots_used} "
                    f"slots used against {problem.capacity_slots}"
                )
            if result.total_delta_r < dp.total_delta_r:
                report.failures.append(
                    f"{name} profit {result.total_delta_r} regressed below "
                    f"the DP seed {dp.total_delta_r}"
                )

        try:
            exhaustive = exhaustive_allocate(problem, limit=oracle_limit)
        except OracleSizeError:
            exhaustive = None
        if exhaustive is not None:
            report.exhaustive_checked = True
            report.profits["exhaustive"] = exhaustive.total_delta_r
            for name, result in (("anneal", anneal),
                                 ("portfolio", portfolio)):
                if result.total_delta_r != exhaustive.total_delta_r:
                    report.failures.append(
                        f"{name} profit {result.total_delta_r} != "
                        f"brute-force optimum {exhaustive.total_delta_r} "
                        f"(n={problem.num_items}, "
                        f"S={problem.capacity_slots})"
                    )

        # Engine bit-identity: the production columnar scorer must replay
        # the object walk byte for byte -- same allocation, same
        # SearchStats (RNG trajectory, accept/reject counts) -- and the
        # vectorized oracle must agree with the incumbent scan.
        report.engines_checked = True
        object_anneal = AnnealAllocator(seed=seed, engine="object")(problem)
        for what, columnar_value, object_value in (
            ("placements", anneal.placements, object_anneal.placements),
            ("cached", anneal.cached, object_anneal.cached),
            ("profit", anneal.total_delta_r, object_anneal.total_delta_r),
            ("slots", anneal.slots_used, object_anneal.slots_used),
        ):
            if columnar_value != object_value:
                report.failures.append(
                    f"anneal engine mismatch on {what}: "
                    f"columnar={columnar_value!r} object={object_value!r}"
                )
        columnar_stats = anneal.search_stats.as_dict()
        object_stats = object_anneal.search_stats.as_dict()
        if columnar_stats != object_stats:
            diverged = sorted(
                key for key in set(columnar_stats) | set(object_stats)
                if columnar_stats.get(key) != object_stats.get(key)
            )
            report.failures.append(
                "anneal SearchStats diverged between engines on: "
                + ", ".join(diverged)
            )
        if exhaustive is not None:
            object_exhaustive = exhaustive_allocate(
                problem, limit=oracle_limit, engine="object"
            )
            if (
                exhaustive.placements != object_exhaustive.placements
                or exhaustive.cached != object_exhaustive.cached
                or exhaustive.total_delta_r
                != object_exhaustive.total_delta_r
                or exhaustive.slots_used != object_exhaustive.slots_used
            ):
                report.failures.append(
                    "exhaustive oracle engines diverged: columnar="
                    f"{exhaustive.cached!r} object="
                    f"{object_exhaustive.cached!r}"
                )

        previous: Optional[int] = None
        for budget in ladder:
            profit = AnnealAllocator(
                max_evals=budget, seed=seed
            )(problem).total_delta_r
            report.budget_profits[budget] = profit
            if profit < dp.total_delta_r:
                report.failures.append(
                    f"anneal:{budget} profit {profit} below the DP seed "
                    f"{dp.total_delta_r}"
                )
            if previous is not None and profit < previous:
                report.failures.append(
                    f"anytime monotonicity broken: profit {profit} at "
                    f"budget {budget} < {previous} at the previous rung"
                )
            previous = profit

        if with_validator:
            plan = ParaConv(
                machine, allocator_name="anneal", validate=False
            ).run_at_width(graph, width)
            verdict = validator.validate(plan)
            report.validator_errors = [
                str(violation) for violation in verdict.errors()
            ]
        reports.append(report)
    return reports


@dataclass
class SearchSweepOutcome:
    """Aggregate of the search battery over a benchmark sweep."""

    config: PimConfig
    budgets: List[int]
    reports: List[SearchDifferentialReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "budgets": list(self.budgets),
            "ok": self.ok,
            "reports": [report.as_dict() for report in self.reports],
        }

    def summary(self) -> str:
        lines = [
            f"search differential on {self.config.describe()}",
            f"budget ladder: {', '.join(str(b) for b in self.budgets)}",
        ]
        lines.extend(f"  {report.describe()}" for report in self.reports)
        lines.append(f"overall: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def search_differential_sweep(
    config: Optional[PimConfig] = None,
    benchmarks: Optional[List[str]] = None,
    budgets: Optional[Sequence[int]] = None,
    validator: Optional[ScheduleValidator] = None,
    oracle_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    seed: int = 0,
) -> SearchSweepOutcome:
    """Run the search battery over the paper benchmarks."""
    from repro.graph.generators import BENCHMARK_SIZES, synthetic_benchmark

    config = config or PimConfig()
    names = benchmarks if benchmarks is not None else list(BENCHMARK_SIZES)
    ladder = sorted(set(budgets if budgets is not None
                        else DEFAULT_BUDGET_LADDER))
    outcome = SearchSweepOutcome(config=config, budgets=ladder)
    for name in names:
        outcome.reports.extend(
            search_differential(
                synthetic_benchmark(name),
                config,
                budgets=ladder,
                validator=validator,
                oracle_limit=oracle_limit,
                seed=seed,
            )
        )
    return outcome
