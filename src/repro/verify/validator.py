"""Machine-checking every emitted schedule against the paper's invariants.

:class:`ScheduleValidator` takes a complete :class:`ParaConvResult` (the
pipeline's deployable artifact) and re-derives, independently of the
pipeline, whether it satisfies the catalog of Para-CONV invariants:

====================== ==================================================
check                  paper claim it certifies
====================== ==================================================
``kernel-resources``   one placement per op, exact durations, windows
                       inside ``[0, p]``, PEs inside the group
``pe-exclusion``       no two operations overlap on the same PE
``retiming-legality``  Definition 3.1: ``R(i) >= R(i,j) >= R(j) >= 0``
``dependency-order``   topological order across retimed iteration
                       instances — unrolled producer instances finish
                       (data arrived) before consumer instances start
``theorem-3.1``        ``c_ij <= p`` and required relative retiming
                       ``<= 2`` on every edge
``period``             steady-state period matches the kernel and admits
                       every operation
``prologue``           prologue length is exactly ``R_max * p`` and the
                       prologue rounds grow monotonically into the kernel
``allocation``         allocation profit accounting consistent with
                       ``ΔR(m)``; transfer times match placements; the
                       placement map covers exactly the graph's edges
``cache-capacity``     the data cache is never over-committed — by the
                       paper's single-charge accounting (error) and at
                       every steady-state liveness point (warning, or
                       error under ``strict_liveness``)
``grouping``           PE-group decomposition fits the machine and the
                       allocator saw the per-group capacity share
====================== ==================================================

Every failed assertion becomes a structured
:class:`~repro.verify.violations.Violation`; nothing raises mid-flight, so
one run reports *all* problems of a corrupt schedule (which the
fault-injection suite relies on).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.paraconv import ParaConvResult
from repro.core.retiming import EdgeTiming, analyze_edges
from repro.core.schedule import PeriodicSchedule
from repro.verify.violations import Severity, VerificationReport

EdgeKey = Tuple[int, int]

#: name -> one-line description of every check the validator runs.
CHECK_CATALOG: Dict[str, str] = {
    "kernel-resources": (
        "every operation placed exactly once, with its exact execution "
        "time, inside [0, period], on a PE of its group"
    ),
    "pe-exclusion": "no two operations overlap on the same PE",
    "retiming-legality": (
        "Definition 3.1 legality: R(i) >= R(i,j) >= R(j) and R >= 0 "
        "for every operation and intermediate result"
    ),
    "dependency-order": (
        "unrolled retimed instances respect topological dependency order: "
        "producer data (incl. transfer) arrives before the consumer starts"
    ),
    "theorem-3.1": (
        "per-edge transfer <= period and required relative retiming <= 2"
    ),
    "period": "kernel fits its period; result and kernel agree on p",
    "prologue": "prologue is exactly R_max * p with monotone rounds",
    "allocation": (
        "placement map covers the graph; profit equals sum of DR(m) over "
        "cached results; transfer times match placements"
    ),
    "cache-capacity": (
        "cache never over-committed: single-charge accounting (error) and "
        "liveness-point peak occupancy (warning / strict error)"
    ),
    "grouping": "group decomposition tiles the machine; capacity share OK",
}

#: Allocators that are capacity-oblivious *by design* (ablation upper
#: bounds); capacity feasibility is skipped for their plans.
CAPACITY_OBLIVIOUS_METHODS: FrozenSet[str] = frozenset({"oracle"})


class ScheduleValidator:
    """Independent checker of compiled Para-CONV plans.

    Args:
        strict_liveness: escalate liveness-point cache overflows from
            warnings to errors. The paper's Section 3.3 accounting charges
            each cached result once, so pipeline-default plans may carry
            transient overflows (see :mod:`repro.core.liveness`); strict
            mode is what ``liveness_aware=True`` plans are held to.
        unroll_iterations: steady-state iterations to unroll (on top of the
            prologue) for the instance-level dependency check. Two periods
            already expose any cross-iteration violation (the schedule is
            periodic); more just re-checks the same offsets.
        oblivious_methods: allocation methods exempt from the capacity
            check (capacity-oblivious ablation baselines).
    """

    def __init__(
        self,
        strict_liveness: bool = False,
        unroll_iterations: int = 3,
        oblivious_methods: FrozenSet[str] = CAPACITY_OBLIVIOUS_METHODS,
    ):
        if unroll_iterations < 1:
            raise ValueError("unroll_iterations must be >= 1")
        self.strict_liveness = strict_liveness
        self.unroll_iterations = unroll_iterations
        self.oblivious_methods = oblivious_methods

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def validate(self, result: ParaConvResult) -> VerificationReport:
        """Run the full catalog against one compiled plan."""
        report = VerificationReport(
            subject=f"{result.graph.name} [{result.allocation.method}]"
        )
        schedule = result.schedule
        timings = self._safe_timings(result, report)

        self._check_kernel_resources(result, report)
        self._check_pe_exclusion(schedule, report)
        self._check_retiming_legality(schedule, report)
        self._check_dependency_order(schedule, report)
        self._check_theorem_bound(schedule, report)
        self._check_period(result, report)
        self._check_prologue(result, report)
        self._check_allocation(result, timings, report)
        self._check_cache_capacity(result, timings, report)
        self._check_grouping(result, report)
        return report

    # keep the instance callable as a plain function
    __call__ = validate

    # ------------------------------------------------------------------
    # individual checks
    # ------------------------------------------------------------------
    def _safe_timings(
        self, result: ParaConvResult, report: VerificationReport
    ) -> Optional[Mapping[EdgeKey, EdgeTiming]]:
        """Re-derive the Section 3.2 edge analysis for cross-checks.

        The analysis itself can fail on corrupted kernels (e.g. missing
        placements); that is reported once here and the dependent checks
        degrade gracefully.
        """
        try:
            return analyze_edges(result.graph, result.schedule.kernel, result.config)
        except Exception as exc:  # corrupt kernel/config: report, not crash
            report.add(
                "allocation",
                f"edge re-analysis impossible on this plan: {exc}",
            )
            return None

    def _check_kernel_resources(
        self, result: ParaConvResult, report: VerificationReport
    ) -> None:
        report.checks_run.append("kernel-resources")
        graph = result.graph
        kernel = result.schedule.kernel
        width = result.group_width
        op_ids = {op.op_id for op in graph.operations()}
        placed = set(kernel.placements)
        for op_id in sorted(op_ids - placed):
            report.add("kernel-resources", "operation missing from kernel", op_id)
        for op_id in sorted(placed - op_ids):
            report.add("kernel-resources", "kernel places unknown operation", op_id)
        for op_id, placement in kernel.placements.items():
            if op_id not in op_ids:
                continue
            expected = graph.operation(op_id).execution_time
            if placement.duration != expected:
                report.add(
                    "kernel-resources",
                    f"occupies {placement.duration} units, execution time "
                    f"is {expected}",
                    op_id,
                )
            if placement.start < 0 or placement.finish > kernel.period:
                report.add(
                    "kernel-resources",
                    f"window [{placement.start}, {placement.finish}) outside "
                    f"[0, {kernel.period}]",
                    op_id,
                )
            if not 0 <= placement.pe < width:
                report.add(
                    "kernel-resources",
                    f"placed on PE {placement.pe} outside group width {width}",
                    op_id,
                )

    def _check_pe_exclusion(
        self, schedule: PeriodicSchedule, report: VerificationReport
    ) -> None:
        report.checks_run.append("pe-exclusion")
        per_pe: Dict[int, List] = {}
        for placement in schedule.kernel.placements.values():
            per_pe.setdefault(placement.pe, []).append(placement)
        for pe, placements in per_pe.items():
            placements.sort(key=lambda p: (p.start, p.op_id))
            for left, right in zip(placements, placements[1:]):
                if right.start < left.finish:
                    report.add(
                        "pe-exclusion",
                        f"ops {left.op_id} and {right.op_id} overlap on PE "
                        f"{pe} ([{left.start},{left.finish}) vs "
                        f"[{right.start},{right.finish}))",
                        (left.op_id, right.op_id),
                    )

    def _check_retiming_legality(
        self, schedule: PeriodicSchedule, report: VerificationReport
    ) -> None:
        report.checks_run.append("retiming-legality")
        graph = schedule.graph
        for op in graph.operations():
            r = schedule.retiming.get(op.op_id)
            if r is None:
                report.add("retiming-legality", "no retiming value", op.op_id)
            elif r < 0:
                report.add(
                    "retiming-legality", f"negative retiming {r}", op.op_id
                )
        for edge in graph.edges():
            key = edge.key
            r_i = schedule.retiming.get(edge.producer)
            r_j = schedule.retiming.get(edge.consumer)
            if r_i is None or r_j is None:
                continue  # already reported above
            r_ij = schedule.edge_retiming.get(key)
            if r_ij is None:
                report.add("retiming-legality", "missing R(i,j)", key)
            elif not r_i >= r_ij >= r_j:
                report.add(
                    "retiming-legality",
                    f"R(i)={r_i} >= R(i,j)={r_ij} >= R(j)={r_j} violated",
                    key,
                )
            if r_i - r_j < 0:
                report.add(
                    "retiming-legality",
                    f"R(i)={r_i} < R(j)={r_j} reverses the dependency",
                    key,
                )

    def _check_dependency_order(
        self, schedule: PeriodicSchedule, report: VerificationReport
    ) -> None:
        """Unroll prologue + ``unroll_iterations`` periods instance by instance.

        Instance ``l`` of operation ``i`` runs in round
        ``l + R_max - R(i)`` at absolute time ``(round-1)*p + s_i``; the
        edge ``(i, j)`` carries data from producer instance ``l`` to
        consumer instance ``l``. The check asserts, in absolute time, that
        the data (including its placement-dependent transfer) has arrived
        when the consumer instance starts — precisely the semantics the
        discrete-event executor implements.
        """
        report.checks_run.append("dependency-order")
        graph = schedule.graph
        kernel = schedule.kernel
        period = schedule.period
        if period <= 0:
            report.add("dependency-order", f"non-positive period {period}")
            return
        r_max = max(
            (r for r in schedule.retiming.values() if r is not None), default=0
        )
        for edge in graph.edges():
            key = edge.key
            r_i = schedule.retiming.get(edge.producer)
            r_j = schedule.retiming.get(edge.consumer)
            transfer = schedule.transfer_times.get(key)
            if transfer is None:
                report.add("dependency-order", "missing transfer time", key)
                continue
            if r_i is None or r_j is None:
                continue  # reported by retiming-legality
            try:
                finish_i = kernel.finish(edge.producer)
                start_j = kernel.start(edge.consumer)
            except Exception:
                continue  # reported by kernel-resources
            for iteration in range(1, self.unroll_iterations + 1):
                round_i = iteration + r_max - r_i
                round_j = iteration + r_max - r_j
                arrival = (round_i - 1) * period + finish_i + transfer
                starts = (round_j - 1) * period + start_j
                if arrival > starts:
                    report.add(
                        "dependency-order",
                        f"instance {iteration}: producer data arrives at "
                        f"{arrival} but consumer starts at {starts} "
                        f"(rounds {round_i}->{round_j}, p={period})",
                        key,
                    )
                    break  # periodic: later iterations repeat the offence

    def _check_theorem_bound(
        self, schedule: PeriodicSchedule, report: VerificationReport
    ) -> None:
        report.checks_run.append("theorem-3.1")
        kernel = schedule.kernel
        period = schedule.period
        if period <= 0:
            return  # reported by period check
        for edge in schedule.graph.edges():
            key = edge.key
            transfer = schedule.transfer_times.get(key)
            if transfer is None:
                report.add("theorem-3.1", "missing transfer time", key)
                continue
            if transfer < 0:
                report.add("theorem-3.1", f"negative transfer {transfer}", key)
                continue
            if transfer > period:
                report.add(
                    "theorem-3.1",
                    f"transfer {transfer} exceeds period {period} "
                    "(premise c_ij <= p)",
                    key,
                )
                continue
            try:
                gap = kernel.finish(edge.producer) + transfer - kernel.start(
                    edge.consumer
                )
            except Exception:
                continue  # reported by kernel-resources
            required = max(0, math.ceil(gap / period))
            if required > 2:
                report.add(
                    "theorem-3.1",
                    f"required relative retiming {required} exceeds the "
                    "Theorem 3.1 bound of 2",
                    key,
                )

    def _check_period(
        self, result: ParaConvResult, report: VerificationReport
    ) -> None:
        report.checks_run.append("period")
        kernel = result.schedule.kernel
        period = kernel.period
        if period <= 0:
            report.add("period", f"non-positive period {period}")
            return
        makespan = kernel.makespan()
        if makespan > period:
            report.add(
                "period",
                f"kernel makespan {makespan} exceeds period {period}",
            )
        if result.period != period:
            report.add(
                "period",
                f"result reports period {result.period}, kernel says {period}",
            )
        longest = result.graph.max_execution_time()
        if longest > period:
            report.add(
                "period",
                f"period {period} cannot admit the longest operation "
                f"({longest} units)",
            )

    def _check_prologue(
        self, result: ParaConvResult, report: VerificationReport
    ) -> None:
        report.checks_run.append("prologue")
        schedule = result.schedule
        retimings = [r for r in schedule.retiming.values() if r is not None]
        r_max = max(retimings, default=0)
        if schedule.max_retiming != r_max:
            report.add(
                "prologue",
                f"max_retiming reports {schedule.max_retiming}, retiming "
                f"function peaks at {r_max}",
            )
        expected = r_max * schedule.period
        if result.prologue_time != expected:
            report.add(
                "prologue",
                f"prologue time {result.prologue_time} != R_max * p = "
                f"{r_max} * {schedule.period} = {expected}",
            )
        if any(r < 0 for r in retimings):
            return  # rounds are meaningless; retiming-legality reported it
        rounds = schedule.prologue_rounds()
        if len(rounds) != r_max:
            report.add(
                "prologue",
                f"{len(rounds)} prologue rounds for R_max {r_max}",
            )
        for earlier, later in zip(rounds, rounds[1:]):
            if not set(earlier) <= set(later):
                report.add(
                    "prologue",
                    "prologue rounds are not monotonically filling "
                    f"({sorted(set(earlier) - set(later))} drop out)",
                )
                break

    def _check_allocation(
        self,
        result: ParaConvResult,
        timings: Optional[Mapping[EdgeKey, EdgeTiming]],
        report: VerificationReport,
    ) -> None:
        report.checks_run.append("allocation")
        graph = result.graph
        schedule = result.schedule
        allocation = result.allocation
        edge_keys = {edge.key for edge in graph.edges()}

        for name, mapping in (
            ("schedule placements", schedule.placements),
            ("allocation placements", allocation.placements),
        ):
            missing = edge_keys - set(mapping)
            extra = set(mapping) - edge_keys
            for key in sorted(missing):
                report.add("allocation", f"{name}: missing entry", key)
            for key in sorted(extra):
                report.add("allocation", f"{name}: entry for unknown edge", key)

        for key in edge_keys & set(schedule.placements) & set(
            allocation.placements
        ):
            if schedule.placements[key] is not allocation.placements[key]:
                report.add(
                    "allocation",
                    "schedule and allocation disagree on placement "
                    f"({schedule.placements[key].value} vs "
                    f"{allocation.placements[key].value})",
                    key,
                )

        from repro.pim.memory import Placement

        cached_from_map = {
            key
            for key, placement in allocation.placements.items()
            if placement is Placement.CACHE
        }
        if set(allocation.cached) != cached_from_map:
            report.add(
                "allocation",
                f"cached list ({sorted(allocation.cached)[:4]}...) does not "
                "match CACHE placements",
            )

        if timings is None:
            return
        # Profit accounting: Sum of DR(m) over cached edges (Section 3.3).
        expected_profit = sum(
            timings[key].delta_r for key in cached_from_map if key in timings
        )
        if allocation.total_delta_r != expected_profit:
            report.add(
                "allocation",
                f"profit accounting: total_delta_r={allocation.total_delta_r} "
                f"but sum of DR(m) over cached results is {expected_profit}",
            )
        # Slot accounting: at least the single-charge footprint (liveness-
        # aware plans legitimately charge more per item, never less).
        base_slots = sum(
            timings[key].slots for key in cached_from_map if key in timings
        )
        if allocation.slots_used < base_slots:
            report.add(
                "allocation",
                f"slot accounting: slots_used={allocation.slots_used} below "
                f"the single-charge footprint {base_slots} of the cached set",
            )
        # Transfer times must match the placement actually recorded.
        for key in edge_keys & set(schedule.placements):
            if key not in timings or key not in schedule.transfer_times:
                continue
            expected_transfer = timings[key].transfer_for(
                schedule.placements[key]
            )
            if schedule.transfer_times[key] != expected_transfer:
                report.add(
                    "allocation",
                    f"transfer time {schedule.transfer_times[key]} does not "
                    f"match the {schedule.placements[key].value} placement "
                    f"(expected {expected_transfer})",
                    key,
                )

    def _check_cache_capacity(
        self,
        result: ParaConvResult,
        timings: Optional[Mapping[EdgeKey, EdgeTiming]],
        report: VerificationReport,
    ) -> None:
        allocation = result.allocation
        if allocation.method in self.oblivious_methods:
            report.skip(
                "cache-capacity",
                f"allocator {allocation.method!r} is capacity-oblivious by "
                "design (ablation upper bound)",
            )
            return
        report.checks_run.append("cache-capacity")
        if allocation.slots_used > allocation.capacity_slots:
            report.add(
                "cache-capacity",
                f"allocation charges {allocation.slots_used} slots against "
                f"capacity {allocation.capacity_slots}",
            )
        if timings is None:
            return
        peak, offset = self._liveness_peak(result, timings)
        if peak > allocation.capacity_slots:
            report.add(
                "cache-capacity",
                f"liveness-point occupancy peaks at {peak} slots (offset "
                f"{offset} of the period) against capacity "
                f"{allocation.capacity_slots}; the paper's single-charge "
                "accounting admits this transient overflow "
                "(repro.core.liveness documents the gap)",
                severity=(
                    Severity.ERROR if self.strict_liveness else Severity.WARNING
                ),
            )

    def _liveness_peak(
        self,
        result: ParaConvResult,
        timings: Mapping[EdgeKey, EdgeTiming],
    ) -> Tuple[int, int]:
        """Steady-state peak cache occupancy at any liveness point.

        A cached instance of edge ``(i, j)`` with realized relative
        retiming ``delta`` is live from the producer's finish to the
        consumer's start ``delta`` periods later. In steady state the
        occupancy at offset ``t`` of the period is the number of live
        instances summed over cached edges; it changes only at finish/start
        offsets, so evaluating there suffices.
        """
        from repro.pim.memory import Placement

        schedule = result.schedule
        kernel = schedule.kernel
        period = schedule.period
        if period <= 0:
            return 0, 0
        windows = []  # (finish_i, delta*p + start_j, slots)
        offsets = {0}
        for key, placement in schedule.placements.items():
            if placement is not Placement.CACHE or key not in timings:
                continue
            producer, consumer = key
            r_i = schedule.retiming.get(producer)
            r_j = schedule.retiming.get(consumer)
            if r_i is None or r_j is None or r_i < r_j:
                continue
            try:
                finish_i = kernel.finish(producer)
                start_j = kernel.start(consumer)
            except Exception:
                continue
            delta = r_i - r_j
            windows.append((finish_i, delta * period + start_j, timings[key].slots))
            offsets.add(finish_i % period)
            offsets.add(start_j % period)
        peak, peak_at = 0, 0
        for t in sorted(offsets):
            occupancy = 0
            for begin, end, slots in windows:
                live = 0
                # instances produced 0..delta+1 periods ago
                m = 0
                while t + m * period < end:
                    if t + m * period >= begin:
                        live += 1
                    m += 1
                occupancy += live * slots
            if occupancy > peak:
                peak, peak_at = occupancy, t
        return peak, peak_at

    def _check_grouping(
        self, result: ParaConvResult, report: VerificationReport
    ) -> None:
        report.checks_run.append("grouping")
        config = result.config
        if result.group_width < 1:
            report.add("grouping", f"group width {result.group_width} < 1")
        if result.num_groups < 1:
            report.add("grouping", f"num_groups {result.num_groups} < 1")
        if result.group_width * result.num_groups > config.num_pes:
            report.add(
                "grouping",
                f"{result.num_groups} groups x {result.group_width} PEs "
                f"exceed the {config.num_pes}-PE array",
            )
        if result.num_groups >= 1:
            share = config.total_cache_slots // result.num_groups
            if result.allocation.capacity_slots > share:
                report.add(
                    "grouping",
                    f"allocator saw capacity {result.allocation.capacity_slots} "
                    f"slots but the per-group share is {share}",
                )


def verify_result(
    result: ParaConvResult,
    strict_liveness: bool = False,
    unroll_iterations: int = 3,
) -> VerificationReport:
    """One-call convenience: run the full catalog against a plan."""
    return ScheduleValidator(
        strict_liveness=strict_liveness, unroll_iterations=unroll_iterations
    ).validate(result)
