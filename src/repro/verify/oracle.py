"""Brute-force allocation oracle and differential optimality checks.

The paper's central algorithmic claim is that the deadline-ordered dynamic
program ``B[S, m]`` (Section 3.3) is *profit-optimal* under the cache
capacity. For small instances that claim is machine-checkable by
exhaustive enumeration: :func:`exhaustive_allocate` tries every subset of
the competing intermediate results and keeps the best feasible one, giving
an independent optimum the DP must match exactly.

On instances too large to enumerate, optimality degrades to *dominance*:
the DP's profit must be at least every polynomial baseline's (greedy,
random, all-eDRAM) and at most the capacity-oblivious oracle's upper
bound. :func:`differential_check` runs both modes and returns a structured
:class:`DifferentialReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.allocation import (
    ALLOCATORS,
    AllocationItem,
    AllocationProblem,
    AllocationResult,
    _finalize,
    dp_allocate,
)
from repro.core.profit import ProfitTable, np

#: Largest item count enumerated exhaustively (2^n subsets).
DEFAULT_EXHAUSTIVE_LIMIT = 16

#: Enumeration engines: ``columnar`` scores all ``2^n`` subsets with two
#: matrix products on the :class:`~repro.core.profit.ProfitTable`
#: columns; ``object`` is the original incumbent scan (kept as the
#: differential oracle for the vectorized tie-break).
ORACLE_ENGINES = ("columnar", "object")

#: Registry entries that are per-run factories needing the task graph
#: (``ALLOCATORS[name](graph, timings)(problem)``) rather than plain
#: ``problem -> result`` functions.  Differential checks on a bare
#: :class:`AllocationProblem` cannot invoke them and skip them.
GRAPH_COUPLED_METHODS = frozenset({"iterative"})


class OracleSizeError(ValueError):
    """Raised when an instance is too large for exhaustive enumeration."""


def exhaustive_allocate(
    problem: AllocationProblem,
    limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    engine: str = "columnar",
) -> AllocationResult:
    """Optimal allocation by enumerating every subset of competing results.

    Ground truth for :func:`repro.core.allocation.dp_allocate`: among all
    subsets whose total space fits the capacity, return one maximizing the
    profit ``sum of DR(m)``. Ties prefer fewer slots, then the
    lexicographically smallest key set, making the outcome deterministic.

    The default ``columnar`` engine batch-scores all ``2^n`` subsets with
    two matrix products and reproduces the incumbent scan's tie-break
    exactly (max profit, then min slots, then the *greatest* sorted key
    tuple -- what the sequential replace-on-strictly-greater scan
    converges to); ``engine="object"`` runs that original scan.

    Raises :class:`OracleSizeError` beyond ``limit`` items — the caller
    should fall back to dominance checking.
    """
    if engine not in ORACLE_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {', '.join(ORACLE_ENGINES)}"
        )
    problem.validate()
    items = problem.items
    n = len(items)
    if n > limit:
        raise OracleSizeError(
            f"{n} competing results exceed the exhaustive limit {limit} "
            f"(2^{n} subsets)"
        )
    if engine == "columnar":
        return _exhaustive_columnar(problem)
    capacity = problem.capacity_slots
    best_mask = 0
    best_profit, best_slots, best_keys = 0, 0, ()
    for mask in range(1 << n):
        profit = slots = 0
        for index in range(n):
            if mask >> index & 1:
                item = items[index]
                profit += item.delta_r
                slots += item.slots
                if slots > capacity:
                    break
        if slots > capacity:
            continue
        keys = tuple(
            items[index].key for index in range(n) if mask >> index & 1
        )
        candidate = (profit, -slots, tuple(sorted(keys)))
        incumbent = (best_profit, -best_slots, tuple(sorted(best_keys)))
        if (
            profit > best_profit
            or (profit == best_profit and candidate[1:] > incumbent[1:])
        ):
            best_profit, best_slots, best_keys = profit, slots, keys
            best_mask = mask
    chosen: List[AllocationItem] = [
        items[index] for index in range(n) if best_mask >> index & 1
    ]
    return _finalize("exhaustive", problem, chosen)


def _exhaustive_columnar(problem: AllocationProblem) -> AllocationResult:
    """Vectorized subset enumeration on the ProfitTable columns.

    Every subset is one row of a ``(2^n, n)`` bit matrix; profits and
    slot totals fall out of two matrix-vector products. The winner is
    the lexicographic maximum of ``(profit, -slots, sorted keys)`` over
    feasible rows -- provably what the object scan returns, because that
    scan replaces its incumbent exactly on strict lexicographic
    improvement and distinct subsets always differ in their key sets.
    """
    table = ProfitTable.of(problem)
    n = table.num_items
    capacity = problem.capacity_slots
    if n == 0:
        return table.result_from_mask(
            "exhaustive", problem, np.zeros(0, dtype=bool)
        )
    subsets = np.arange(1 << n, dtype=np.uint64)
    bits = (subsets[:, None] >> np.arange(n, dtype=np.uint64)) & 1
    profits, slots = table.score_masks(bits)
    feasible = slots <= capacity  # row 0 (the empty set) always qualifies
    best_profit = int(profits[feasible].max())
    candidates = feasible & (profits == best_profit)
    min_slots = int(slots[candidates].min())
    candidates &= slots == min_slots
    indices = np.flatnonzero(candidates)
    if len(indices) == 1:
        winner = int(indices[0])
    else:
        # Full (profit, slots) tie: the incumbent scan keeps replacing on
        # a strictly greater sorted key tuple, so the survivor is the
        # maximum key tuple among the tied rows (typically a handful).
        def sorted_keys(row: int):
            mask = int(subsets[row])
            return tuple(sorted(
                table.keys[i] for i in range(n) if mask >> i & 1
            ))

        winner = max((int(row) for row in indices), key=sorted_keys)
    return table.result_from_mask(
        "exhaustive", problem, bits[winner].astype(bool)
    )


@dataclass
class DifferentialReport:
    """Outcome of differentially verifying one allocation instance.

    Attributes:
        num_items: competing intermediate results in the instance.
        capacity_slots: the knapsack capacity.
        profits: achieved profit per method (always includes ``dp``; the
            ``exhaustive`` entry is present when the instance was small
            enough to enumerate).
        exhaustive_checked: whether the DP was held to the brute-force
            optimum (as opposed to dominance only).
        failures: human-readable description of every broken relation.
    """

    num_items: int
    capacity_slots: int
    profits: Dict[str, int] = field(default_factory=dict)
    exhaustive_checked: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_items": self.num_items,
            "capacity_slots": self.capacity_slots,
            "profits": dict(self.profits),
            "exhaustive_checked": self.exhaustive_checked,
            "ok": self.ok,
            "failures": list(self.failures),
        }


def differential_check(
    problem: AllocationProblem,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    methods: Optional[List[str]] = None,
) -> DifferentialReport:
    """Differentially verify the DP allocator on one instance.

    * ``dp`` must be capacity-feasible;
    * on instances with at most ``exhaustive_limit`` competing results,
      ``dp``'s profit must equal the brute-force optimum exactly;
    * ``dp`` must dominate every capacity-aware baseline and never exceed
      the capacity-oblivious upper bound.
    """
    report = DifferentialReport(
        num_items=problem.num_items, capacity_slots=problem.capacity_slots
    )
    names = (
        methods
        if methods is not None
        else sorted(set(ALLOCATORS) - GRAPH_COUPLED_METHODS)
    )
    results: Dict[str, AllocationResult] = {}
    for name in names:
        results[name] = ALLOCATORS[name](problem)
        report.profits[name] = results[name].total_delta_r
    dp = results.get("dp") or dp_allocate(problem)
    report.profits.setdefault("dp", dp.total_delta_r)

    if dp.slots_used > problem.capacity_slots:
        report.failures.append(
            f"dp is capacity-infeasible: {dp.slots_used} slots used against "
            f"{problem.capacity_slots}"
        )

    if problem.num_items <= exhaustive_limit:
        exhaustive = exhaustive_allocate(problem, limit=exhaustive_limit)
        report.profits["exhaustive"] = exhaustive.total_delta_r
        report.exhaustive_checked = True
        if dp.total_delta_r != exhaustive.total_delta_r:
            report.failures.append(
                f"dp profit {dp.total_delta_r} != brute-force optimum "
                f"{exhaustive.total_delta_r} "
                f"(n={problem.num_items}, S={problem.capacity_slots})"
            )

    for name, result in results.items():
        if name == "dp":
            continue
        if name == "oracle":
            if dp.total_delta_r > result.total_delta_r:
                report.failures.append(
                    f"dp profit {dp.total_delta_r} exceeds the capacity-"
                    f"oblivious upper bound {result.total_delta_r}"
                )
        elif result.total_delta_r > dp.total_delta_r:
            report.failures.append(
                f"dp profit {dp.total_delta_r} dominated by {name!r} "
                f"({result.total_delta_r})"
            )
    return report
