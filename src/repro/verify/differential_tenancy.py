"""Tenancy differential: co-resident serving must equal isolated serving.

Multi-tenant spatial partitioning claims *perfect isolation*: tenants on
validated-disjoint slices of one machine share nothing but the chassis,
so running them together changes no result and no aggregate. This module
machine-checks that claim end to end on ≥3 co-residency scenarios
(2-tenant, 3-tenant, and a tenant whose slice lost PEs):

1. **Per-request replay equivalence** — every batch a tenant's server
   executed co-residently is replayed, with identical composition, on a
   fresh standalone :class:`~repro.runtime.server.BatchingServer` over
   the *same partition view* with a private cache; each request's
   ``sim_latency`` and batch size must match exactly.
2. **Aggregate additivity** — for every conserved counter
   (requests/inferences served, busy units, spills, batches), the
   co-resident scheduler's machine-wide total equals the sum of the
   isolated runs. Disjoint partitions ⇒ aggregates add.
3. **Per-tenant validator battery** — every plan a tenant compiled
   passes the full :class:`~repro.verify.validator.ScheduleValidator`
   on its partition config.
4. **Distinct plan identity** — tenants serving the *same workload* on
   shape-identical slices still compile separate plans into the shared
   cache (partition fingerprints embed physical placement), so the
   cache ends the run holding exactly one plan per (tenant, workload).

A fifth, fused-dataflow stage lowers paper models with ``fusion="auto"``
and holds the fused plans to the existing sim and search differentials
unchanged — the new ΔR profile flows through the stock pipeline.

A mismatch is a tenancy bug (a leaked unit, a cross-tenant cache hit, a
scheduler that serialized what the hardware runs in parallel), which is
why this check rides in ``python -m repro.verify --tenancy``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cnn.models import MODEL_BUILDERS
from repro.cnn.partition import partition_network
from repro.core.retiming import analyze_edges, delta_r_accounting
from repro.pim.config import PimConfig, assert_disjoint
from repro.pim.tenancy import TenantPlacement
from repro.runtime.server import BatchingServer, RequestResult
from repro.fleet.tenancy import TenantScheduler
from repro.verify.differential_sim import sim_differential_battery
from repro.verify.differential_search import search_differential
from repro.verify.validator import ScheduleValidator

__all__ = [
    "TENANCY_SCENARIOS",
    "TenancyDifferentialReport",
    "TenancyMismatch",
    "TenancyScenarioReport",
    "tenancy_differential",
]

#: Workloads tenants serve: paper models whose steady-state sim converges
#: quickly (mirrors the fleet differential's defaults).
DEFAULT_TENANT_WORKLOADS = ("flower", "stock-predict", "string-matching")

#: Conserved counters that must add across disjoint tenants.
ADDITIVE_COUNTERS = (
    "requests_served",
    "inferences_served",
    "sim_units_busy",
    "cache_spills",
    "batches_executed",
)

#: The three co-residency scenarios the acceptance criteria name.
TENANCY_SCENARIOS = ("two-tenant", "three-tenant", "degraded-tenant")

#: Models the fused-dataflow stage lowers with ``fusion="auto"``: both
#: have adjacent conv runs, so auto-fusion genuinely rewrites the graph.
DEFAULT_FUSED_MODELS = ("alexnet", "vgg16")


@dataclass(frozen=True)
class TenancyMismatch:
    """One divergence between co-resident serving and its isolated replay."""

    tenant: str
    kind: str  # "replay" | "counter"
    detail: str
    co_resident: object
    isolated: object

    def describe(self) -> str:
        return (
            f"{self.tenant} {self.kind} {self.detail}: "
            f"co-resident={self.co_resident!r} isolated={self.isolated!r}"
        )


@dataclass
class TenancyScenarioReport:
    """Outcome of one co-residency scenario."""

    scenario: str
    tenants: List[str]
    workloads: Dict[str, str]
    requests: int
    placement_fingerprint: str = ""
    replayed_batches: int = 0
    mismatches: List[TenancyMismatch] = field(default_factory=list)
    #: "tenant/allocator: <error>" lines from the validator battery.
    validator_failures: List[str] = field(default_factory=list)
    #: plans the shared cache holds at the end (must be one per
    #: (tenant, workload) pair — distinct identity per tenant).
    cached_plans: int = 0
    expected_plans: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None or self.mismatches:
            return False
        if self.validator_failures:
            return False
        return self.cached_plans == self.expected_plans

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "tenants": list(self.tenants),
            "workloads": dict(self.workloads),
            "requests": self.requests,
            "ok": self.ok,
            "placement_fingerprint": self.placement_fingerprint,
            "replayed_batches": self.replayed_batches,
            "mismatches": [m.describe() for m in self.mismatches],
            "validator_failures": list(self.validator_failures),
            "cached_plans": self.cached_plans,
            "expected_plans": self.expected_plans,
            "error": self.error,
        }

    def describe(self) -> str:
        tag = f"tenancy[{self.scenario} x{len(self.tenants)} N={self.requests}]"
        if self.ok:
            return (
                f"{tag}: ok [{self.replayed_batches} batches replayed, "
                f"{self.cached_plans} distinct plans cached]"
            )
        if self.error is not None:
            return f"{tag}: ERROR {self.error}"
        details = "; ".join(
            m.describe() for m in self.mismatches[:3]
        ) or "; ".join(self.validator_failures[:3])
        return (
            f"{tag}: FAIL mismatches={len(self.mismatches)} "
            f"validator={len(self.validator_failures)} "
            f"plans={self.cached_plans}/{self.expected_plans} {details}"
        )


@dataclass
class FusedModelReport:
    """Fused-mode lowering held to the stock sim/search differentials."""

    model: str
    unfused_ops: int = 0
    fused_ops: int = 0
    fused_stages: int = 0
    ops_absorbed: int = 0
    #: every fused run's tasks sum to its member layers' MACs exactly.
    work_conserved: bool = False
    #: every op fusion did *not* absorb is bit-identical to its unfused
    #: counterpart (same name, work, execution time, kind).
    singletons_untouched: bool = False
    sim_ok: bool = False
    search_ok: bool = False
    delta_r: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None:
            return False
        return (
            self.work_conserved
            and self.singletons_untouched
            and self.sim_ok
            and self.search_ok
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "ok": self.ok,
            "unfused_ops": self.unfused_ops,
            "fused_ops": self.fused_ops,
            "fused_stages": self.fused_stages,
            "ops_absorbed": self.ops_absorbed,
            "work_conserved": self.work_conserved,
            "singletons_untouched": self.singletons_untouched,
            "sim_ok": self.sim_ok,
            "search_ok": self.search_ok,
            "delta_r": dict(self.delta_r),
            "error": self.error,
        }

    def describe(self) -> str:
        tag = f"fused[{self.model} {self.unfused_ops}->{self.fused_ops} ops]"
        if self.ok:
            return (
                f"{tag}: ok [{self.ops_absorbed} stages absorbed, "
                f"sim+search differentials pass unchanged]"
            )
        if self.error is not None:
            return f"{tag}: ERROR {self.error}"
        return (
            f"{tag}: FAIL work={self.work_conserved} "
            f"singletons={self.singletons_untouched} sim={self.sim_ok} "
            f"search={self.search_ok}"
        )


@dataclass
class TenancyDifferentialReport:
    """Outcome of the whole tenancy + fused-dataflow differential."""

    scenarios: List[TenancyScenarioReport] = field(default_factory=list)
    fused: List[FusedModelReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if not self.scenarios:
            return False
        return all(s.ok for s in self.scenarios) and all(
            f.ok for f in self.fused
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "scenarios": [s.as_dict() for s in self.scenarios],
            "fused": [f.as_dict() for f in self.fused],
        }

    def describe(self) -> str:
        lines = [s.describe() for s in self.scenarios]
        lines.extend(f.describe() for f in self.fused)
        return "\n".join(lines)


def _build_placement(
    scenario: str, machine: PimConfig, num_vaults: int
) -> Tuple[TenantPlacement, Dict[str, str]]:
    """The placement and per-tenant workload map for one scenario."""
    if scenario == "two-tenant":
        placement = TenantPlacement.even(
            machine, ["tenant-a", "tenant-b"], num_vaults=num_vaults
        )
        # Both tenants serve the SAME workload on shape-identical slices:
        # the sharpest possible test of per-tenant plan identity.
        workloads = {
            "tenant-a": DEFAULT_TENANT_WORKLOADS[0],
            "tenant-b": DEFAULT_TENANT_WORKLOADS[0],
        }
    elif scenario == "three-tenant":
        placement = TenantPlacement.even(
            machine,
            ["tenant-a", "tenant-b", "tenant-c"],
            num_vaults=num_vaults,
        )
        workloads = {
            "tenant-a": DEFAULT_TENANT_WORKLOADS[0],
            "tenant-b": DEFAULT_TENANT_WORKLOADS[1],
            "tenant-c": DEFAULT_TENANT_WORKLOADS[2],
        }
    elif scenario == "degraded-tenant":
        placement = TenantPlacement.even(
            machine, ["tenant-a", "tenant-b"], num_vaults=num_vaults
        )
        # Tenant B lost half its slice (fault inside its partition); the
        # degraded tenant must still validate and still isolate.
        half = len(placement.config_for("tenant-b").pe_mask) // 2
        placement = placement.with_degraded("tenant-b", range(half))
        workloads = {
            "tenant-a": DEFAULT_TENANT_WORKLOADS[0],
            "tenant-b": DEFAULT_TENANT_WORKLOADS[1],
        }
    else:
        raise ValueError(f"unknown tenancy scenario {scenario!r}")
    return placement, workloads


def _replay_tenant(
    tenant: str,
    view: PimConfig,
    results: List[RequestResult],
    batch_window: int,
    allocator: str,
    report: TenancyScenarioReport,
) -> Optional[BatchingServer]:
    """Replay one tenant's co-resident batches on a standalone server.

    The standalone server runs on the *same partition view* with a fresh
    private cache — an isolated run of the same tenant on the same
    hardware slice. Same batch composition in, same per-request
    ``sim_latency`` out, or co-residency changed what was computed.
    """
    if not results:
        return None
    baseline = BatchingServer(
        view,
        batch_window=batch_window,
        max_queue=max(batch_window, len(results), 64),
        allocator=allocator,
    )
    batches: Dict[int, List[RequestResult]] = {}
    for res in results:
        batches.setdefault(res.batch_id, []).append(res)
    for batch_id in sorted(batches):
        co_batch = batches[batch_id]
        for res in co_batch:
            baseline.submit(
                res.request.workload, iterations=res.request.iterations
            )
        replay = baseline.step()
        report.replayed_batches += 1
        if len(replay) != len(co_batch):  # pragma: no cover - defensive
            report.mismatches.append(
                TenancyMismatch(
                    tenant=tenant,
                    kind="replay",
                    detail=f"batch {batch_id} size",
                    co_resident=len(co_batch),
                    isolated=len(replay),
                )
            )
            continue
        for co_res, base_res in zip(co_batch, replay):
            for field_name in ("sim_latency", "batch_size"):
                co_value = getattr(co_res, field_name)
                base_value = getattr(base_res, field_name)
                if co_value != base_value:
                    report.mismatches.append(
                        TenancyMismatch(
                            tenant=tenant,
                            kind="replay",
                            detail=(
                                f"batch {batch_id} request "
                                f"{co_res.request.request_id} {field_name}"
                            ),
                            co_resident=co_value,
                            isolated=base_value,
                        )
                    )
    return baseline


def run_scenario(
    scenario: str,
    num_pes: int = 64,
    num_vaults: int = 32,
    requests_per_tenant: int = 12,
    iterations: int = 5,
    batch_window: int = 4,
    allocator: str = "dp",
    validator: Optional[ScheduleValidator] = None,
) -> TenancyScenarioReport:
    """Run one co-residency scenario end to end."""
    machine = PimConfig(num_pes=num_pes)
    placement, workloads = _build_placement(scenario, machine, num_vaults)
    report = TenancyScenarioReport(
        scenario=scenario,
        tenants=list(placement.names),
        workloads=workloads,
        requests=requests_per_tenant * len(placement.names),
        placement_fingerprint=placement.fingerprint(),
    )
    validator = validator or ScheduleValidator()
    try:
        # Disjointness is the scenario's premise; prove it, don't assume.
        assert_disjoint(view for _, view in placement.items())

        scheduler = TenantScheduler(
            placement,
            slos={placement.names[0]: "interactive"},
            batch_window=batch_window,
            allocator=allocator,
        )
        # Deterministic interleaved arrivals: round-robin across tenants
        # so co-resident scheduling genuinely interleaves service.
        for _ in range(requests_per_tenant):
            for tenant in placement.names:
                scheduler.submit(
                    tenant, workloads[tenant], iterations=iterations
                )
        scheduler.drain()

        # 1. per-request replay equivalence + 2. aggregate additivity.
        isolated_totals: Dict[str, int] = {c: 0 for c in ADDITIVE_COUNTERS}
        co_totals: Dict[str, int] = {c: 0 for c in ADDITIVE_COUNTERS}
        for tenant in placement.names:
            server = scheduler.server_for(tenant)
            baseline = _replay_tenant(
                tenant,
                placement.config_for(tenant),
                server.results,
                batch_window,
                allocator,
                report,
            )
            co_counters = server.metrics.snapshot()["counters"]
            base_counters = (
                baseline.metrics.snapshot()["counters"]
                if baseline is not None
                else {}
            )
            for counter in ADDITIVE_COUNTERS:
                co_totals[counter] += co_counters.get(counter, 0)
                isolated_totals[counter] += base_counters.get(counter, 0)
        for counter in ADDITIVE_COUNTERS:
            if co_totals[counter] != isolated_totals[counter]:
                report.mismatches.append(
                    TenancyMismatch(
                        tenant="<aggregate>",
                        kind="counter",
                        detail=counter,
                        co_resident=co_totals[counter],
                        isolated=isolated_totals[counter],
                    )
                )

        # 3. per-tenant validator battery on every compiled plan.
        for tenant in placement.names:
            for workload, session in (
                scheduler.server_for(tenant).sessions().items()
            ):
                verdict = validator.validate(session.plan)
                if not verdict.ok:
                    for violation in verdict.errors():
                        report.validator_failures.append(
                            f"{tenant}/{workload}: {violation}"
                        )

        # 4. distinct plan identity in the shared cache.
        report.cached_plans = len(scheduler.cache)
        report.expected_plans = len(placement.names)
    except Exception as exc:  # noqa: BLE001 — differential must report, not crash
        report.error = f"{type(exc).__name__}: {exc}"
    return report


def verify_fused_model(
    model: str,
    num_pes: int = 16,
    validator: Optional[ScheduleValidator] = None,
) -> FusedModelReport:
    """Lower one paper model fused and hold it to sim+search differentials."""
    report = FusedModelReport(model=model)
    validator = validator or ScheduleValidator()
    try:
        network = MODEL_BUILDERS[model]()
        info = network.infer_shapes()
        unfused = partition_network(network)
        fused = partition_network(network, fusion="auto")
        report.unfused_ops = unfused.num_vertices
        report.fused_ops = fused.num_vertices
        report.ops_absorbed = sum(
            op.fused_count - 1 for op in fused.operations()
        )
        report.fused_stages = sum(
            1 for op in fused.operations() if op.fused_count > 1
        )

        # Work conservation: each fused run's tasks (named "a+b#k") must
        # sum to its member layers' MACs to the unit — fusion sums
        # compute, it never invents or drops any.
        run_work: Dict[str, int] = {}
        for op in fused.operations():
            if op.fused_count > 1:
                run_work.setdefault(op.name.split("#")[0], 0)
                run_work[op.name.split("#")[0]] += op.work
        report.work_conserved = bool(run_work) and all(
            total == sum(info[member].macs for member in label.split("+"))
            for label, total in run_work.items()
        )

        # Ops outside every fused run must lower exactly as before.
        unfused_by_name = {op.name: op for op in unfused.operations()}
        report.singletons_untouched = all(
            (ref := unfused_by_name.get(op.name)) is not None
            and ref.work == op.work
            and ref.execution_time == op.execution_time
            and ref.kind == op.kind
            for op in fused.operations()
            if op.fused_count == 1
        )

        config = PimConfig(num_pes=num_pes)
        # The fused ΔR profile, for the record (and the eval bench).
        from repro.core.paraconv import ParaConv

        plan = ParaConv(config, validate=False).run(fused)
        timings = analyze_edges(fused, plan.schedule.kernel, config)
        report.delta_r = delta_r_accounting(fused, timings).as_dict()

        sim_reports = sim_differential_battery(
            plan, config=config, iteration_counts=[1, 20]
        )
        report.sim_ok = bool(sim_reports) and all(r.ok for r in sim_reports)
        search_reports = search_differential(
            fused, config, budgets=[64, 256], validator=validator
        )
        report.search_ok = bool(search_reports) and all(
            r.ok for r in search_reports
        )
    except Exception as exc:  # noqa: BLE001 — differential must report, not crash
        report.error = f"{type(exc).__name__}: {exc}"
    return report


def tenancy_differential(
    scenarios: Sequence[str] = TENANCY_SCENARIOS,
    fused_models: Sequence[str] = DEFAULT_FUSED_MODELS,
    num_pes: int = 64,
    num_vaults: int = 32,
    requests_per_tenant: int = 12,
    iterations: int = 5,
    batch_window: int = 4,
    allocator: str = "dp",
    validator: Optional[ScheduleValidator] = None,
) -> TenancyDifferentialReport:
    """Run every co-residency scenario plus the fused-dataflow stage."""
    report = TenancyDifferentialReport()
    for scenario in scenarios:
        report.scenarios.append(
            run_scenario(
                scenario,
                num_pes=num_pes,
                num_vaults=num_vaults,
                requests_per_tenant=requests_per_tenant,
                iterations=iterations,
                batch_window=batch_window,
                allocator=allocator,
                validator=validator,
            )
        )
    for model in fused_models:
        report.fused.append(verify_fused_model(model, validator=validator))
    return report
