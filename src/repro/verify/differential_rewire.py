"""Live-rewiring differential + seeded randwired property battery.

The serving stack claims that hot-swapping a served workload's graph is
*exactly* the failover recovery path with a non-fault trigger: after
:meth:`~repro.runtime.server.BatchingServer.rewire` the session serves
the same results a cold compile of the new graph would produce, queued
requests cross the cut-point without loss, and a repeat swap to a
previously served graph never recompiles. This module machine-checks
each claim:

1. serve a workload, queue more requests, then ``rewire`` at a declared
   cut-point (``drain``: queued requests served on the old plan first;
   ``reroute``: carried across and served on the new plan);
2. serve one post-swap batch and compare its
   :meth:`~repro.sim.executor.ExecutionTrace.aggregate_signature`
   field by field against an independent cold compile of the new graph
   executed on the full-unroll oracle engine (exact match);
3. close the request accounting — every admitted request must be served
   or still queued, ``lost == 0``;
4. swap back and forth once more and require zero ``swap_recompiles`` —
   both plans are warm in the content-addressed cache;
5. run the same zero-loss check through the fleet router (affinity
   remap on the new digest, queued requests rerouted with fleet
   identity intact, ``accounting()['lost'] == 0``).

Alongside rides the seeded randwired property battery: every ER/WS/BA
graph across a seed sweep must regenerate to an identical fingerprint
(pure function of the spec) and compile into a plan with zero
:class:`~repro.verify.validator.ScheduleValidator` errors — the
generators only emit legal workloads, so any violation is a bug by
definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.paraconv import ParaConv
from repro.graph.randwired import (
    RANDWIRED_SPECS,
    RandwiredSpec,
    randwired_graph,
    reseeded,
)
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import BatchingServer
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink
from repro.verify.validator import ScheduleValidator

__all__ = [
    "RewireCaseReport",
    "RewireDifferentialReport",
    "RewireMismatch",
    "RandwiredPropertyReport",
    "randwired_property_battery",
    "rewire_case",
    "rewire_differential",
]


@dataclass(frozen=True)
class RewireMismatch:
    """One aggregate field where post-swap serving and cold compile differ."""

    field: str
    post_swap_value: object
    cold_value: object

    def describe(self) -> str:
        return (
            f"{self.field}: post_swap={self.post_swap_value!r} "
            f"cold={self.cold_value!r}"
        )


@dataclass
class RewireCaseReport:
    """Outcome of one old-graph -> new-graph live-rewire comparison."""

    workload: str
    new_graph: str
    cut_point: str
    iterations: int
    mismatches: List[RewireMismatch] = field(default_factory=list)
    #: requests served on the old plan at the cut-point ("drain").
    drained: int = 0
    #: queued requests carried across the swap ("reroute").
    rerouted: int = 0
    #: admitted - served - queued after the full scenario; must be 0.
    lost: Optional[int] = None
    #: swaps the session performed (first + the two repeats).
    graph_swaps: int = 0
    #: recompiles across the *repeat* swaps — must be 0 (warm plans).
    repeat_recompiles: Optional[int] = None
    #: validator errors in the cold reference plan (must be 0).
    validator_errors: int = 0
    #: unexpected exception text (None on a clean run).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None or self.mismatches:
            return False
        if self.lost not in (None, 0):
            return False
        if self.repeat_recompiles not in (None, 0):
            return False
        return self.validator_errors == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "new_graph": self.new_graph,
            "cut_point": self.cut_point,
            "iterations": self.iterations,
            "ok": self.ok,
            "mismatches": [
                {
                    "field": m.field,
                    "post_swap": repr(m.post_swap_value),
                    "cold": repr(m.cold_value),
                }
                for m in self.mismatches
            ],
            "drained": self.drained,
            "rerouted": self.rerouted,
            "lost": self.lost,
            "graph_swaps": self.graph_swaps,
            "repeat_recompiles": self.repeat_recompiles,
            "validator_errors": self.validator_errors,
            "error": self.error,
        }

    def describe(self) -> str:
        tag = (
            f"{self.workload}->{self.new_graph} [{self.cut_point}] "
            f"N={self.iterations}"
        )
        if self.ok:
            return (
                f"{tag}: ok [drained={self.drained} "
                f"rerouted={self.rerouted} "
                f"repeat={self.repeat_recompiles}rc]"
            )
        if self.error is not None:
            return f"{tag}: ERROR {self.error}"
        details = "; ".join(m.describe() for m in self.mismatches)
        return (
            f"{tag}: FAIL lost={self.lost} "
            f"repeat={self.repeat_recompiles} "
            f"validator_errors={self.validator_errors} {details}"
        )


@dataclass
class RandwiredPropertyReport:
    """Seeded ER/WS/BA sweep: determinism + legality of every graph."""

    cases: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.cases > 0 and not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "ok": self.ok,
            "failures": list(self.failures),
        }

    def describe(self) -> str:
        if self.ok:
            return f"randwired battery: ok [{self.cases} graphs]"
        return (
            f"randwired battery: FAIL {len(self.failures)}/{self.cases} — "
            + "; ".join(self.failures)
        )


@dataclass
class RewireDifferentialReport:
    """Everything the ``--rewire`` battery verified."""

    cases: List[RewireCaseReport] = field(default_factory=list)
    randwired: RandwiredPropertyReport = field(
        default_factory=RandwiredPropertyReport
    )
    #: fleet-level zero-loss check: accounting residual after a rewire
    #: with queued traffic (must be 0; None when the stage errored).
    fleet_lost: Optional[int] = None
    #: queued requests the fleet rerouted across the swap.
    fleet_rerouted: int = 0
    #: True when the fleet repeat swap found every plan warm.
    fleet_repeat_warm: Optional[bool] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None:
            return False
        if any(not case.ok for case in self.cases):
            return False
        if not self.randwired.ok:
            return False
        if self.fleet_lost not in (None, 0):
            return False
        return self.fleet_repeat_warm in (None, True)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "cases": [case.as_dict() for case in self.cases],
            "randwired": self.randwired.as_dict(),
            "fleet_lost": self.fleet_lost,
            "fleet_rerouted": self.fleet_rerouted,
            "fleet_repeat_warm": self.fleet_repeat_warm,
            "error": self.error,
        }

    def describe(self) -> str:
        lines = ["rewire differential:"]
        for case in self.cases:
            lines.append(f"  {case.describe()}")
        lines.append(f"  {self.randwired.describe()}")
        fleet = (
            f"  fleet: lost={self.fleet_lost} "
            f"rerouted={self.fleet_rerouted} "
            f"repeat_warm={self.fleet_repeat_warm}"
        )
        lines.append(fleet)
        if self.error is not None:
            lines.append(f"  ERROR {self.error}")
        lines.append(f"overall rewire: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def rewire_case(
    old_graph: TaskGraph,
    new_graph: TaskGraph,
    config: PimConfig,
    cut_point: str = "drain",
    iterations: int = 20,
    queued: int = 5,
    allocator: str = "dp",
    num_vaults: int = 32,
    validator: Optional[ScheduleValidator] = None,
) -> RewireCaseReport:
    """Assert post-swap serving == cold compile of the new graph.

    The scenario: serve one warm batch of ``old_graph``, queue ``queued``
    more requests plus one bystander workload, swap to ``new_graph`` at
    ``cut_point``, drain everything, then serve one dedicated batch of
    ``iterations`` inferences and compare its aggregate signature against
    an independently compiled full-unroll execution of the new graph.
    """
    report = RewireCaseReport(
        workload=old_graph.name,
        new_graph=new_graph.name,
        cut_point=cut_point,
        iterations=iterations,
    )
    workload = old_graph.name
    bystander = f"{workload}-bystander"
    graphs = {workload: old_graph, bystander: old_graph}
    try:
        server = BatchingServer(
            config,
            cache=PlanCache(),
            batch_window=4,
            allocator=allocator,
            num_vaults=num_vaults,
            graph_loader=lambda name: graphs[name],
        )
        server.submit(workload, iterations=1)
        server.step()  # warm the old plan
        for _ in range(queued):
            server.submit(workload, iterations=1)
        server.submit(bystander, iterations=1)

        result = server.rewire(workload, new_graph, cut_point=cut_point)
        report.drained = result.drained_requests
        report.rerouted = result.rerouted
        server.drain()

        # Post-swap differential batch: one request, dedicated trace.
        server.submit(workload, iterations=iterations)
        server.drain()
        session = server.sessions()[workload]
        assert session.last_trace is not None
        candidate = session.last_trace.aggregate_signature()

        cold_plan = ParaConv(config, allocator_name=allocator).run(new_graph)
        cold_trace = ScheduleExecutor(
            config, num_vaults=num_vaults, mode=SimMode.FULL_UNROLL
        ).execute(cold_plan, iterations=iterations, sink=NullSink())
        reference = cold_trace.aggregate_signature()
        for key in sorted(set(reference) | set(candidate)):
            cold_value = reference.get(key)
            post_value = candidate.get(key)
            if cold_value != post_value:
                report.mismatches.append(
                    RewireMismatch(
                        field=key,
                        post_swap_value=post_value,
                        cold_value=cold_value,
                    )
                )

        battery = (validator or ScheduleValidator()).validate(cold_plan)
        report.validator_errors = len(battery.errors())

        # Repeat swaps: old and new plans are both warm now, so neither
        # direction may recompile.
        recompiles_before = session.swap_recompiles
        server.rewire(workload, old_graph, cut_point=cut_point)
        server.drain()
        server.rewire(workload, new_graph, cut_point=cut_point)
        server.drain()
        report.graph_swaps = session.graph_swaps
        report.repeat_recompiles = session.swap_recompiles - recompiles_before

        snap = server.metrics.snapshot()["counters"]
        report.lost = (
            snap.get("requests_accepted", 0)
            - snap.get("requests_served", 0)
            - server.queue_depth
        )
    except Exception as exc:  # noqa: BLE001 — differential must report, not crash
        report.error = f"{type(exc).__name__}: {exc}"
    return report


def _fleet_check(
    report: RewireDifferentialReport,
    new_graph: TaskGraph,
    requests: int = 8,
) -> None:
    """Zero-loss rewire through the router: reroute + affinity remap.

    Shards share a plan store (the production configuration), so the
    affinity move a rewire causes — the workload may hash onto a
    *different* shard under the new digest — still finds warm plans:
    compiled once anywhere, warm everywhere.
    """
    import tempfile

    from repro.fleet.router import FleetRouter
    from repro.fleet.store import SharedPlanStore
    from repro.fleet.worker import FleetWorker

    base = PimConfig(num_pes=64)
    with tempfile.TemporaryDirectory(prefix="rewire-store-") as tmp:
        store = SharedPlanStore(tmp)
        workers = [
            FleetWorker(f"w{i}", part, store=store)
            for i, part in enumerate(base.split(4))
        ]
        router = FleetRouter(workers)
        # Warm the old plan with served traffic before the swap.
        for _ in range(requests):
            router.submit("cat", iterations=1)
        router.drain()
        for _ in range(requests):
            router.submit("cat", iterations=1)
        swap = router.rewire("cat", new_graph, cut_point="reroute")
        report.fleet_rerouted = swap.rerouted
        router.drain()
        repeat = router.rewire(
            "cat", router.graph_loader("cat"), cut_point="reroute"
        )
        report.fleet_repeat_warm = (
            not repeat.recompiled
            and not router.rewire(
                "cat", new_graph, cut_point="reroute"
            ).recompiled
        )
        report.fleet_lost = router.accounting()["lost"]


def randwired_property_battery(
    config: Optional[PimConfig] = None,
    specs: Optional[List[RandwiredSpec]] = None,
    seeds: int = 3,
    validator: Optional[ScheduleValidator] = None,
) -> RandwiredPropertyReport:
    """Determinism + legality across a seeded ER/WS/BA sweep.

    Every spec is regenerated twice (fingerprints must match — the graph
    is a pure function of the spec) and compiled through the full
    pipeline; validator errors are failures by definition.
    """
    config = config or PimConfig(num_pes=16)
    validator = validator or ScheduleValidator()
    if specs is None:
        base = [
            RandwiredSpec(kind="er", num_vertices=16, p=0.3),
            RandwiredSpec(kind="ws", num_vertices=16, k=4, p=0.4),
            RandwiredSpec(kind="ba", num_vertices=16, m=2),
        ]
        specs = [
            reseeded(spec, seed) for spec in base for seed in range(seeds)
        ]
    report = RandwiredPropertyReport()
    for spec in specs:
        report.cases += 1
        tag = f"{spec.kind}/n{spec.num_vertices}/s{spec.seed}"
        try:
            graph = randwired_graph(spec)
            again = randwired_graph(spec)
            if graph.fingerprint() != again.fingerprint():
                report.failures.append(f"{tag}: fingerprint not deterministic")
                continue
            plan = ParaConv(config).run(graph)
            errors = validator.validate(plan).errors()
            if errors:
                report.failures.append(
                    f"{tag}: {len(errors)} validator errors ({errors[0]})"
                )
        except Exception as exc:  # noqa: BLE001 — battery must report, not crash
            report.failures.append(f"{tag}: {type(exc).__name__}: {exc}")
    return report


def rewire_differential(
    config: Optional[PimConfig] = None,
    iterations: int = 20,
    seeds: int = 3,
    validator: Optional[ScheduleValidator] = None,
) -> RewireDifferentialReport:
    """The full ``--rewire`` battery: cases + fleet + randwired sweep."""
    from repro.cnn.workloads import load_workload

    config = config or PimConfig(num_pes=16)
    report = RewireDifferentialReport()
    try:
        cases = [
            ("cat", "randwired-er", "drain"),
            ("randwired-er", "randwired-ba", "reroute"),
            ("flower", "randwired-ws", "drain"),
        ]
        for old_name, new_name, cut_point in cases:
            report.cases.append(
                rewire_case(
                    load_workload(old_name),
                    load_workload(new_name),
                    config,
                    cut_point=cut_point,
                    iterations=iterations,
                    validator=validator,
                )
            )
        _fleet_check(report, load_workload("randwired-er"))
        report.randwired = randwired_property_battery(
            config, seeds=seeds, validator=validator
        )
    except Exception as exc:  # noqa: BLE001 — differential must report, not crash
        report.error = f"{type(exc).__name__}: {exc}"
    return report
