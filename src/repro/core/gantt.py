"""ASCII Gantt rendering of kernels and periodic schedules.

Debugging and documentation aid: renders one kernel window per PE row,
like the paper's Figure 3 timelines. Example output::

    PE0 |T0 T0 T3 .  .  |
    PE1 |T1 T2 T2 T4 .  |

Each column is one time unit; ``.`` is idle; labels truncate to fit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schedule import KernelSchedule, PeriodicSchedule, ScheduleError


def render_kernel(
    kernel: KernelSchedule,
    num_pes: Optional[int] = None,
    cell_width: int = 4,
    labels: Optional[Dict[int, str]] = None,
) -> str:
    """Render one kernel window as an ASCII Gantt chart."""
    if cell_width < 2:
        raise ScheduleError("cell_width must be >= 2")
    if not kernel.placements:
        return "(empty kernel)"
    pes = sorted({p.pe for p in kernel.placements.values()})
    if num_pes is not None:
        pes = list(range(num_pes))
    period = kernel.period
    grid: Dict[int, List[str]] = {
        pe: ["." .ljust(cell_width - 1)] * period for pe in pes
    }
    for placement in kernel.placements.values():
        label = (labels or {}).get(placement.op_id, f"T{placement.op_id}")
        label = label[: cell_width - 1]
        for t in range(placement.start, placement.finish):
            grid[placement.pe][t] = label.ljust(cell_width - 1)
    lines = []
    header = "     " + " ".join(
        str(t).ljust(cell_width - 1) for t in range(period)
    )
    lines.append(header)
    for pe in pes:
        lines.append(f"PE{pe:<2d} " + " ".join(grid[pe]))
    return "\n".join(lines)


def render_expanded(
    schedule: PeriodicSchedule,
    iterations: int,
    cell_width: int = 6,
    max_columns: int = 120,
) -> str:
    """Render a whole run (prologue + N iterations) as one Gantt chart.

    Labels carry the instance's logical iteration (``T3.2`` = iteration 2
    of operation 3), so the software-pipelined structure -- several
    iterations in flight per round -- is visible at a glance, like the
    paper's Figure 3(b). Output is truncated at ``max_columns`` time units.
    """
    from repro.core.expansion import expand

    if cell_width < 2:
        raise ScheduleError("cell_width must be >= 2")
    expanded = expand(schedule, iterations)
    horizon = min(expanded.makespan, max_columns)
    pes = sorted({inst.pe for inst in expanded.instances})
    grid: Dict[int, List[str]] = {
        pe: [".".ljust(cell_width - 1)] * horizon for pe in pes
    }
    for inst in expanded.instances:
        label = f"T{inst.op_id}.{inst.iteration}"[: cell_width - 1]
        for t in range(inst.start, min(inst.finish, horizon)):
            grid[inst.pe][t] = label.ljust(cell_width - 1)
    lines = [
        "     "
        + " ".join(str(t).ljust(cell_width - 1) for t in range(horizon))
    ]
    for pe in pes:
        lines.append(f"PE{pe:<2d} " + " ".join(grid[pe]))
    if expanded.makespan > horizon:
        lines.append(f"... truncated at t={horizon} "
                     f"(run ends at t={expanded.makespan})")
    return "\n".join(lines)


def render_retiming(schedule: PeriodicSchedule) -> str:
    """Render the retiming function and prologue rounds as text."""
    lines = [f"R_max = {schedule.max_retiming}  period = {schedule.period}"]
    by_value: Dict[int, List[int]] = {}
    for op_id, value in sorted(schedule.retiming.items()):
        by_value.setdefault(value, []).append(op_id)
    for value in sorted(by_value, reverse=True):
        ops = ", ".join(f"T{i}" for i in by_value[value])
        lines.append(f"  R = {value}: {ops}")
    for index, round_ops in enumerate(schedule.prologue_rounds(), start=1):
        ops = ", ".join(f"T{i}" for i in round_ops)
        lines.append(f"  prologue round {index}: {ops}")
    return "\n".join(lines)
